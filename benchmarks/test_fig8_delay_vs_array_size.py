"""Figure 8: SRAG versus CntAG delay for array sizes 16x16 .. 256x256.

Both the read sequence (block access of the motion-estimation kernel) and the
write sequence (incremental) of ``new_img`` are implemented with the SRAG and
with the counter-based generator; the CntAG delay follows the paper's
methodology (counter component plus worst decoder component).  Expected
shape: the SRAG is roughly twice as fast on average, its delay nearly flat
with array size, while the CntAG delay grows as the decoders widen.
"""

import pytest

from repro.analysis.reporting import format_figure
from repro.analysis.tradeoff import compare_generators
from repro.workloads import motion_estimation

SIZES = [16, 32, 64, 128, 256]


def _sweep():
    read_records = []
    write_records = []
    for size in SIZES:
        read_records.append(
            compare_generators(
                f"motion_est_read_{size}",
                motion_estimation.new_img_read_pattern(size, size, 2, 2),
            )
        )
        write_records.append(
            compare_generators(
                f"motion_est_write_{size}",
                motion_estimation.new_img_write_pattern(size, size),
            )
        )
    return read_records, write_records


@pytest.fixture(scope="module")
def sweep_records():
    return _sweep()


def test_fig8_delay_vs_array_size(benchmark, print_report, sweep_records):
    read_records, write_records = benchmark.pedantic(
        lambda: sweep_records, rounds=1, iterations=1
    )
    labels = [f"{s}x{s}" for s in SIZES]
    print_report(
        format_figure(
            "Figure 8 -- address generator delay vs array size",
            "array",
            labels,
            {
                "SRAG(Write)/ns": [r.srag.delay_ns for r in write_records],
                "CntAG(Write)/ns": [r.cntag.delay_ns for r in write_records],
                "SRAG(Read)/ns": [r.srag.delay_ns for r in read_records],
                "CntAG(Read)/ns": [r.cntag.delay_ns for r in read_records],
            },
            y_label="delay/ns",
            expectation="SRAG ~2x faster on average; SRAG nearly flat, CntAG grows with array size",
        )
    )

    for records in (read_records, write_records):
        # The SRAG wins at every size.
        for record in records:
            assert record.delay_reduction_factor > 1.0
        # SRAG delay grows slowly; CntAG grows faster in absolute terms.
        srag_growth = records[-1].srag.delay_ns - records[0].srag.delay_ns
        cntag_growth = records[-1].cntag.delay_ns - records[0].cntag.delay_ns
        assert cntag_growth > srag_growth
        assert records[-1].srag.delay_ns < 1.8 * records[0].srag.delay_ns
