"""Power study (the paper's deferred future work).

The paper's conclusion expects decoder decoupling to reduce power but leaves
the study to future work.  This benchmark performs it on the reproduction's
models: switching-activity based energy per access for the SRAG and the
CntAG across array sizes, on the motion-estimation read sequence.

Measured outcome (not a paper figure): for small arrays the SRAG's quiet
data path (one token moves per access) keeps its switching energy at or
below the CntAG's, but its enable network and per-select-line flip-flops
scale with ``rows + cols``, so its energy per access grows faster with the
array size than the CntAG's.  Whether decoder decoupling saves power is
therefore size- and clock-gating-dependent -- exactly the physical-level
question the paper says must be answered before the ADDM is adopted.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.addm_generator import SragAddressGenerator
from repro.generators.counter_based import CounterBasedAddressGenerator
from repro.synth.power import estimate_power
from repro.workloads import motion_estimation

SIZES = [8, 16, 32]


def _study():
    rows = []
    for size in SIZES:
        pattern = motion_estimation.new_img_read_pattern(size, size, 2, 2)
        sequence = pattern.to_sequence()
        cycles = min(sequence.length, 512)
        srag = estimate_power(
            SragAddressGenerator.from_sequence(sequence).netlist, cycles=cycles
        )
        cntag = estimate_power(
            CounterBasedAddressGenerator(pattern).elaborate(), cycles=cycles
        )
        rows.append((size, srag, cntag))
    return rows


@pytest.fixture(scope="module")
def power_rows():
    return _study()


def test_power_study(benchmark, print_report, power_rows):
    rows = benchmark.pedantic(lambda: power_rows, rounds=1, iterations=1)
    table = []
    for size, srag, cntag in rows:
        table.append(
            [
                f"{size}x{size}",
                srag.switching_energy_fj / srag.cycles,
                cntag.switching_energy_fj / cntag.cycles,
                srag.energy_per_access_fj,
                cntag.energy_per_access_fj,
            ]
        )
    print_report(
        format_table(
            [
                "array",
                "SRAG switch fJ/access",
                "CntAG switch fJ/access",
                "SRAG total fJ/access",
                "CntAG total fJ/access",
            ],
            table,
            title="Power study (future work of the paper): energy per access",
        )
    )
    for size, srag, cntag in rows:
        assert srag.energy_per_access_fj > 0
        assert cntag.energy_per_access_fj > 0
    # For small arrays the SRAG's quiet data path keeps its switching energy
    # at or below the CntAG's...
    _, srag_small, cntag_small = rows[0]
    assert (
        srag_small.switching_energy_fj / srag_small.cycles
        <= 1.05 * cntag_small.switching_energy_fj / cntag_small.cycles
    )
    # ...but its per-access energy grows faster with the array size (the
    # enable network and the per-select-line flip-flops scale with rows+cols),
    # so the power benefit of decoder decoupling is NOT automatic -- the
    # nuance the paper's conclusion anticipates by calling for a rigorous
    # study before adopting the ADDM.
    _, srag_large, cntag_large = rows[-1]
    srag_growth = srag_large.energy_per_access_fj / srag_small.energy_per_access_fj
    cntag_growth = cntag_large.energy_per_access_fj / cntag_small.energy_per_access_fj
    assert srag_growth > cntag_growth
