"""Figures 3 and 4: shift register versus symbolic state machine.

For an incremental address sequence of length N = 8 .. 256 driving the select
lines of a decoder-decoupled memory row, compare

* the structured shift-register solution (a token ring, the degenerate SRAG),
* the symbolic state machine with N states, binary-encoded and synthesised by
  the generic two-level logic optimiser,

in delay (Figure 3) and area (Figure 4).  Expected shapes: the shift register
is roughly twice as fast with delay nearly independent of N, at a modest area
premium (the paper reports about 10 %); FSM delay grows with N.
"""

import pytest

from repro.analysis.reporting import format_figure
from repro.core.mapper import map_sequence
from repro.core.srag import build_srag
from repro.hdl.netlist import Netlist
from repro.synth.flow import run_synthesis_flow
from repro.synth.fsm import FiniteStateMachine, synthesize_fsm

LENGTHS = [8, 16, 32, 64, 128, 256]


def _shift_register_result(length):
    netlist = Netlist(f"shiftreg_{length}")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    ports = build_srag(netlist, map_sequence(list(range(length))), clk, nxt, rst)
    netlist.add_output_bus("sel", ports.select_lines)
    return run_synthesis_flow(netlist, name=f"shiftreg_{length}")


def _fsm_result(length):
    fsm = FiniteStateMachine.from_select_sequence(list(range(length)))
    synthesis = synthesize_fsm(fsm, encoding="binary", name=f"fsm_{length}")
    return run_synthesis_flow(synthesis.netlist, name=f"fsm_{length}")


def _sweep():
    shift_register = [_shift_register_result(n) for n in LENGTHS]
    fsm = [_fsm_result(n) for n in LENGTHS]
    return shift_register, fsm


@pytest.fixture(scope="module")
def sweep_results():
    return _sweep()


def test_fig3_delay_sweep(benchmark, print_report, sweep_results):
    shift_register, fsm = benchmark.pedantic(
        lambda: sweep_results, rounds=1, iterations=1
    )
    print_report(
        format_figure(
            "Figure 3 -- address generator delay vs sequence length",
            "N",
            LENGTHS,
            {
                "ShiftRegister/ns": [r.delay_ns for r in shift_register],
                "SymbolicFSM/ns": [r.delay_ns for r in fsm],
            },
            y_label="delay/ns",
            expectation="shift register ~2x faster and nearly flat; FSM delay grows with N",
        )
    )
    for sr, fs in zip(shift_register, fsm):
        assert sr.delay_ns < fs.delay_ns
    # Shift-register delay is nearly flat: < 60 % growth over a 32x range of N.
    assert shift_register[-1].delay_ns < 1.6 * shift_register[0].delay_ns
    # FSM is at least 1.5x slower on average (paper: "over twice as fast").
    ratios = [f.delay_ns / s.delay_ns for s, f in zip(shift_register, fsm)]
    assert sum(ratios) / len(ratios) > 1.5


def test_fig4_area_sweep(benchmark, print_report, sweep_results):
    shift_register, fsm = benchmark.pedantic(
        lambda: sweep_results, rounds=1, iterations=1
    )
    print_report(
        format_figure(
            "Figure 4 -- address generator area vs sequence length",
            "N",
            LENGTHS,
            {
                "ShiftRegister/cells": [r.area_cells for r in shift_register],
                "SymbolicFSM/cells": [r.area_cells for r in fsm],
            },
            y_label="area/(cell units)",
            expectation="both grow roughly linearly; shift register only modestly larger than the FSM",
        )
    )
    # Both areas grow with N.
    assert shift_register[-1].area_cells > shift_register[0].area_cells
    assert fsm[-1].area_cells > fsm[0].area_cells
    # The shift register's area premium over the FSM stays bounded (paper ~10 %,
    # our structural model lands somewhat higher but the same order).
    ratio_at_max = shift_register[-1].area_cells / fsm[-1].area_cells
    assert ratio_at_max < 2.5
