"""Section 3's synthesis-effort observation.

The paper reports that synthesising the symbolic state machine for N = 256
took over six hours while the shift-register solution took 36 minutes on a
SUN Ultra-5.  Absolute runtimes are irrelevant here; the *asymmetry* is the
result: generic FSM synthesis work (logic-minimisation effort and wall-clock)
blows up with the sequence length while the structured shift register is
constructed in time linear in N.
"""

import time

import pytest

from repro.analysis.reporting import format_figure
from repro.core.mapper import map_sequence
from repro.core.srag import build_srag
from repro.hdl.netlist import Netlist
from repro.synth.fsm import FiniteStateMachine, synthesize_fsm

LENGTHS = [16, 32, 64, 128, 256]


def _shift_register_effort(length):
    # Best of three: a single ~1 ms sample occasionally catches a GC pause
    # or scheduler hiccup and flips the asymmetry assertion below.
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        netlist = Netlist(f"sr_{length}")
        clk = netlist.add_input("clk")
        nxt = netlist.add_input("next")
        rst = netlist.add_input("reset")
        build_srag(netlist, map_sequence(list(range(length))), clk, nxt, rst)
        best = min(best, time.perf_counter() - start)
    return best


def _fsm_effort(length):
    fsm = FiniteStateMachine.from_select_sequence(list(range(length)))
    result = synthesize_fsm(fsm, encoding="binary")
    return result.synthesis_seconds, result.stats


def _sweep():
    shift_register_seconds = [_shift_register_effort(n) for n in LENGTHS]
    fsm_data = [_fsm_effort(n) for n in LENGTHS]
    return shift_register_seconds, fsm_data


@pytest.fixture(scope="module")
def effort_data():
    return _sweep()


def test_synthesis_effort_asymmetry(benchmark, print_report, effort_data):
    shift_register_seconds, fsm_data = benchmark.pedantic(
        lambda: effort_data, rounds=1, iterations=1
    )
    fsm_seconds = [seconds for seconds, _stats in fsm_data]
    fsm_merges = [stats.merge_operations for _seconds, stats in fsm_data]

    print_report(
        format_figure(
            "Section 3 -- synthesis effort vs sequence length",
            "N",
            LENGTHS,
            {
                "shift register/s": shift_register_seconds,
                "symbolic FSM/s": fsm_seconds,
                "FSM minimiser merges": [float(m) for m in fsm_merges],
            },
            y_label="construction time (s) / minimisation work",
            expectation=(
                "FSM synthesis effort blows up with N (paper: >6 h at N=256 vs "
                "36 min for the shift register); the shift register scales linearly"
            ),
        )
    )

    # The FSM's minimisation work grows super-linearly with N.
    assert fsm_merges[-1] > 8 * fsm_merges[0]
    # At N = 256 the generic FSM synthesis costs far more than constructing
    # the structured shift register.
    assert fsm_seconds[-1] > 5 * shift_register_seconds[-1]
