"""Campaign engine at benchmark scale: cold evaluation versus cached replay.

Runs the ``demo`` campaign (4 workloads x 3 array sizes x all styles) twice
against one persistent cache: the first pass evaluates every grid point, the
second is pure cache replay.  The printed report shows the campaign-level
Pareto fronts -- the cross-workload summary the paper's closing section asks
for -- and the speedup the result cache delivers, which is what lets the
figure-sweep campaigns (``fig8``, ``fig10``) and downstream analyses consume
previously-computed design points instead of re-synthesising them.
"""

import time

import pytest

from repro.engine import CampaignRunner, ResultCache, build_campaign


@pytest.fixture(scope="module")
def campaign_cache_dir(tmp_path_factory):
    """Module-scoped persistent cache shared by the cold and warm passes."""
    return str(tmp_path_factory.mktemp("campaign_cache"))


@pytest.fixture(scope="module")
def cold_result(campaign_cache_dir):
    start = time.perf_counter()
    result = CampaignRunner(ResultCache(campaign_cache_dir), workers=0).run(
        build_campaign("demo")
    )
    return result, time.perf_counter() - start


def test_campaign_cold_run_covers_the_grid(benchmark, print_report, cold_result):
    result, _ = benchmark.pedantic(lambda: cold_result, rounds=1, iterations=1)
    assert result.hits == 0
    assert len(result.records) == len(build_campaign("demo"))
    # Every (workload, geometry) group produced a usable Pareto front.
    fronts = result.pareto_fronts()
    assert len(fronts) == 4 * 3
    for front in fronts.values():
        assert front
    print_report(result.describe())


def test_campaign_warm_run_is_pure_cache_replay(
    benchmark, print_report, campaign_cache_dir, cold_result
):
    cold, cold_seconds = cold_result

    def replay():
        start = time.perf_counter()
        result = CampaignRunner(ResultCache(campaign_cache_dir), workers=0).run(
            build_campaign("demo")
        )
        return result, time.perf_counter() - start

    warm, warm_seconds = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert warm.hits == len(warm.records)
    assert warm.evaluated == 0
    # Cached records reproduce the cold run's fronts exactly.
    assert {
        group: [record.key for record in front]
        for group, front in warm.pareto_fronts().items()
    } == {
        group: [record.key for record in front]
        for group, front in cold.pareto_fronts().items()
    }
    print_report(
        f"campaign replay: cold {cold_seconds * 1000:.0f} ms -> "
        f"warm {warm_seconds * 1000:.0f} ms "
        f"({cold_seconds / max(warm_seconds, 1e-9):.0f}x) for "
        f"{len(warm.records)} design points, 100% cache hits"
    )
