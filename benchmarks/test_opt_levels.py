"""What logic optimization is worth, per architecture (the O0 vs O1 table).

The paper's synthesis figures come out of Design Compiler, which always
optimizes before reporting; our ``run_synthesis_flow`` historically reported
on the raw generated netlist.  This benchmark regenerates the comparison the
``opt_levels`` campaign sweeps -- cell count and area at O0 versus O1 for
every style on one representative workload -- and pins the structural claims:
the optimizer strictly shrinks the decoder-based CntAG (shared AND-tree
prefixes, constant-enable folding), and an O1 netlist is already at its
fixpoint (optimizing twice changes nothing).
"""

from repro.analysis.reporting import format_table
from repro.engine.jobs import build_design
from repro.flow import FlowSpec
from repro.synth.flow import run_synthesis_flow
from repro.workloads.registry import build_pattern

STYLES = (
    ("SRAG", "two-hot"),
    ("CntAG", "decoders"),
    ("CntAG", "adders"),
    ("ArithAG", "binary"),
    ("FSM", "binary"),
)


def _measure(style, variant, opt_level):
    design = build_design(build_pattern("motion_est_read", 16, 16), style, variant)
    result = run_synthesis_flow(design.netlist, spec=FlowSpec(opt_level=opt_level))
    return sum(result.area.cell_counts.values()), result.area_cells, result


def test_opt_levels_table(benchmark, print_report):
    rows = []
    wins = {}
    for style, variant in STYLES:
        raw_cells, raw_area, _ = _measure(style, variant, 0)
        opt_cells, opt_area, opt_result = _measure(style, variant, 1)
        wins[(style, variant)] = opt_result.opt_report.cells_removed
        rows.append(
            [
                f"{style}[{variant}]",
                raw_cells,
                opt_cells,
                raw_area,
                opt_area,
                100.0 * (raw_area - opt_area) / raw_area,
            ]
        )

    # The recorded stat is one full O1 synthesis of the decoder CntAG, the
    # point the motivation singles out.
    benchmark.pedantic(
        lambda: _measure("CntAG", "decoders", 1), rounds=3, iterations=1
    )

    print_report(
        format_table(
            ["style", "cells O0", "cells O1", "area O0", "area O1", "area -%"],
            rows,
            title="logic optimization win, motion_est_read 16x16",
        )
    )

    # Decoder-heavy CntAG must shrink strictly; nothing may ever grow.
    assert wins[("CntAG", "decoders")] > 0
    for row in rows:
        assert row[2] <= row[1], f"{row[0]}: O1 grew the netlist"
        assert row[4] <= row[3], f"{row[0]}: O1 grew the area"

    # Idempotence: an O1 netlist re-optimizes to itself.
    design = build_design(build_pattern("motion_est_read", 16, 16), "CntAG", "decoders")
    once = run_synthesis_flow(design.netlist, spec=FlowSpec(opt_level=1))
    from repro.synth.opt import optimize_netlist

    clone = design.netlist.clone()
    optimize_netlist(clone, opt_level=1)
    again = optimize_netlist(clone, opt_level=1)
    assert not again.changed
    assert sum(once.area.cell_counts.values()) >= len(clone.cells)
