"""Bitset vs reference QM cover selection for the synthesis hot path.

PR 5 rewrote :func:`repro.synth.logic.minimize._select_cover` on integer
bitsets (AND/popcount instead of per-minterm ``covers()`` rescans); the
pre-bitset implementation is kept in-tree as ``_select_cover_reference``
for exactly this comparison.  This benchmark runs both on the *same*
seeded dense random table the tracked ``qm_cover_selection`` scenario of
``tools/bench.py`` measures (the smoke size CI records in
``BENCH_PR5.json``), checks the covers are element-for-element identical,
and enforces a >= 3x speedup floor so the win cannot silently regress.
"""

import importlib.util
import time
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.synth.logic.minimize import (
    MinimizationStats,
    _prime_implicants,
    _select_cover,
    _select_cover_reference,
)


def _load_bench_module():
    """Load tools/bench.py (not a package) for its scenario definitions."""
    path = Path(__file__).resolve().parents[1] / "tools" / "bench.py"
    spec = importlib.util.spec_from_file_location("sradgen_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_qm_cover_selection_speedup(benchmark, print_report):
    bench = _load_bench_module()
    table = bench.cover_selection_table(bench.COVER_INPUTS_SMOKE)
    primes = _prime_implicants(table, MinimizationStats())

    new_s, cover = _time(
        lambda: _select_cover(primes, table.on_set, MinimizationStats())
    )
    ref_s, reference = _time(
        lambda: _select_cover_reference(primes, table.on_set, MinimizationStats())
    )
    speedup = ref_s / new_s

    # Recorded pytest-benchmark stats measure one bare bitset run, so the
    # tracked number is directly comparable to ref_s above.
    benchmark.pedantic(
        lambda: _select_cover(primes, table.on_set, MinimizationStats()),
        rounds=3,
        iterations=1,
    )

    print_report(
        format_table(
            ["implementation", "time (ms)", "cover size"],
            [
                ["reference", ref_s * 1e3, len(reference)],
                ["bitset", new_s * 1e3, len(cover)],
                ["speedup", speedup, 1],
            ],
            title=(
                f"QM cover selection, dense random "
                f"{table.num_inputs}-input table, {len(primes)} primes"
            ),
        )
    )

    # Same cover, element for element...
    assert cover == reference
    # ...much faster.  Measured ~25x on the development machine at this
    # size; 3x is the floor enforced here with headroom for noisy CI.
    assert speedup >= 3.0
