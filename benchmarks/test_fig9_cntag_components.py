"""Figure 9: delay of the CntAG's components (counter, row decoder, column decoder).

The paper decomposes the CntAG delay into the counter section and the two
decoders and observes that the decoder delay grows with the array size and
begins to dominate.  The same three components are synthesised independently
here.  Expected shape: decoder delay grows markedly with array size while the
counter section grows only slowly.  (Deviation recorded in EXPERIMENTS.md:
with the pre-decoded, buffered decoder of this model the decoder's growth is
less steep than the paper's synthesized decoder, so the crossover where it
overtakes the counter is not reproduced.)
"""

import pytest

from repro.analysis.reporting import format_figure
from repro.generators.counter_based import CounterBasedAddressGenerator
from repro.workloads import motion_estimation

SIZES = [16, 32, 64, 128, 256]


def _sweep():
    components = []
    for size in SIZES:
        design = CounterBasedAddressGenerator(
            motion_estimation.new_img_read_pattern(size, size, 2, 2)
        )
        components.append(design.component_reports())
    return components


@pytest.fixture(scope="module")
def component_sweep():
    return _sweep()


def test_fig9_cntag_component_delays(benchmark, print_report, component_sweep):
    components = benchmark.pedantic(lambda: component_sweep, rounds=1, iterations=1)
    labels = [f"{s}x{s}" for s in SIZES]
    print_report(
        format_figure(
            "Figure 9 -- CntAG component delays vs array size",
            "array",
            labels,
            {
                "counter/ns": [c["counter"].delay_ns for c in components],
                "row decoder/ns": [c["row_decoder"].delay_ns for c in components],
                "column decoder/ns": [c["column_decoder"].delay_ns for c in components],
            },
            y_label="delay/ns",
            expectation="decoder delay grows with array size; counter delay grows slowly",
        )
    )

    row_decoder_delays = [c["row_decoder"].delay_ns for c in components]
    counter_delays = [c["counter"].delay_ns for c in components]
    # The decoder contribution grows with the array size.
    assert row_decoder_delays[-1] > 1.25 * row_decoder_delays[0]
    # The counter section grows only slowly (sub-2x over a 16x size range).
    assert counter_delays[-1] < 2.0 * counter_delays[0]
    # The total follows the paper's definition: counter + worst decoder.
    total = counter_delays[-1] + max(
        row_decoder_delays[-1], components[-1]["column_decoder"].delay_ns
    )
    assert total > counter_delays[-1]
