"""Table 3: average delay-reduction and area-increase factors per workload.

For the four workloads of the paper's Table 3 (``dct``, ``zoombytwo``,
``motion_est``, ``fifo``) the SRAG and the CntAG are synthesised over an
array-size sweep and the delay-reduction / area-increase factors are
averaged.  The paper reports factors of 1.7-1.9 (delay) and 2.4-3.2 (area).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.tradeoff import average_factors, compare_generators
from repro.workloads import dct, fifo, motion_estimation, zoom

#: Array sizes (square) each workload is swept over.
SIZES = [16, 32, 64, 128]

#: Paper values for side-by-side printing: (delay reduction, area increase).
PAPER_TABLE3 = {
    "dct": (1.7, 3.2),
    "zoombytwo": (1.7, 3.1),
    "motion_est": (1.8, 3.0),
    "fifo": (1.9, 2.4),
}

WORKLOADS = {
    "dct": lambda size: dct.column_pass_pattern(size, size),
    "zoombytwo": lambda size: zoom.zoom_read_pattern(size, size, 2),
    "motion_est": lambda size: motion_estimation.new_img_read_pattern(size, size, 2, 2),
    "fifo": lambda size: fifo.fifo_pattern(size, size),
}


def _sweep():
    factors = {}
    for name, factory in WORKLOADS.items():
        records = [
            compare_generators(f"{name}_{size}", factory(size)) for size in SIZES
        ]
        factors[name] = average_factors(records)
    return factors


@pytest.fixture(scope="module")
def table3_factors():
    return _sweep()


def test_table3_average_factors(benchmark, print_report, table3_factors):
    factors = benchmark.pedantic(lambda: table3_factors, rounds=1, iterations=1)

    rows = []
    for name in ("dct", "zoombytwo", "motion_est", "fifo"):
        paper_delay, paper_area = PAPER_TABLE3[name]
        measured_delay, measured_area = factors[name]
        rows.append(
            [name, paper_delay, measured_delay, paper_area, measured_area]
        )
    print_report(
        format_table(
            ["Example", "paper delay x", "measured delay x", "paper area x", "measured area x"],
            rows,
            title="Table 3 -- average delay reduction and area increase factors",
        )
    )

    for name, (delay_factor, area_factor) in factors.items():
        # The SRAG is faster for every workload...
        assert delay_factor > 1.2, f"{name}: delay reduction factor too small"
        # ...and pays for it in area, in the same ballpark the paper reports.
        assert 1.2 < area_factor < 5.0, f"{name}: area factor outside expected band"
    # The FIFO pattern is among the cheapest in area penalty (it needs no
    # DivCnt and uses single-register rings), in line with the paper's table
    # where fifo has the smallest area-increase factor.
    assert factors["fifo"][1] <= 1.10 * min(area for _, area in factors.values())
