"""Table 1: LinAS / RowAS / ColAS of ``new_img`` (4x4 image, 2x2 macroblock, m=0)."""

from repro.analysis.reporting import format_table
from repro.workloads import motion_estimation

PAPER_LINAS = [0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15]
PAPER_ROWAS = [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]
PAPER_COLAS = [0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3]


def test_table1_address_sequences(benchmark, print_report):
    """Regenerate Table 1 and check it matches the paper exactly."""

    def build():
        return motion_estimation.read_sequence(4, 4, 2, 2)

    sequence = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        ["LinAS", ";".join(map(str, sequence.linear))],
        ["RowAS", ";".join(map(str, sequence.row_sequence))],
        ["ColAS", ";".join(map(str, sequence.col_sequence))],
    ]
    print_report(
        format_table(["Name", "Address Sequence"], rows,
                     title="Table 1 -- address sequences for new_img (4x4, 2x2 macroblock)")
    )

    assert sequence.linear == PAPER_LINAS
    assert sequence.row_sequence == PAPER_ROWAS
    assert sequence.col_sequence == PAPER_COLAS
