"""Table 2: SRAdGen mapping parameters for the row address sequence of Table 1."""

from repro.analysis.reporting import format_table
from repro.core.mapper import map_sequence
from repro.workloads import motion_estimation

PAPER_TABLE2 = {
    "I": [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3],
    "D": [2, 2, 2, 2, 2, 2, 2, 2],
    "R": [0, 1, 0, 1, 2, 3, 2, 3],
    "U": [0, 1, 2, 3],
    "O": [2, 2, 2, 2],
    "Z": [0, 1, 4, 5],
    "S": [(0, 1), (2, 3)],
    "P": [4, 4],
    "dC": 2,
    "pC": 4,
}


def test_table2_mapping_parameters(benchmark, print_report):
    """Regenerate Table 2 and check every parameter matches the paper."""
    sequence = motion_estimation.read_sequence(4, 4, 2, 2)

    mapping = benchmark.pedantic(
        lambda: map_sequence(sequence.row_sequence, num_lines=sequence.rows),
        rounds=1,
        iterations=1,
    )
    measured = mapping.as_table()

    rows = []
    for key in ("I", "D", "R", "U", "O", "Z", "S", "P", "dC", "pC"):
        rows.append([key, str(PAPER_TABLE2[key]), str(measured[key])])
    print_report(
        format_table(
            ["Parameter", "Paper", "Measured"],
            rows,
            title="Table 2 -- mapping parameters for the row address sequence",
        )
    )

    for key, expected in PAPER_TABLE2.items():
        assert measured[key] == expected, f"parameter {key} differs from the paper"
