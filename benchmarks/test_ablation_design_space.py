"""Ablation and design-space benchmarks beyond the paper's evaluation.

These runs quantify the design choices DESIGN.md calls out:

* **Two-hot vs one-hot** -- what the SRAG's two-hot encoding saves compared
  with a flat one-hot state machine over the whole array (the comparison the
  paper makes qualitatively against the SFM's one-hot encoding).
* **CntAG address computation** -- the cost of explicit adders versus
  bit-range concatenation in the counter-based baseline.
* **State encodings** -- the symbolic FSM under binary / gray / one-hot
  encodings for a block-access sequence.
* **Data organisation** -- the effect of a blocked layout on SRAG cost (the
  future-work knob of the paper's Section 5).
"""

import pytest

from repro.analysis.explorer import explore
from repro.analysis.reporting import format_table
from repro.generators import (
    CounterBasedAddressGenerator,
    FsmAddressGenerator,
    SragDesign,
)
from repro.memory.layout import BlockedLayout
from repro.workloads import motion_estimation

SIZE = 16


@pytest.fixture(scope="module")
def read_pattern():
    return motion_estimation.new_img_read_pattern(SIZE, SIZE, 2, 2)


def test_two_hot_versus_one_hot_encoding(benchmark, print_report, read_pattern):
    sequence = read_pattern.to_sequence()

    def run():
        two_hot = SragDesign(sequence).synthesize()
        one_hot = FsmAddressGenerator(
            sequence, encoding="onehot", output_style="select_lines"
        ).synthesize()
        return two_hot, one_hot

    two_hot, one_hot = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        format_table(
            ["Encoding", "delay/ns", "area/cells", "flip-flops"],
            [
                ["two-hot SRAG", two_hot.delay_ns, two_hot.area_cells,
                 two_hot.area.flip_flop_count],
                ["one-hot FSM", one_hot.delay_ns, one_hot.area_cells,
                 one_hot.area.flip_flop_count],
            ],
            title="Ablation -- two-hot SRAG vs flat one-hot state machine (16x16 read)",
        )
    )
    # Two-hot needs rows+cols flip-flops; one-hot needs one per *access*.
    assert two_hot.area.flip_flop_count < one_hot.area.flip_flop_count
    assert two_hot.area_cells < one_hot.area_cells


def test_cntag_concatenation_ablation(benchmark, print_report, read_pattern):
    def run():
        concat = CounterBasedAddressGenerator(read_pattern, use_concatenation=True)
        adders = CounterBasedAddressGenerator(read_pattern, use_concatenation=False)
        return concat.synthesize(), adders.synthesize()

    concat, adders = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        format_table(
            ["CntAG address computation", "delay/ns", "area/cells"],
            [
                ["bit-range concatenation", concat.delay_ns, concat.area_cells],
                ["explicit adders", adders.delay_ns, adders.area_cells],
            ],
            title="Ablation -- CntAG address-computation style (16x16 read)",
        )
    )
    assert concat.area_cells < adders.area_cells


def test_fsm_encoding_sweep(benchmark, print_report, read_pattern):
    sequence = motion_estimation.read_sequence(8, 8, 2, 2)

    def run():
        results = {}
        for encoding in ("binary", "gray", "onehot"):
            results[encoding] = FsmAddressGenerator(
                sequence, encoding=encoding, output_style="two_hot"
            ).synthesize()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [encoding, result.delay_ns, result.area_cells, result.area.flip_flop_count]
        for encoding, result in results.items()
    ]
    print_report(
        format_table(
            ["FSM encoding", "delay/ns", "area/cells", "flip-flops"],
            rows,
            title="Ablation -- symbolic FSM state encodings (8x8 read sequence)",
        )
    )
    assert results["onehot"].area.flip_flop_count > results["binary"].area.flip_flop_count


def test_blocked_data_organisation(benchmark, print_report, read_pattern):
    """A 2x2-blocked layout turns block access into an incremental sequence,
    shrinking the SRAG's control logic -- the data-organisation opportunity
    the paper defers to future work."""
    sequence = read_pattern.to_sequence()

    def run():
        row_major = SragDesign(sequence).synthesize()
        blocked = SragDesign(sequence.with_layout(BlockedLayout(2, 2))).synthesize()
        return row_major, blocked

    row_major, blocked = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        format_table(
            ["Data organisation", "delay/ns", "area/cells"],
            [
                ["row-major (paper)", row_major.delay_ns, row_major.area_cells],
                ["2x2 blocked", blocked.delay_ns, blocked.area_cells],
            ],
            title="Extension -- effect of data organisation on the SRAG (16x16 read)",
        )
    )
    assert blocked.delay_ns <= row_major.delay_ns * 1.1


def test_design_space_exploration(benchmark, print_report):
    pattern = motion_estimation.new_img_read_pattern(8, 8, 2, 2)
    result = benchmark.pedantic(lambda: explore(pattern), rounds=1, iterations=1)
    print_report(result.describe())
    assert {"SRAG", "CntAG"}.issubset({p.style for p in result.points})
    assert result.pareto()
