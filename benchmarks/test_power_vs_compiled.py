"""Reference vs compiled simulation time for the power study hot path.

``estimate_power`` simulates 256 cycles per design point, which made the
dict-driven reference simulator the slowest loop in the repo once the
``power`` campaign landed.  This benchmark measures the same measurement --
energy per access of a 16x16 SRAG -- through both engines, checks they
agree bit-for-bit, and asserts the compiled engine's >= 5x speedup.
"""

import time

from repro.analysis.reporting import format_table
from repro.generators.srag_design import SragDesign
from repro.synth.power import estimate_power
from repro.workloads.registry import build_pattern

CYCLES = 256


def _srag_netlist(size):
    pattern = build_pattern("motion_est_read", size, size)
    return SragDesign(pattern.to_sequence()).netlist


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_power_vs_compiled(benchmark, print_report):
    netlist = _srag_netlist(16)

    ref_s, reference = _time(
        lambda: estimate_power(netlist, cycles=CYCLES, engine="reference")
    )
    cmp_s, compiled = _time(lambda: estimate_power(netlist, cycles=CYCLES))
    speedup = ref_s / cmp_s

    # Recorded pytest-benchmark stats measure one bare compiled run, so the
    # tracked number is directly comparable to ref_s above.
    benchmark.pedantic(
        lambda: estimate_power(netlist, cycles=CYCLES), rounds=3, iterations=1
    )

    print_report(
        format_table(
            ["engine", "time (ms)", "energy/access (fJ)", "toggles"],
            [
                ["reference", ref_s * 1e3, reference.energy_per_access_fj,
                 reference.total_toggles],
                ["compiled", cmp_s * 1e3, compiled.energy_per_access_fj,
                 compiled.total_toggles],
                ["speedup", speedup, 1.0, 1],
            ],
            title=f"estimate_power, 16x16 SRAG, {CYCLES} cycles",
        )
    )

    # Same measurement...
    assert compiled.toggle_counts == reference.toggle_counts
    assert compiled.switching_energy_fj == reference.switching_energy_fj
    # ...much faster.  Measured ~12x on the development machine; 5x is the
    # floor enforced here with headroom for noisy CI runners.
    assert speedup >= 5.0
