"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md section 4 for the index).  The benchmarks print the measured
rows/series in the same layout as the paper so the comparison recorded in
EXPERIMENTS.md can be read side by side, and they use ``benchmark.pedantic``
with a single round because each measurement is itself a complete synthesis
run (the quantity of interest is the synthesis *result*, not wall-clock
jitter).
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks print their reproduced tables; keep output visible.
    config.option.capture = "no"


@pytest.fixture
def print_report():
    """Print a report block surrounded by blank lines so it is easy to find."""

    def _print(text: str) -> None:
        print()
        print(text)
        print()

    return _print
