"""Figure 10: SRAG versus CntAG area for array sizes 16x16 .. 256x256.

Expected shape: the SRAG is roughly three times larger than the CntAG, with
both growing with the array size (the SRAG because it carries one flip-flop
per select line, the CntAG because its decoders widen).
"""

import pytest

from repro.analysis.reporting import format_figure
from repro.analysis.tradeoff import compare_generators
from repro.workloads import motion_estimation

SIZES = [16, 32, 64, 128, 256]


def _sweep():
    read_records = []
    write_records = []
    for size in SIZES:
        read_records.append(
            compare_generators(
                f"motion_est_read_{size}",
                motion_estimation.new_img_read_pattern(size, size, 2, 2),
            )
        )
        write_records.append(
            compare_generators(
                f"motion_est_write_{size}",
                motion_estimation.new_img_write_pattern(size, size),
            )
        )
    return read_records, write_records


@pytest.fixture(scope="module")
def sweep_records():
    return _sweep()


def test_fig10_area_vs_array_size(benchmark, print_report, sweep_records):
    read_records, write_records = benchmark.pedantic(
        lambda: sweep_records, rounds=1, iterations=1
    )
    labels = [f"{s}x{s}" for s in SIZES]
    print_report(
        format_figure(
            "Figure 10 -- address generator area vs array size",
            "array",
            labels,
            {
                "SRAG(Write)/cells": [r.srag.area_cells for r in write_records],
                "CntAG(Write)/cells": [r.cntag.area_cells for r in write_records],
                "SRAG(Read)/cells": [r.srag.area_cells for r in read_records],
                "CntAG(Read)/cells": [r.cntag.area_cells for r in read_records],
            },
            y_label="area/(cell units)",
            expectation="SRAG roughly 3x larger than CntAG; both grow with array size",
        )
    )

    for records in (read_records, write_records):
        for record in records:
            assert record.area_increase_factor > 1.0
        # At the largest array the SRAG carries a substantial area penalty
        # (the paper reports about 3x).
        assert records[-1].area_increase_factor > 2.0
        # Both architectures grow with the array size.
        assert records[-1].srag.area_cells > records[0].srag.area_cells
        assert records[-1].cntag.area_cells > records[0].cntag.area_cells
    # The SRAG's area at 256x256 is dominated by its select-line flip-flops
    # (one per row plus one per column), matching the paper's ~3e4 cell units.
    assert read_records[-1].srag.flip_flops >= 512
