"""repro -- reproduction of "Performance-Area Trade-Off of Address Generators
for Address Decoder-Decoupled Memory" (Hettiaratchi, Cheung, Clarke; DATE 2002).

The package is organised in layers (see DESIGN.md for the full inventory):

* :mod:`repro.hdl` -- structural RTL substrate (netlists, primitives,
  simulator, components, HDL emitters).
* :mod:`repro.synth` -- standard-cell library, buffering, static timing,
  area accounting, two-level logic minimisation and FSM synthesis.
* :mod:`repro.memory` -- conventional RAM, address decoder-decoupled memory
  (ADDM) and Sequential FIFO Memory models.
* :mod:`repro.workloads` -- the paper's access patterns (motion estimation,
  DCT, zoom, FIFO) and additional synthetic patterns.
* :mod:`repro.core` -- the paper's contribution: the SRAG architecture, the
  SRAdGen mapping procedure, the two-hot ADDM generator and the relaxed
  multi-counter extension.
* :mod:`repro.generators` -- baseline architectures (CntAG, arithmetic,
  symbolic FSM, SFM pointers) behind a common interface.
* :mod:`repro.analysis` -- trade-off records, design-space exploration and
  report formatting.

Quickstart::

    from repro.workloads import motion_estimation
    from repro.core import generate

    sequence = motion_estimation.read_sequence(16, 16, 2, 2)
    result = generate(sequence, synthesize=True)
    print(result.describe())
"""

from repro.core import (
    MappingError,
    SragAddressGenerator,
    SragFunctionalModel,
    SragMapping,
    generate,
    map_address_sequence,
    map_sequence,
)
from repro.flow import FlowSpec
from repro.workloads import AddressSequence

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "AddressSequence",
    "FlowSpec",
    "MappingError",
    "SragAddressGenerator",
    "SragFunctionalModel",
    "SragMapping",
    "generate",
    "map_address_sequence",
    "map_sequence",
]
