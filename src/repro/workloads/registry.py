"""Named workload registry.

Campaigns, the command-line tool and the benchmark harnesses all need to
refer to workloads *by name* -- a campaign spec is data (it must be hashable,
serialisable and reconstructable inside a worker process), so it cannot carry
pattern objects around.  This module is the single mapping from workload name
to the factory that builds its :class:`~repro.workloads.loopnest.AffineAccessPattern`
for a given array geometry.

Every factory has the uniform signature ``factory(rows, cols) -> AffineAccessPattern``
(``rows``/``cols`` are the physical array dimensions, ``img_height`` x
``img_width`` in the paper's examples).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List

from repro.workloads import dct, fifo, motion_estimation, patterns, zoom
from repro.workloads.loopnest import AffineAccessPattern

__all__ = ["WORKLOADS", "available_workloads", "build_pattern", "register_workload"]

WorkloadFactory = Callable[[int, int], AffineAccessPattern]

#: Built-in workload factories: name -> callable(rows, cols) -> AffineAccessPattern
WORKLOADS: Dict[str, WorkloadFactory] = {
    "motion_est_read": lambda rows, cols: motion_estimation.new_img_read_pattern(
        cols, rows, 2, 2
    ),
    "motion_est_write": lambda rows, cols: motion_estimation.new_img_write_pattern(
        cols, rows
    ),
    "dct": lambda rows, cols: dct.column_pass_pattern(cols, rows),
    "dct_row": lambda rows, cols: dct.row_pass_pattern(cols, rows),
    "zoombytwo": lambda rows, cols: zoom.zoom_read_pattern(cols, rows, 2),
    "fifo": lambda rows, cols: fifo.fifo_pattern(cols, rows),
    "strided": lambda rows, cols: patterns.strided_pattern(rows, cols, 2),
    "block_raster": lambda rows, cols: patterns.block_raster_pattern(rows, cols, 2, 2),
    "interleaved_row": lambda rows, cols: patterns.interleaved_row_pattern(rows, cols),
}


def available_workloads() -> List[str]:
    """Registered workload names, sorted."""
    return sorted(WORKLOADS)


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register (or replace) a workload factory under ``name``."""
    WORKLOADS[name] = factory
    _cached_pattern.cache_clear()


@lru_cache(maxsize=128)
def _cached_pattern(name: str, rows: int, cols: int) -> AffineAccessPattern:
    return WORKLOADS[name](rows, cols)


def build_pattern(name: str, rows: int, cols: int) -> AffineAccessPattern:
    """Build the access pattern for workload ``name`` on a ``rows x cols`` array.

    Patterns are memoised per ``(name, rows, cols)``: a campaign grid asks
    for the same pattern once per style and opt level, the construction
    walks the whole loop nest, and patterns are never mutated after
    construction (re-registering a workload name drops the cache).
    """
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        )
    return _cached_pattern(name, rows, cols)
