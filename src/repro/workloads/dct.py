"""Separable DCT workload (the ``dct`` row of the paper's Table 3).

A separable two-dimensional DCT processes the image in two one-dimensional
passes: a row pass followed by a column pass over the intermediate result.
The access sequence that stresses the address generator is the *column-wise*
(transposed-raster) traversal performed by the second pass -- the row pass is
an ordinary incremental raster already covered by the ``fifo`` workload.
The paper does not spell out which array reference its ``dct`` sequence was
taken from; this interpretation (column-wise traversal of one array) is
recorded here and in DESIGN.md.
"""

from __future__ import annotations

from repro.workloads.loopnest import AffineAccessPattern, AffineExpression, Loop
from repro.workloads.sequences import AddressSequence

__all__ = ["column_pass_pattern", "column_pass_sequence", "row_pass_pattern"]


def column_pass_pattern(img_width: int = 8, img_height: int = 8) -> AffineAccessPattern:
    """Column-wise (transposed raster) traversal used by the DCT column pass."""
    loops = [Loop("c", 0, img_width), Loop("r", 0, img_height)]
    return AffineAccessPattern(
        name=f"dct_col_pass_{img_height}x{img_width}",
        loops=loops,
        row_expr=AffineExpression.build({"r": 1}),
        col_expr=AffineExpression.build({"c": 1}),
        rows=img_height,
        cols=img_width,
    )


def row_pass_pattern(img_width: int = 8, img_height: int = 8) -> AffineAccessPattern:
    """Row-wise raster traversal used by the DCT row pass."""
    loops = [Loop("r", 0, img_height), Loop("c", 0, img_width)]
    return AffineAccessPattern(
        name=f"dct_row_pass_{img_height}x{img_width}",
        loops=loops,
        row_expr=AffineExpression.build({"r": 1}),
        col_expr=AffineExpression.build({"c": 1}),
        rows=img_height,
        cols=img_width,
    )


def column_pass_sequence(img_width: int = 8, img_height: int = 8) -> AddressSequence:
    """The DCT column-pass access sequence as an :class:`AddressSequence`."""
    return column_pass_pattern(img_width, img_height).to_sequence()
