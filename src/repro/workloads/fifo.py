"""FIFO / incremental workload (the ``fifo`` row of the paper's Table 3).

An incremental linear address sequence ``0, 1, 2, ..., N-1``: the write order
the paper assumes for ``new_img`` and the access order of a FIFO buffer.
This is also the sequence used for the Section 3 comparison between the
symbolic state machine and the plain shift register (Figures 3 and 4).
"""

from __future__ import annotations

from repro.workloads.loopnest import AffineAccessPattern, AffineExpression, Loop
from repro.workloads.sequences import AddressSequence

__all__ = ["fifo_pattern", "fifo_sequence", "incremental_sequence"]


def fifo_pattern(img_width: int = 4, img_height: int = 4) -> AffineAccessPattern:
    """Incremental raster access over a ``img_height x img_width`` array."""
    loops = [Loop("r", 0, img_height), Loop("c", 0, img_width)]
    return AffineAccessPattern(
        name=f"fifo_{img_height}x{img_width}",
        loops=loops,
        row_expr=AffineExpression.build({"r": 1}),
        col_expr=AffineExpression.build({"c": 1}),
        rows=img_height,
        cols=img_width,
    )


def fifo_sequence(img_width: int = 4, img_height: int = 4) -> AddressSequence:
    """The FIFO sequence over a 2-D array as an :class:`AddressSequence`."""
    return fifo_pattern(img_width, img_height).to_sequence()


def incremental_sequence(length: int) -> AddressSequence:
    """A one-dimensional incremental sequence ``0..length-1``.

    Used by the Section 3 experiments (Figures 3 and 4), which compare
    address-generator implementations for a single row of select lines.
    """
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    return AddressSequence.from_linear(
        f"incremental_{length}", list(range(length)), rows=1, cols=length
    )
