"""Image zoom workload (the ``zoombytwo`` row of the paper's Table 3).

Zooming an image by an integer factor with nearest-neighbour replication
reads each source pixel ``factor`` times along each axis while rasterising
the output image.  The resulting source-array read sequence repeats each
column address ``factor`` times consecutively and each row address
``factor * output_width`` times -- a pattern that maps onto the SRAG with
small division counters, which is why the paper includes it.
"""

from __future__ import annotations

from repro.workloads.loopnest import AffineAccessPattern, AffineExpression, Loop
from repro.workloads.sequences import AddressSequence

__all__ = ["zoom_read_pattern", "zoom_read_sequence"]


def zoom_read_pattern(
    src_width: int = 4,
    src_height: int = 4,
    factor: int = 2,
) -> AffineAccessPattern:
    """Source-image read pattern when zooming by ``factor``.

    The output raster loop ``(oi, oj)`` is expressed as the equivalent
    four-deep nest ``(i, di, j, dj)`` with ``oi = i*factor + di`` and
    ``oj = j*factor + dj`` so the source row/column indices (``i``/``j``)
    stay affine in the loop variables.
    """
    if factor < 1:
        raise ValueError(f"zoom factor must be >= 1, got {factor}")
    loops = [
        Loop("i", 0, src_height),
        Loop("di", 0, factor),
        Loop("j", 0, src_width),
        Loop("dj", 0, factor),
    ]
    return AffineAccessPattern(
        name=f"zoomby{factor}_{src_height}x{src_width}",
        loops=loops,
        row_expr=AffineExpression.build({"i": 1}),
        col_expr=AffineExpression.build({"j": 1}),
        rows=src_height,
        cols=src_width,
    )


def zoom_read_sequence(
    src_width: int = 4,
    src_height: int = 4,
    factor: int = 2,
) -> AddressSequence:
    """The zoom read sequence as an :class:`AddressSequence`."""
    return zoom_read_pattern(src_width, src_height, factor).to_sequence()
