"""Additional synthetic access patterns.

These patterns are not taken from the paper's evaluation but widen the design
space the library can explore: some of them map cleanly onto the SRAG
(strided, block raster, interleaved), others deliberately violate its DivCnt
or PassCnt restrictions (serpentine, random) so that the mapper's failure
behaviour and the fall-back generators can be exercised.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.workloads.loopnest import AffineAccessPattern, AffineExpression, Loop
from repro.workloads.sequences import AddressSequence

__all__ = [
    "strided_pattern",
    "block_raster_pattern",
    "interleaved_row_pattern",
    "serpentine_sequence",
    "repeated_sequence",
    "lcg_sequence",
]


def strided_pattern(rows: int, cols: int, row_stride: int = 1) -> AffineAccessPattern:
    """Raster access visiting every ``row_stride``-th row, then the rest.

    For ``row_stride = 2`` this is the field (interlaced) access order of
    video material: even rows first, then odd rows.
    """
    if rows % row_stride:
        raise ValueError(f"row stride {row_stride} does not divide {rows} rows")
    loops = [
        Loop("f", 0, row_stride),
        Loop("r", 0, rows // row_stride),
        Loop("c", 0, cols),
    ]
    return AffineAccessPattern(
        name=f"strided{row_stride}_{rows}x{cols}",
        loops=loops,
        row_expr=AffineExpression.build({"r": row_stride, "f": 1}),
        col_expr=AffineExpression.build({"c": 1}),
        rows=rows,
        cols=cols,
    )


def block_raster_pattern(
    rows: int, cols: int, block_rows: int, block_cols: int
) -> AffineAccessPattern:
    """Visit the array block by block, raster order inside each block.

    This is the generalisation of the motion-estimation read pattern to an
    arbitrary block size.
    """
    if rows % block_rows or cols % block_cols:
        raise ValueError(
            f"block {block_rows}x{block_cols} does not tile array {rows}x{cols}"
        )
    loops = [
        Loop("bg", 0, rows // block_rows),
        Loop("bh", 0, cols // block_cols),
        Loop("k", 0, block_rows),
        Loop("l", 0, block_cols),
    ]
    return AffineAccessPattern(
        name=f"block{block_rows}x{block_cols}_{rows}x{cols}",
        loops=loops,
        row_expr=AffineExpression.build({"bg": block_rows, "k": 1}),
        col_expr=AffineExpression.build({"bh": block_cols, "l": 1}),
        rows=rows,
        cols=cols,
    )


def interleaved_row_pattern(rows: int, cols: int, repeat: int = 2) -> AffineAccessPattern:
    """Read every row ``repeat`` times before moving to the next row.

    Typical of vertical filtering with a small reuse window.
    """
    loops = [Loop("r", 0, rows), Loop("p", 0, repeat), Loop("c", 0, cols)]
    return AffineAccessPattern(
        name=f"rowrepeat{repeat}_{rows}x{cols}",
        loops=loops,
        row_expr=AffineExpression.build({"r": 1}),
        col_expr=AffineExpression.build({"c": 1}),
        rows=rows,
        cols=cols,
    )


def serpentine_sequence(rows: int, cols: int) -> AddressSequence:
    """Boustrophedon (serpentine) raster: alternate rows reverse direction.

    The column order reverses every row, so the column address sequence is
    *not* expressible with a single PassCnt/DivCnt pair -- a useful negative
    test for the SRAG mapper.
    """
    indices = []
    for r in range(rows):
        columns = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
        indices.extend((r, c) for c in columns)
    return AddressSequence.from_indices(
        f"serpentine_{rows}x{cols}", indices, rows, cols
    )


def repeated_sequence(base: Sequence[int], repeats_per_address: int, rows: int, cols: int,
                      name: Optional[str] = None) -> AddressSequence:
    """Repeat every address of ``base`` ``repeats_per_address`` times in place."""
    if repeats_per_address < 1:
        raise ValueError("repeats_per_address must be >= 1")
    linear: List[int] = []
    for address in base:
        linear.extend([address] * repeats_per_address)
    return AddressSequence.from_linear(
        name or f"repeat{repeats_per_address}", linear, rows, cols
    )


def lcg_sequence(length: int, rows: int, cols: int, seed: int = 1) -> AddressSequence:
    """A deterministic pseudo-random sequence (linear congruential generator).

    Irregular sequences like this one are exactly what the SRAG is *not* for;
    they exercise the mapper's rejection path and the FSM/CntAG fall-backs.
    """
    size = rows * cols
    state = seed
    linear = []
    for _ in range(length):
        state = (state * 1103515245 + 12345) % (2 ** 31)
        linear.append(state % size)
    return AddressSequence.from_linear(f"lcg_{length}", linear, rows, cols)
