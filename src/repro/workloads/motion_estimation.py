"""Block-matching motion-estimation workload (paper Figure 7 and Table 1).

The paper's running example is the access pattern of the ``new_img`` array in
the full-search block-matching kernel of Figure 7.  With ``m = 0`` (the value
used throughout the paper) the search loops contribute a single iteration and
the read order visits the current macroblock row by row, macroblock by
macroblock -- the "block access" pattern the SRAG targets.  The write order
is not defined by the kernel; following Section 6 we assume the production
order makes the linear address sequence incremental.
"""

from __future__ import annotations

from repro.workloads.loopnest import AffineAccessPattern, AffineExpression, Loop
from repro.workloads.sequences import AddressSequence

__all__ = [
    "new_img_read_pattern",
    "new_img_write_pattern",
    "read_sequence",
    "write_sequence",
]


def new_img_read_pattern(
    img_width: int = 4,
    img_height: int = 4,
    mb_width: int = 2,
    mb_height: int = 2,
    search_range: int = 0,
) -> AffineAccessPattern:
    """Access pattern of ``new_img`` reads in the block-matching kernel.

    Parameters
    ----------
    img_width, img_height:
        Image (and memory array) dimensions.
    mb_width, mb_height:
        Macroblock dimensions; must divide the image dimensions.
    search_range:
        The paper's ``m``.  The kernel repeats the macroblock read once per
        candidate displacement; with ``m = 0`` (the paper's setting) the
        macroblock is read exactly once per block position.

    Returns
    -------
    AffineAccessPattern
        ``new_img[g*mb_height + k][h*mb_width + l]`` inside the
        ``g, h, (i, j), k, l`` nest of Figure 7.
    """
    if img_width % mb_width or img_height % mb_height:
        raise ValueError(
            f"macroblock {mb_height}x{mb_width} does not tile image "
            f"{img_height}x{img_width}"
        )
    if search_range < 0:
        raise ValueError(f"search range must be non-negative, got {search_range}")
    search_trips = max(1, 2 * search_range)

    loops = [
        Loop("g", 0, img_height // mb_height),
        Loop("h", 0, img_width // mb_width),
        Loop("i", 0, search_trips),
        Loop("j", 0, search_trips),
        Loop("k", 0, mb_height),
        Loop("l", 0, mb_width),
    ]
    row_expr = AffineExpression.build({"g": mb_height, "k": 1})
    col_expr = AffineExpression.build({"h": mb_width, "l": 1})
    return AffineAccessPattern(
        name=f"motion_est_read_{img_height}x{img_width}",
        loops=loops,
        row_expr=row_expr,
        col_expr=col_expr,
        rows=img_height,
        cols=img_width,
    )


def new_img_write_pattern(img_width: int = 4, img_height: int = 4) -> AffineAccessPattern:
    """Assumed production (write) order of ``new_img``: an incremental raster.

    Section 6: "we assume that the write sequence is such that LinAS is
    incremental (i.e. 0, 1, 2, ..., N)".
    """
    loops = [Loop("r", 0, img_height), Loop("c", 0, img_width)]
    return AffineAccessPattern(
        name=f"motion_est_write_{img_height}x{img_width}",
        loops=loops,
        row_expr=AffineExpression.build({"r": 1}),
        col_expr=AffineExpression.build({"c": 1}),
        rows=img_height,
        cols=img_width,
    )


def read_sequence(
    img_width: int = 4,
    img_height: int = 4,
    mb_width: int = 2,
    mb_height: int = 2,
    search_range: int = 0,
) -> AddressSequence:
    """The ``new_img`` read sequence as an :class:`AddressSequence`.

    With the default parameters this reproduces Table 1 of the paper:
    ``LinAS = 0,1,4,5,2,3,6,7,8,9,12,13,10,11,14,15``.
    """
    return new_img_read_pattern(
        img_width, img_height, mb_width, mb_height, search_range
    ).to_sequence()


def write_sequence(img_width: int = 4, img_height: int = 4) -> AddressSequence:
    """The assumed incremental write sequence for ``new_img``."""
    return new_img_write_pattern(img_width, img_height).to_sequence()
