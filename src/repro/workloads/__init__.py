"""Workload (address sequence) generators.

Each module produces the access patterns of one application class the paper
uses, both as an :class:`~repro.workloads.sequences.AddressSequence` (what
the SRAG mapper and the memory models consume) and, where the pattern comes
from an affine loop nest, as an
:class:`~repro.workloads.loopnest.AffineAccessPattern` (what the
counter-based CntAG baseline is constructed from).

* :mod:`repro.workloads.motion_estimation` -- the block-matching kernel of
  Figure 7 (Tables 1/2, Figures 8-10, the ``motion_est`` row of Table 3).
* :mod:`repro.workloads.dct` -- separable DCT column pass (Table 3 ``dct``).
* :mod:`repro.workloads.zoom` -- nearest-neighbour image zoom (Table 3
  ``zoombytwo``).
* :mod:`repro.workloads.fifo` -- incremental / FIFO access (Table 3 ``fifo``
  and the Section 3 sweep of Figures 3-4).
* :mod:`repro.workloads.patterns` -- additional synthetic patterns for
  design-space exploration and negative tests.
"""

from repro.workloads.loopnest import AffineAccessPattern, AffineExpression, Loop
from repro.workloads.sequences import (
    AddressSequence,
    collapse_repetitions,
    consecutive_repetitions,
)
from repro.workloads import dct, fifo, motion_estimation, patterns, zoom
from repro.workloads.registry import (
    WORKLOADS,
    available_workloads,
    build_pattern,
    register_workload,
)
from repro.workloads.dct import column_pass_pattern, column_pass_sequence
from repro.workloads.fifo import fifo_pattern, fifo_sequence, incremental_sequence
from repro.workloads.motion_estimation import (
    new_img_read_pattern,
    new_img_write_pattern,
    read_sequence,
    write_sequence,
)
from repro.workloads.zoom import zoom_read_pattern, zoom_read_sequence

__all__ = [
    "AddressSequence",
    "AffineAccessPattern",
    "AffineExpression",
    "Loop",
    "WORKLOADS",
    "available_workloads",
    "build_pattern",
    "register_workload",
    "collapse_repetitions",
    "consecutive_repetitions",
    "dct",
    "fifo",
    "motion_estimation",
    "patterns",
    "zoom",
    "column_pass_pattern",
    "column_pass_sequence",
    "fifo_pattern",
    "fifo_sequence",
    "incremental_sequence",
    "new_img_read_pattern",
    "new_img_write_pattern",
    "read_sequence",
    "write_sequence",
    "zoom_read_pattern",
    "zoom_read_sequence",
]
