"""Address sequence abstraction.

Everything the paper studies starts from an *address sequence*: the ordered
list of memory words an application touches.  :class:`AddressSequence` keeps
the linear view (``LinAS``), the row/column views (``RowAS`` / ``ColAS``) and
the physical array shape together, and provides the small sequence algebra
(consecutive-repetition counting, reduction, uniqueness) that both the SRAG
mapping procedure of Section 5 and the analysis code rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.memory.layout import DataLayout, ROW_MAJOR

__all__ = ["AddressSequence", "consecutive_repetitions", "collapse_repetitions"]


def consecutive_repetitions(sequence: Sequence[int]) -> List[int]:
    """Length of each run of consecutive identical values.

    This is the division-count set ``D`` of the paper's mapping procedure:
    ``consecutive_repetitions([0,0,1,1,0,0]) == [2, 2, 2]``.
    """
    runs: List[int] = []
    previous = None
    for position, value in enumerate(sequence):
        if position > 0 and value == previous:
            runs[-1] += 1
        else:
            runs.append(1)
        previous = value
    return runs


def collapse_repetitions(sequence: Sequence[int]) -> List[int]:
    """Collapse runs of consecutive identical values to a single element.

    This is the reduced address sequence ``R`` of the mapping procedure:
    ``collapse_repetitions([0,0,1,1,0,0]) == [0, 1, 0]``.
    """
    reduced: List[int] = []
    for value in sequence:
        if not reduced or reduced[-1] != value:
            reduced.append(value)
    return reduced


@dataclass
class AddressSequence:
    """An ordered sequence of accesses to a ``rows x cols`` memory array.

    Attributes
    ----------
    name:
        Workload name (used in reports and benchmark tables).
    linear:
        Linear address sequence (``LinAS``); ``linear[k] = row*cols + col``.
    rows, cols:
        Physical array dimensions (``img_height`` x ``img_width`` in the
        paper's examples).
    layout:
        The data organisation that produced the linear addresses; recorded so
        derived sequences can be regenerated under a different organisation.
    """

    name: str
    linear: List[int]
    rows: int
    cols: int
    layout: DataLayout = field(default_factory=lambda: ROW_MAJOR)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"array dimensions must be positive, got {self.rows}x{self.cols}")
        size = self.rows * self.cols
        for address in self.linear:
            if not (0 <= address < size):
                raise ValueError(
                    f"linear address {address} outside 0..{size - 1} "
                    f"({self.rows}x{self.cols} array)"
                )

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_linear(
        cls,
        name: str,
        addresses: Iterable[int],
        rows: int,
        cols: int,
        layout: DataLayout = ROW_MAJOR,
    ) -> "AddressSequence":
        """Build from a linear address list."""
        return cls(name=name, linear=list(addresses), rows=rows, cols=cols, layout=layout)

    @classmethod
    def from_rowcol(
        cls,
        name: str,
        row_sequence: Sequence[int],
        col_sequence: Sequence[int],
        rows: int,
        cols: int,
    ) -> "AddressSequence":
        """Build from parallel row and column address sequences."""
        if len(row_sequence) != len(col_sequence):
            raise ValueError(
                f"row sequence length {len(row_sequence)} != "
                f"column sequence length {len(col_sequence)}"
            )
        linear = [r * cols + c for r, c in zip(row_sequence, col_sequence)]
        return cls(name=name, linear=linear, rows=rows, cols=cols)

    @classmethod
    def from_indices(
        cls,
        name: str,
        indices: Iterable[Tuple[int, int]],
        rows: int,
        cols: int,
        layout: DataLayout = ROW_MAJOR,
    ) -> "AddressSequence":
        """Build from logical 2-D array indices using ``layout``.

        The logical index ``(i0, i1)`` is first placed in the physical array
        by the layout (row-major by default, as the paper assumes) and the
        linear address follows the physical placement.
        """
        linear = [layout.linear(i0, i1, rows, cols) for i0, i1 in indices]
        return cls(name=name, linear=linear, rows=rows, cols=cols, layout=layout)

    # ---------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self.linear)

    def __iter__(self) -> Iterator[int]:
        return iter(self.linear)

    def __getitem__(self, index: int) -> int:
        return self.linear[index]

    @property
    def length(self) -> int:
        """Number of accesses in the sequence."""
        return len(self.linear)

    @property
    def row_sequence(self) -> List[int]:
        """The row address sequence (``RowAS``)."""
        return [address // self.cols for address in self.linear]

    @property
    def col_sequence(self) -> List[int]:
        """The column address sequence (``ColAS``)."""
        return [address % self.cols for address in self.linear]

    # -------------------------------------------------------------- analysis
    def unique_addresses(self) -> List[int]:
        """Distinct linear addresses in first-appearance order."""
        seen = set()
        unique: List[int] = []
        for address in self.linear:
            if address not in seen:
                seen.add(address)
                unique.append(address)
        return unique

    def is_incremental(self) -> bool:
        """True when the sequence is ``0, 1, 2, ..., length-1`` (FIFO order)."""
        return self.linear == list(range(len(self.linear)))

    def repetition_counts(self) -> List[int]:
        """Run lengths of consecutive identical linear addresses."""
        return consecutive_repetitions(self.linear)

    def reduced(self) -> List[int]:
        """Linear sequence with consecutive repetitions collapsed."""
        return collapse_repetitions(self.linear)

    def with_layout(self, layout: DataLayout) -> "AddressSequence":
        """Re-map the sequence under a different data organisation.

        The logical index of each access is recovered by inverting the current
        layout and re-placed using ``layout``.
        """
        indices = []
        for address in self.linear:
            row, col = divmod(address, self.cols)
            # Invert the current layout by brute force over the array; the
            # layouts used in practice are bijections, so this is exact.
            indices.append(self._invert_layout(row, col))
        return AddressSequence.from_indices(
            f"{self.name}@{layout.name}", indices, self.rows, self.cols, layout
        )

    def _invert_layout(self, row: int, col: int) -> Tuple[int, int]:
        if not hasattr(self, "_inverse_cache"):
            inverse = {}
            for i0 in range(self.rows):
                for i1 in range(self.cols):
                    inverse[self.layout.rowcol(i0, i1, self.rows, self.cols)] = (i0, i1)
            self._inverse_cache = inverse
        return self._inverse_cache[(row, col)]

    def describe(self) -> str:
        """Short human-readable summary used by the CLI."""
        return (
            f"{self.name}: {self.length} accesses to a {self.rows}x{self.cols} array, "
            f"{len(self.unique_addresses())} distinct addresses"
        )
