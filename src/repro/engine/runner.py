"""Campaign execution: fan jobs out, stream records back, merge Pareto fronts.

The runner is the scaling layer the ROADMAP asks for: it partitions a
campaign into cached and pending jobs, evaluates the pending ones either
serially or over a :class:`concurrent.futures.ProcessPoolExecutor`, persists
every fresh result into the :class:`~repro.engine.cache.ResultCache`, and
merges everything into a :class:`CampaignResult` whose records are in
campaign order -- so serial and parallel runs of the same campaign are
bit-for-bit identical.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
import traceback
from dataclasses import asdict, dataclass, field

try:  # the process submodule is missing on platforms without multiprocessing
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - environment dependent
    class BrokenProcessPool(Exception):
        """Placeholder; never raised when process pools are unavailable."""
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.mapping_params import MappingError
from repro.engine.cache import ResultCache
from repro.engine.jobs import Campaign, EvalJob, build_design
from repro.engine.pareto import pareto_min
from repro.flow import opt_label_suffix
from repro.hdl.netlist import NetlistError
from repro.obs import Tracer, get_tracer, log, metrics, phase, set_tracer, span, tracing_enabled
from repro.synth.power import estimate_power

__all__ = ["CampaignResult", "CampaignRunner", "EvalRecord", "evaluate_job"]

#: Record status values.
OK, SKIPPED, ERROR = "ok", "skipped", "error"


@dataclass
class EvalRecord:
    """The outcome of one evaluation job.

    ``status`` is ``"ok"`` (metrics valid), ``"skipped"`` (architecture not
    applicable to the workload; ``note`` holds the reason) or ``"error"``
    (unexpected failure; ``note`` holds the traceback summary).

    ``energy_per_access_fj`` / ``avg_power_uw`` are NaN unless the job asked
    for the power study (``EvalJob.power_cycles > 0``); records cached before
    power existed load fine -- :meth:`from_dict` fills missing fields with
    their defaults.

    ``opt_level`` / ``opt_cells_removed`` record the logic-optimization
    setting and its win (net cells eliminated before buffering); both stay
    at their zero defaults -- and out of the cached dictionary form -- for
    jobs that do not opt in, so pre-optimization cache entries round-trip
    unchanged.

    ``phase_timings`` is the opt-in flow-profiling breakdown: stage name to
    wall seconds (``job.pattern``, ``job.mapping``, ``flow.timing``, ...),
    populated only while tracing is enabled.  Like ``cached`` it is
    *volatile* evaluation metadata, never part of the cached dictionary
    form: timings differ run to run, so persisting them would break the
    byte-identical cache/JSONL invariant PRs 2-5 established -- records
    written with tracing on and off are indistinguishable on disk.
    """

    workload: str
    rows: int
    cols: int
    style: str
    variant: str
    library: str
    key: str
    status: str
    delay_ns: float = float("nan")
    area_cells: float = float("nan")
    flip_flops: int = 0
    total_cells: int = 0
    buffers_inserted: int = 0
    energy_per_access_fj: float = float("nan")
    avg_power_uw: float = float("nan")
    opt_level: int = 0
    opt_cells_removed: int = 0
    note: str = ""
    duration_s: float = 0.0
    cached: bool = False
    phase_timings: Dict[str, float] = field(default_factory=dict)

    @property
    def has_power(self) -> bool:
        """True when the record carries power-study metrics."""
        return self.energy_per_access_fj == self.energy_per_access_fj

    @property
    def label(self) -> str:
        """Compact display label, e.g. ``fifo 8x8 SRAG[two-hot] O1``."""
        return (
            f"{self.workload} {self.rows}x{self.cols} "
            f"{self.style}[{self.variant}]{opt_label_suffix(self.opt_level)}"
        )

    def to_dict(self) -> dict:
        """Plain-dict form stored in the result cache (``cached`` and
        ``phase_timings`` excluded).

        The power fields are omitted when the study did not run, and the
        optimization fields when the job ran at the default ``opt_level=0``,
        so cache entries for jobs predating either feature keep their exact
        original format (and NaN never has to survive a JSON round-trip).
        ``phase_timings`` is dropped unconditionally: profiling data is
        volatile, and cache records must stay byte-identical whether or not
        tracing was on when they were evaluated.
        """
        data = asdict(self)
        data.pop("cached")
        data.pop("phase_timings")
        if not self.has_power:
            data.pop("energy_per_access_fj")
            data.pop("avg_power_uw")
        if not self.opt_level:
            data.pop("opt_level")
            data.pop("opt_cells_removed")
        return data

    @classmethod
    def from_dict(cls, data: dict, *, cached: bool = False) -> "EvalRecord":
        """Rebuild a record from its cached dictionary form."""
        known = {f for f in cls.__dataclass_fields__ if f != "cached"}
        return cls(cached=cached, **{k: v for k, v in data.items() if k in known})


def _warm_worker() -> None:
    """Process-pool initializer: pre-import the evaluation stack.

    Run once per worker process instead of lazily on its first job, so the
    import and registry-construction cost overlaps with job submission and
    every job -- including the first one a worker sees -- pays only for its
    own evaluation.
    """
    from repro.hdl import primitives
    from repro.synth import cell_library
    from repro.workloads.registry import available_workloads

    available_workloads()
    # Touching the tables forces their module-level construction here.
    assert primitives.PRIMITIVES and cell_library.LIBRARIES


#: Shape of one worker batch result: the records, the serialised span trees
#: recorded while evaluating them (empty unless the parent traces), and the
#: worker-side metrics counter delta for the batch.
BatchResult = Tuple[List[EvalRecord], List[Dict[str, Any]], Dict[str, Any]]


def _evaluate_batch(jobs: List[EvalJob], collect_spans: bool = False) -> BatchResult:
    """Evaluate a chunk of jobs in one worker call (amortises pickling).

    This is the worker-side telemetry collector: metric increments made
    while evaluating the batch are snapshotted and shipped back as a delta,
    and -- when the dispatching parent traces (``collect_spans``) -- the
    batch runs under a fresh tracer whose span trees are serialised into the
    return value so the parent can re-parent them under its dispatch span.
    """
    before = metrics.snapshot()
    if collect_spans:
        previous = get_tracer()
        tracer = set_tracer(Tracer(enabled=True))
        try:
            records = [evaluate_job(job) for job in jobs]
        finally:
            set_tracer(previous)
        spans = [root.to_dict() for root in tracer.roots]
    else:
        records = [evaluate_job(job) for job in jobs]
        spans = []
    return records, spans, metrics.counters_since(before)


def evaluate_job(job: EvalJob) -> EvalRecord:
    """Evaluate one job: build the pattern and design, synthesise, measure.

    Never raises: inapplicable architectures come back as ``skipped`` records
    and unexpected failures as ``error`` records, so one bad grid point
    cannot take down a campaign (or a worker process).

    With tracing enabled the evaluation runs under an ``evaluate_job`` span
    with one child span per phase (pattern build, mapping, synthesis stages,
    power), and the same breakdown lands on ``EvalRecord.phase_timings``.
    """
    start = time.perf_counter()
    spec = job.spec
    # Phase wall-clock attribution is opt-in (it rides the tracing switch);
    # ``None`` keeps the disabled path allocation-free.
    timings: Optional[Dict[str, float]] = {} if tracing_enabled() else None
    base = dict(
        workload=job.workload,
        rows=job.rows,
        cols=job.cols,
        style=job.style,
        variant=job.variant,
        library=spec.library,
        key=job.key,
        # Part of the base so skipped/error records keep the grid axis too.
        opt_level=spec.opt_level,
    )
    with span("evaluate_job", detail=job.label):
        try:
            with phase("job.pattern", timings):
                pattern = job.pattern()
            if job.style == "FSM" and pattern.trip_count > spec.max_fsm_states:
                return EvalRecord(
                    status=SKIPPED,
                    note=(
                        f"sequence length {pattern.trip_count} exceeds "
                        f"max_fsm_states={spec.max_fsm_states}"
                    ),
                    duration_s=time.perf_counter() - start,
                    phase_timings=dict(timings or {}),
                    **base,
                )
            with phase("job.mapping", timings):
                design = build_design(pattern, job.style, job.variant)
            with phase("job.synthesize", timings):
                result = design.synthesize(spec=spec)
            if timings is not None:
                # Fold the flow's per-stage breakdown (elaborate, opt,
                # buffering, timing, ...) in next to the job-level phases.
                timings.update(result.stage_timings)
            power: Dict[str, float] = {}
            if spec.power_cycles:
                # Measure on the buffered working copy the area/delay figures
                # came from, so inserted buffer trees pay their switching
                # energy.
                with phase("job.power", timings):
                    report = estimate_power(
                        result.netlist,
                        library=spec.resolve_library(),
                        cycles=spec.power_cycles,
                    )
                power = {
                    "energy_per_access_fj": report.energy_per_access_fj,
                    "avg_power_uw": report.average_power_uw,
                }
        except (MappingError, NetlistError, ValueError) as error:
            return EvalRecord(
                status=SKIPPED,
                note=str(error),
                duration_s=time.perf_counter() - start,
                phase_timings=dict(timings or {}),
                **base,
            )
        except Exception:  # pragma: no cover - defensive; surfaced in the record
            return EvalRecord(
                status=ERROR,
                note=traceback.format_exc(limit=3),
                duration_s=time.perf_counter() - start,
                phase_timings=dict(timings or {}),
                **base,
            )
        return EvalRecord(
            status=OK,
            delay_ns=result.delay_ns,
            area_cells=result.area_cells,
            flip_flops=result.area.flip_flop_count,
            total_cells=sum(result.area.cell_counts.values()),
            buffers_inserted=result.buffers_inserted,
            opt_cells_removed=(
                result.opt_report.cells_removed if result.opt_report else 0
            ),
            duration_s=time.perf_counter() - start,
            phase_timings=dict(timings or {}),
            **power,
            **base,
        )


GroupKey = Tuple[str, int, int, str]  # (workload, rows, cols, library)


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: str
    records: List[EvalRecord] = field(default_factory=list)

    # -------------------------------------------------------------- queries
    @property
    def hits(self) -> int:
        """Number of records served from the cache."""
        return sum(1 for record in self.records if record.cached)

    @property
    def evaluated(self) -> int:
        """Number of records evaluated fresh in this run."""
        return len(self.records) - self.hits

    def ok_records(self) -> List[EvalRecord]:
        """Records with valid metrics."""
        return [record for record in self.records if record.status == OK]

    def groups(self) -> Dict[GroupKey, List[EvalRecord]]:
        """Successful records grouped by (workload, rows, cols, library)."""
        grouped: Dict[GroupKey, List[EvalRecord]] = {}
        for record in self.ok_records():
            key = (record.workload, record.rows, record.cols, record.library)
            grouped.setdefault(key, []).append(record)
        return grouped

    def pareto_fronts(self) -> Dict[GroupKey, List[EvalRecord]]:
        """Per-group Pareto fronts minimising (delay, area)."""
        return {
            key: pareto_min(records, key=lambda r: (r.delay_ns, r.area_cells))
            for key, records in self.groups().items()
        }

    # ------------------------------------------------------------ reporting
    def describe(self) -> str:
        """Multi-line campaign summary with per-group Pareto fronts."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        lines = [
            f"campaign {self.campaign!r}: {len(self.records)} points "
            f"({counts.get(OK, 0)} ok, {counts.get(SKIPPED, 0)} skipped, "
            f"{counts.get(ERROR, 0)} errors); "
            f"cache hits {self.hits}/{len(self.records)}"
        ]
        for group_key, front in sorted(self.pareto_fronts().items()):
            workload, rows, cols, library = group_key
            lines.append(f"  {workload} {rows}x{cols} @{library}:")
            for record in sorted(front, key=lambda r: r.delay_ns):
                style = f"{record.style}[{record.variant}]"
                style += opt_label_suffix(record.opt_level)
                power = (
                    f"   e/access {record.energy_per_access_fj:8.1f} fJ"
                    if record.has_power
                    else ""
                )
                lines.append(
                    f"    * {style:<18} delay {record.delay_ns:7.3f} ns   "
                    f"area {record.area_cells:10.1f} cu   FFs {record.flip_flops}"
                    f"{power}"
                )
        return "\n".join(lines)


class CampaignRunner:
    """Run campaigns against a result cache, serially or in parallel.

    Parameters
    ----------
    cache:
        Result store to consult and populate; defaults to a fresh in-memory
        cache (no persistence).
    workers:
        Worker process count.  ``None`` picks ``min(cpu_count, 8)``;
        ``0``/``1`` runs serially in-process.
    progress:
        Optional callback invoked as ``progress(record, done, total)`` as
        each record becomes available (cached records first, then fresh ones
        in completion order).
    chunk_size:
        Jobs per worker submission.  ``None`` (the default) picks a size
        that spreads the pending jobs over roughly four batches per worker,
        amortising per-submit pickling without starving the pool of
        parallelism; ``1`` restores one-future-per-job dispatch.

    One worker pool is kept alive across the runner's lifetime, so a
    sequence of ``run()`` calls (a campaign sweep, an explorer session)
    pays process startup and the per-worker registry warm-up exactly once.
    Use the runner as a context manager -- or call :meth:`close` -- to shut
    the pool down deterministically.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        workers: Optional[int] = None,
        progress: Optional[Callable[[EvalRecord, int, int], None]] = None,
        chunk_size: Optional[int] = None,
    ):
        self.cache = cache if cache is not None else ResultCache()
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.workers = max(0, workers)
        self.progress = progress
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # ---------------------------------------------------------------- pool
    def _get_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        """The persistent worker pool, created (and warmed) on first use."""
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, initializer=_warm_worker
            )
        return self._pool

    def _discard_pool(self) -> None:
        # getattr: __del__ may run on a half-constructed runner whose
        # __init__ raised before _pool was assigned.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self._discard_pool()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown dependent
        self.close()

    def _chunked(self, jobs: List[EvalJob]) -> List[List[EvalJob]]:
        """Split pending jobs into per-submission batches."""
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # ~4 batches per worker: large enough to amortise pickling and
            # future bookkeeping, small enough to keep every worker busy
            # even when job durations are skewed.
            size = max(1, len(jobs) // (4 * max(1, self.workers)))
        return [jobs[i:i + size] for i in range(0, len(jobs), size)]

    # ------------------------------------------------------------------ run
    def run(self, campaign: Campaign, *, force: bool = False) -> CampaignResult:
        """Evaluate ``campaign``, reusing cached records unless ``force``.

        Records come back in campaign order regardless of worker completion
        order, so serial and parallel runs produce identical results.
        """
        total = len(campaign.jobs)
        done = 0
        by_key: Dict[str, EvalRecord] = {}
        pending: List[EvalJob] = []
        # Campaigns may legitimately contain duplicate keys (a grid that
        # revisits a point); each duplicate is evaluated once but must still
        # advance the progress counter once per occurrence, or `done` never
        # reaches `total`.
        pending_occurrences: Dict[str, int] = {}

        with span("campaign.run", detail=campaign.name) as run_span:
            for job in campaign.jobs:
                cached = None if force else self.cache.get(job.key)
                if cached is not None:
                    record = EvalRecord.from_dict(cached, cached=True)
                    by_key[job.key] = record
                    done += 1
                    if self.progress:
                        self.progress(record, done, total)
                else:
                    if job.key not in pending_occurrences:
                        pending.append(job)
                        pending_occurrences[job.key] = 0
                    pending_occurrences[job.key] += 1

            run_span.add("jobs", total)
            run_span.add("cache_hits", done)
            run_span.add("pending", len(pending))
            with span("campaign.dispatch", detail=f"{len(pending)} pending job(s)"):
                for record in self._evaluate(pending):
                    # Error records are transient (a worker OOM, say) --
                    # caching them would replay the failure forever; only
                    # determinate outcomes (metrics, or a deterministic
                    # inapplicability) are persisted.
                    if record.status != ERROR:
                        self.cache.put(record.key, record.to_dict())
                    by_key[record.key] = record
                    for _ in range(pending_occurrences.get(record.key, 1)):
                        done += 1
                        if self.progress:
                            self.progress(record, done, total)

        records = [by_key[job.key] for job in campaign.jobs]
        return CampaignResult(campaign=campaign.name, records=records)

    # ------------------------------------------------------------- internal
    def _evaluate(self, jobs: List[EvalJob]):
        if not jobs:
            return
        produced: set = set()
        if self.workers > 1 and len(jobs) > 1:
            try:
                for record in self._evaluate_parallel(jobs):
                    produced.add(record.key)
                    yield record
                return
            except (
                OSError,
                ImportError,
                BrokenProcessPool,
            ) as error:  # pragma: no cover - environment dependent
                # Sandboxes without fork support or /dev/shm land here; the
                # campaign still completes, just serially.  The broken pool
                # is discarded so a later run() can try a fresh one.
                metrics.incr("campaign.pool_fallbacks")
                log.warning(
                    "process pool unavailable; falling back to serial",
                    component="runner",
                    error=str(error),
                )
                self._discard_pool()
        for job in jobs:
            if job.key not in produced:
                yield evaluate_job(job)

    def _evaluate_parallel(self, jobs: List[EvalJob]):
        pool = self._get_pool()
        batches = self._chunked(jobs)
        # Whether workers should trace is decided once at dispatch: each
        # batch runs under its own worker-side tracer and ships the span
        # trees back for re-parenting under the current dispatch span.
        trace_workers = tracing_enabled()
        future_jobs = {
            pool.submit(_evaluate_batch, batch, trace_workers): batch
            for batch in batches
        }
        metrics.incr("campaign.batches_dispatched", len(batches))
        if batches:
            metrics.gauge("campaign.chunk_size", max(len(b) for b in batches))
        for future in concurrent.futures.as_completed(future_jobs):
            try:
                records, span_dicts, counter_delta = future.result()
            except (OSError, BrokenProcessPool):
                # Pool-level breakage: every remaining future is doomed too;
                # escalate so _evaluate falls back to serial in-process.
                raise
            except Exception as error:
                # One raising future must not abort the whole campaign
                # mid-generator.  evaluate_job itself never raises, so a
                # failed future is a dispatch failure (pickling, a worker
                # dying mid-batch) that cannot be attributed to any single
                # job of the batch; re-evaluate the batch in-process so the
                # healthy jobs still get real records and the true offender
                # is classified per job by evaluate_job -- deterministic
                # inapplicability as "skipped", mirroring explore(),
                # anything else as a transient (uncached) "error".
                batch = future_jobs[future]
                metrics.incr("campaign.batch_failures")
                log.warning(
                    "worker batch failed; re-evaluating in-process",
                    component="runner",
                    error=f"{type(error).__name__}: {error}",
                    jobs=len(batch),
                )
                records = [evaluate_job(job) for job in batch]
                span_dicts, counter_delta = [], {}
            if counter_delta:
                metrics.merge_counters(counter_delta)
            if span_dicts:
                get_tracer().adopt(span_dicts)
            for record in records:
                yield record
