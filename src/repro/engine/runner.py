"""Campaign execution: fan jobs out, stream records back, merge Pareto fronts.

:class:`CampaignRunner` is the synchronous client of the dispatch layer:
pool ownership, chunking, caching and the per-future error policy all live
in :class:`~repro.engine.scheduler.Scheduler` (which the campaign service
shares across clients), while the runner maps one :class:`Campaign` through
one submission and merges the streamed records into a
:class:`CampaignResult` whose records are in campaign order -- so serial,
parallel and remote runs of the same campaign are bit-for-bit identical.
This module also hosts the worker-side pieces the scheduler dispatches
(:func:`evaluate_job`, :func:`_evaluate_batch`, :func:`_warm_worker`).
"""

from __future__ import annotations

import time
import traceback
import warnings
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.mapping_params import MappingError
from repro.engine.cache import ResultCache
from repro.engine.jobs import Campaign, EvalJob, build_design
from repro.engine.pareto import pareto_min
from repro.flow import opt_label_suffix
from repro.hdl.netlist import NetlistError
from repro.obs import (
    NULL_SPAN,
    Tracer,
    get_tracer,
    metrics,
    phase,
    set_tracer,
    span,
    tracing_enabled,
)
from repro.resilience.faults import fault_point
from repro.synth.power import estimate_power

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.engine.scheduler import Scheduler
    from repro.resilience.retry import RetryPolicy

__all__ = ["CampaignResult", "CampaignRunner", "EvalRecord", "evaluate_job"]

#: Record status values.
OK, SKIPPED, ERROR = "ok", "skipped", "error"


@dataclass
class EvalRecord:
    """The outcome of one evaluation job.

    ``status`` is ``"ok"`` (metrics valid), ``"skipped"`` (architecture not
    applicable to the workload; ``note`` holds the reason) or ``"error"``
    (unexpected failure; ``note`` holds the traceback summary).

    ``energy_per_access_fj`` / ``avg_power_uw`` are NaN unless the job asked
    for the power study (``EvalJob.power_cycles > 0``); records cached before
    power existed load fine -- :meth:`from_dict` fills missing fields with
    their defaults.

    ``opt_level`` / ``opt_cells_removed`` record the logic-optimization
    setting and its win (net cells eliminated before buffering); both stay
    at their zero defaults -- and out of the cached dictionary form -- for
    jobs that do not opt in, so pre-optimization cache entries round-trip
    unchanged.

    ``phase_timings`` is the opt-in flow-profiling breakdown: stage name to
    wall seconds (``job.pattern``, ``job.mapping``, ``flow.timing``, ...),
    populated only while tracing is enabled.  Like ``cached`` it is
    *volatile* evaluation metadata, never part of the cached dictionary
    form: timings differ run to run, so persisting them would break the
    byte-identical cache/JSONL invariant PRs 2-5 established -- records
    written with tracing on and off are indistinguishable on disk.

    ``lint_findings`` holds the design-rule findings (as plain dicts) when
    the job ran with ``spec.lint`` set, and is volatile for the same reason:
    lint is a diagnostic over the evaluation, not part of it, so records
    written with linting on and off must be indistinguishable on disk (and a
    cached record legitimately satisfies a linted request).

    ``verify_result`` holds the formal-equivalence verdict (as a plain dict)
    when the job ran with ``spec.verify`` set; volatile under exactly the
    lint contract above.
    """

    workload: str
    rows: int
    cols: int
    style: str
    variant: str
    library: str
    key: str
    status: str
    delay_ns: float = float("nan")
    area_cells: float = float("nan")
    flip_flops: int = 0
    total_cells: int = 0
    buffers_inserted: int = 0
    energy_per_access_fj: float = float("nan")
    avg_power_uw: float = float("nan")
    opt_level: int = 0
    opt_cells_removed: int = 0
    note: str = ""
    duration_s: float = 0.0
    cached: bool = False
    phase_timings: Dict[str, float] = field(default_factory=dict)
    lint_findings: List[dict] = field(default_factory=list)
    verify_result: Optional[dict] = None

    @property
    def has_power(self) -> bool:
        """True when the record carries power-study metrics."""
        return self.energy_per_access_fj == self.energy_per_access_fj

    @property
    def label(self) -> str:
        """Compact display label, e.g. ``fifo 8x8 SRAG[two-hot] O1``."""
        return (
            f"{self.workload} {self.rows}x{self.cols} "
            f"{self.style}[{self.variant}]{opt_label_suffix(self.opt_level)}"
        )

    def to_dict(self) -> dict:
        """Plain-dict form stored in the result cache (``cached`` and
        ``phase_timings`` excluded).

        The power fields are omitted when the study did not run, and the
        optimization fields when the job ran at the default ``opt_level=0``,
        so cache entries for jobs predating either feature keep their exact
        original format (and NaN never has to survive a JSON round-trip).
        ``phase_timings`` is dropped unconditionally: profiling data is
        volatile, and cache records must stay byte-identical whether or not
        tracing was on when they were evaluated.
        """
        data = asdict(self)
        data.pop("cached")
        data.pop("phase_timings")
        data.pop("lint_findings")
        data.pop("verify_result")
        if not self.has_power:
            data.pop("energy_per_access_fj")
            data.pop("avg_power_uw")
        if not self.opt_level:
            data.pop("opt_level")
            data.pop("opt_cells_removed")
        return data

    @classmethod
    def from_dict(cls, data: dict, *, cached: bool = False) -> "EvalRecord":
        """Rebuild a record from its cached dictionary form."""
        known = {f for f in cls.__dataclass_fields__ if f != "cached"}
        return cls(cached=cached, **{k: v for k, v in data.items() if k in known})


def _warm_worker() -> None:
    """Process-pool initializer: pre-import the evaluation stack.

    Run once per worker process instead of lazily on its first job, so the
    import and registry-construction cost overlaps with job submission and
    every job -- including the first one a worker sees -- pays only for its
    own evaluation.

    Also detaches the signal plumbing a fork-started worker inherits from
    an asyncio parent: ``loop.add_signal_handler`` registers a wakeup fd
    (a self-pipe the event loop reads), and after ``fork`` the worker
    shares that pipe.  A signal delivered to the *worker* -- e.g. the
    SIGTERM ``ProcessPoolExecutor`` sends its survivors when a sibling
    crashes and the pool breaks -- would be written into the shared pipe
    and replayed as the *parent's* signal, gracefully shutting down the
    campaign service mid-rebuild.  Resetting the dispositions and wakeup
    fd keeps worker-directed signals in the worker.
    """
    import signal

    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from repro.hdl import primitives
    from repro.synth import cell_library
    from repro.workloads.registry import available_workloads

    available_workloads()
    # Touching the tables forces their module-level construction here.
    assert primitives.PRIMITIVES and cell_library.LIBRARIES


#: Shape of one worker batch result: the records, the serialised span trees
#: recorded while evaluating them (empty unless the parent traces), and the
#: worker-side metrics counter delta for the batch.
BatchResult = Tuple[List[EvalRecord], List[Dict[str, Any]], Dict[str, Any]]


def _evaluate_batch(jobs: List[EvalJob], collect_spans: bool = False) -> BatchResult:
    """Evaluate a chunk of jobs in one worker call (amortises pickling).

    This is the worker-side telemetry collector: metric increments made
    while evaluating the batch are snapshotted and shipped back as a delta,
    and -- when the dispatching parent traces (``collect_spans``) -- the
    batch runs under a fresh tracer whose span trees are serialised into the
    return value so the parent can re-parent them under its dispatch span.
    """
    fault_point("scheduler.worker")
    before = metrics.snapshot()
    if collect_spans:
        previous = get_tracer()
        tracer = set_tracer(Tracer(enabled=True))
        try:
            records = [evaluate_job(job) for job in jobs]
        finally:
            set_tracer(previous)
        spans = [root.to_dict() for root in tracer.roots]
    else:
        records = [evaluate_job(job) for job in jobs]
        spans = []
    return records, spans, metrics.counters_since(before)


def evaluate_job(job: EvalJob) -> EvalRecord:
    """Evaluate one job: build the pattern and design, synthesise, measure.

    Never raises: inapplicable architectures come back as ``skipped`` records
    and unexpected failures as ``error`` records, so one bad grid point
    cannot take down a campaign (or a worker process).

    With tracing enabled the evaluation runs under an ``evaluate_job`` span
    with one child span per phase (pattern build, mapping, synthesis stages,
    power), and the same breakdown lands on ``EvalRecord.phase_timings``.
    """
    start = time.perf_counter()
    spec = job.spec
    # Phase wall-clock attribution is opt-in (it rides the tracing switch);
    # ``None`` keeps the disabled path allocation-free.
    timings: Optional[Dict[str, float]] = {} if tracing_enabled() else None
    base = dict(
        workload=job.workload,
        rows=job.rows,
        cols=job.cols,
        style=job.style,
        variant=job.variant,
        library=spec.library,
        key=job.key,
        # Part of the base so skipped/error records keep the grid axis too.
        opt_level=spec.opt_level,
    )
    with span("evaluate_job", detail=job.label):
        try:
            # Inside the try: an injected exception classifies exactly like
            # a real one (deterministic -> skipped, transient -> error).
            fault_point("runner.evaluate")
            with phase("job.pattern", timings):
                pattern = job.pattern()
            if job.style == "FSM" and pattern.trip_count > spec.max_fsm_states:
                return EvalRecord(
                    status=SKIPPED,
                    note=(
                        f"sequence length {pattern.trip_count} exceeds "
                        f"max_fsm_states={spec.max_fsm_states}"
                    ),
                    duration_s=time.perf_counter() - start,
                    phase_timings=dict(timings or {}),
                    **base,
                )
            with phase("job.mapping", timings):
                design = build_design(pattern, job.style, job.variant)
            with phase("job.synthesize", timings):
                result = design.synthesize(spec=spec)
            if timings is not None:
                # Fold the flow's per-stage breakdown (elaborate, opt,
                # buffering, timing, ...) in next to the job-level phases.
                timings.update(result.stage_timings)
            power: Dict[str, float] = {}
            if spec.power_cycles:
                # Measure on the buffered working copy the area/delay figures
                # came from, so inserted buffer trees pay their switching
                # energy.
                with phase("job.power", timings):
                    report = estimate_power(
                        result.netlist,
                        library=spec.resolve_library(),
                        cycles=spec.power_cycles,
                    )
                power = {
                    "energy_per_access_fj": report.energy_per_access_fj,
                    "avg_power_uw": report.average_power_uw,
                }
            lint_findings = (
                [finding.to_dict() for finding in result.lint_report.findings]
                if result.lint_report is not None
                else []
            )
            verify_result = (
                result.verify_report.to_dict()
                if result.verify_report is not None
                else None
            )
        except (MappingError, NetlistError, ValueError) as error:
            return EvalRecord(
                status=SKIPPED,
                note=str(error),
                duration_s=time.perf_counter() - start,
                phase_timings=dict(timings or {}),
                **base,
            )
        except Exception:  # pragma: no cover - defensive; surfaced in the record
            return EvalRecord(
                status=ERROR,
                note=traceback.format_exc(limit=3),
                duration_s=time.perf_counter() - start,
                phase_timings=dict(timings or {}),
                **base,
            )
        return EvalRecord(
            status=OK,
            delay_ns=result.delay_ns,
            area_cells=result.area_cells,
            flip_flops=result.area.flip_flop_count,
            total_cells=sum(result.area.cell_counts.values()),
            buffers_inserted=result.buffers_inserted,
            opt_cells_removed=(
                result.opt_report.cells_removed if result.opt_report else 0
            ),
            duration_s=time.perf_counter() - start,
            phase_timings=dict(timings or {}),
            lint_findings=lint_findings,
            verify_result=verify_result,
            **power,
            **base,
        )


GroupKey = Tuple[str, int, int, str]  # (workload, rows, cols, library)


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: str
    records: List[EvalRecord] = field(default_factory=list)

    # -------------------------------------------------------------- queries
    @property
    def hits(self) -> int:
        """Number of records served from the cache."""
        return sum(1 for record in self.records if record.cached)

    @property
    def evaluated(self) -> int:
        """Number of records evaluated fresh in this run."""
        return len(self.records) - self.hits

    def ok_records(self) -> List[EvalRecord]:
        """Records with valid metrics."""
        return [record for record in self.records if record.status == OK]

    def groups(self) -> Dict[GroupKey, List[EvalRecord]]:
        """Successful records grouped by (workload, rows, cols, library)."""
        grouped: Dict[GroupKey, List[EvalRecord]] = {}
        for record in self.ok_records():
            key = (record.workload, record.rows, record.cols, record.library)
            grouped.setdefault(key, []).append(record)
        return grouped

    def pareto_fronts(self) -> Dict[GroupKey, List[EvalRecord]]:
        """Per-group Pareto fronts minimising (delay, area)."""
        return {
            key: pareto_min(records, key=lambda r: (r.delay_ns, r.area_cells))
            for key, records in self.groups().items()
        }

    # ------------------------------------------------------------ reporting
    def describe(self) -> str:
        """Multi-line campaign summary with per-group Pareto fronts."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        lines = [
            f"campaign {self.campaign!r}: {len(self.records)} points "
            f"({counts.get(OK, 0)} ok, {counts.get(SKIPPED, 0)} skipped, "
            f"{counts.get(ERROR, 0)} errors); "
            f"cache hits {self.hits}/{len(self.records)}"
        ]
        for group_key, front in sorted(self.pareto_fronts().items()):
            workload, rows, cols, library = group_key
            lines.append(f"  {workload} {rows}x{cols} @{library}:")
            for record in sorted(front, key=lambda r: r.delay_ns):
                style = f"{record.style}[{record.variant}]"
                style += opt_label_suffix(record.opt_level)
                power = (
                    f"   e/access {record.energy_per_access_fj:8.1f} fJ"
                    if record.has_power
                    else ""
                )
                lines.append(
                    f"    * {style:<18} delay {record.delay_ns:7.3f} ns   "
                    f"area {record.area_cells:10.1f} cu   FFs {record.flip_flops}"
                    f"{power}"
                )
        return "\n".join(lines)


class CampaignRunner:
    """Run campaigns against a result cache, serially or in parallel.

    Since the scheduler split, the runner is a thin *synchronous client* of
    :class:`repro.engine.scheduler.Scheduler`: the warmed process pool,
    chunking heuristic, per-future error policy and cache writes all live in
    the scheduler, and :meth:`run` just submits the campaign's jobs and
    drains the resulting record stream in campaign order.  The public API
    and result semantics are unchanged.

    Parameters
    ----------
    cache:
        Result store to consult and populate; defaults to a fresh in-memory
        cache (no persistence).
    workers:
        Worker process count.  ``None`` picks ``min(cpu_count, 8)``;
        ``0``/``1`` runs serially in-process.
    progress:
        Optional callback invoked as ``progress(record, done, total)`` as
        each record becomes available (cached records first, then fresh ones
        in completion order).
    chunk_size:
        Jobs per worker submission.  ``None`` (the default) picks a size
        that spreads the pending jobs over roughly four batches per worker,
        amortising per-submit pickling without starving the pool of
        parallelism; ``1`` restores one-future-per-job dispatch.
    retry_policy:
        Optional :class:`~repro.resilience.retry.RetryPolicy` forwarded to
        the private scheduler: transient (``error``) records are re-run
        under bounded deterministic backoff before being surfaced.
    rebuild_budget:
        How many broken-pool rebuilds the private scheduler performs before
        degrading to serial evaluation (default 2).
    scheduler:
        An existing :class:`~repro.engine.scheduler.Scheduler` to run
        against instead of constructing a private one -- this is how
        several runners (or the campaign service) share one pool, one cache
        and one in-flight dedup table.  Mutually exclusive with ``cache`` /
        ``workers`` / ``chunk_size`` / ``retry_policy`` /
        ``rebuild_budget``, which configure the private scheduler.  A
        shared scheduler is *not* closed by the runner.

    One worker pool is kept alive across the runner's lifetime, so a
    sequence of ``run()`` calls (a campaign sweep, an explorer session)
    pays process startup and the per-worker registry warm-up exactly once.
    Use the runner as a context manager -- or call :meth:`close` -- to shut
    the pool down deterministically; a runner whose still-warm private pool
    is instead reclaimed by the garbage collector emits a
    ``ResourceWarning``.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        workers: Optional[int] = None,
        progress: Optional[Callable[[EvalRecord, int, int], None]] = None,
        chunk_size: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rebuild_budget: Optional[int] = None,
        scheduler: Optional["Scheduler"] = None,
    ):
        if scheduler is not None:
            if (
                cache is not None
                or workers is not None
                or chunk_size is not None
                or retry_policy is not None
                or rebuild_budget is not None
            ):
                raise ValueError(
                    "scheduler= is mutually exclusive with cache=/workers=/"
                    "chunk_size=/retry_policy=/rebuild_budget=; configure "
                    "the shared Scheduler instead"
                )
            self._scheduler = scheduler
            self._owns_scheduler = False
        else:
            # Imported here, not at module top: scheduler.py imports the
            # evaluation primitives from this module.
            from repro.engine.scheduler import Scheduler

            self._scheduler = Scheduler(
                cache,
                workers=workers,
                chunk_size=chunk_size,
                retry_policy=retry_policy,
                rebuild_budget=2 if rebuild_budget is None else rebuild_budget,
            )
            self._owns_scheduler = True
        self.progress = progress
        self._closed = False

    # ----------------------------------------------------------- delegation
    @property
    def scheduler(self) -> "Scheduler":
        """The scheduler this runner submits to (private or shared)."""
        return self._scheduler

    @property
    def cache(self) -> ResultCache:
        return self._scheduler.cache

    @property
    def workers(self) -> int:
        return self._scheduler.workers

    @property
    def chunk_size(self) -> Optional[int]:
        return self._scheduler.chunk_size

    @property
    def _pool(self):
        return self._scheduler._pool

    @_pool.setter
    def _pool(self, pool) -> None:
        self._scheduler._pool = pool

    def _get_pool(self):
        return self._scheduler._get_pool()

    def _discard_pool(self) -> None:
        self._scheduler._discard_pool()

    def _chunked(self, jobs: List[EvalJob]) -> List[List[EvalJob]]:
        return self._scheduler._chunked(jobs)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut down the private scheduler's worker pool (idempotent).

        A shared scheduler (``scheduler=`` at construction) is left
        running: its lifetime belongs to whoever created it.
        """
        self._closed = True
        if self._owns_scheduler:
            self._scheduler.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown dependent
        scheduler = getattr(self, "_scheduler", None)
        if (
            scheduler is not None
            and getattr(self, "_owns_scheduler", False)
            and not getattr(self, "_closed", True)
            and scheduler._pool is not None
        ):
            warnings.warn(
                "unclosed CampaignRunner reclaimed by the garbage collector; "
                "call close() or use it as a context manager",
                ResourceWarning,
                source=self,
            )
        if scheduler is not None and getattr(self, "_owns_scheduler", False):
            scheduler.close()

    # ------------------------------------------------------------------ run
    def run(self, campaign: Campaign, *, force: bool = False) -> CampaignResult:
        """Evaluate ``campaign``, reusing cached records unless ``force``.

        Records come back in campaign order regardless of worker completion
        order, so serial and parallel runs produce identical results.
        """
        total = len(campaign.jobs)
        done = 0
        by_key: Dict[str, EvalRecord] = {}
        # Campaigns may legitimately contain duplicate keys (a grid that
        # revisits a point); the scheduler evaluates each key once but every
        # occurrence must still advance the progress counter, or `done`
        # never reaches `total`.
        occurrences: Dict[str, int] = {}
        for job in campaign.jobs:
            occurrences[job.key] = occurrences.get(job.key, 0) + 1

        with span("campaign.run", detail=campaign.name) as run_span:
            with span("campaign.dispatch") as dispatch_span:
                submission = self._scheduler.submit(campaign.jobs, force=force)
                pending = submission.expected - len(submission.cached_keys)
                run_span.add("jobs", total)
                run_span.add(
                    "cache_hits",
                    sum(occurrences[key] for key in submission.cached_keys),
                )
                run_span.add("pending", pending)
                if dispatch_span is not NULL_SPAN:
                    dispatch_span.detail = f"{pending} pending job(s)"
                for record in submission.results():
                    by_key[record.key] = record
                    for _ in range(occurrences.get(record.key, 1)):
                        done += 1
                        if self.progress:
                            self.progress(record, done, total)

        records = [by_key[job.key] for job in campaign.jobs]
        return CampaignResult(campaign=campaign.name, records=records)
