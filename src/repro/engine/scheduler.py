"""Scheduler: the shared dispatch core behind the runner and the service.

PRs 1-5 grew one synchronous :class:`~repro.engine.runner.CampaignRunner`
that owned the process pool, the chunking heuristic and the per-future error
policy.  This module extracts that machinery into a reusable
:class:`Scheduler` that any number of clients -- the synchronous runner, the
asyncio campaign service, several threads of either -- drive concurrently:

* **submit/stream API keyed by content hash.**  :meth:`Scheduler.submit`
  takes a batch of :class:`~repro.engine.jobs.EvalJob` and returns a
  :class:`Submission` whose :meth:`Submission.results` generator streams
  :class:`~repro.engine.runner.EvalRecord` back in completion order
  (cache-served records first, in submission order).
* **Cross-request dedup.**  Jobs are identified by ``EvalJob.key``.  A key
  already being evaluated for another client is *joined*, not re-evaluated:
  both submissions receive the one record when it lands
  (``scheduler.dedup_hits`` counts the joins).  Keys already in the result
  cache are answered immediately.
* **One warmed pool, shared.**  The scheduler owns the persistent
  ``ProcessPoolExecutor`` (created and warmed on first use), the
  batches-per-worker chunking heuristic, and the error policy the runner
  established: a raising batch future is re-evaluated in-process so healthy
  jobs still get real records, and a broken/unavailable pool degrades to
  serial evaluation instead of failing the campaign.

Completed non-error records are written to the scheduler's
:class:`~repro.engine.cache.ResultCache` *before* the in-flight entry is
retired, so a concurrently arriving request can never miss both and
re-evaluate.  Error records stay uncached (transient failures must not
replay forever) -- the policy :class:`CampaignRunner` has always had.

Self-healing (PR 10) extends that error policy from "don't cache failures"
to "recover from them":

* a broken process pool is **rebuilt** (fresh warmed pool, one rebuild per
  pool generation, ``scheduler.pool_rebuilds``) and the doomed batches'
  still-in-flight jobs are re-enqueued on it -- never re-evaluating a job
  whose record already landed.  Only after ``rebuild_budget`` rebuilds does
  the scheduler degrade to serial in-process evaluation for good.
* an optional :class:`~repro.resilience.retry.RetryPolicy` re-runs jobs
  whose records came back transient (``status == "error"``), after the
  policy's deterministic backoff, bounded by its attempt budget
  (``scheduler.retries``).  Deterministic failures (SKIPPED) are never
  retried, and synthetic cancellation records bypass retry entirely.
"""

from __future__ import annotations

import concurrent.futures
import os
import queue
import threading
import time
import warnings
from typing import Dict, Iterable, Iterator, List, Optional, Set

try:  # the process submodule is missing on platforms without multiprocessing
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - environment dependent
    class BrokenProcessPool(Exception):
        """Placeholder; never raised when process pools are unavailable."""

from repro.engine import runner as _runner
from repro.engine.cache import ResultCache
from repro.engine.jobs import EvalJob
from repro.engine.runner import ERROR, EvalRecord, _warm_worker
from repro.obs import get_tracer, log, metrics, span, tracing_enabled
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

__all__ = ["Scheduler", "SchedulerTimeout", "Submission"]

#: Queue sentinel :meth:`Submission.cancel` uses to wake a consumer blocked
#: in ``queue.get`` so cancellation cannot leave a reader wedged forever.
_WAKE = object()


class SchedulerTimeout(TimeoutError):
    """Raised by :meth:`Submission.results` when the deadline expires."""


class _Flight:
    """One in-flight evaluation of a unique job key."""

    __slots__ = ("job", "subscribers")

    def __init__(self, job: EvalJob):
        self.job = job
        self.subscribers: List["Submission"] = []


class Submission:
    """A batch of jobs handed to the scheduler; iterate it for records.

    Attributes
    ----------
    expected:
        Unique job keys in the submission (duplicates within one submission
        produce one record).
    cached_keys:
        Keys answered from the result cache at submit time (their records
        are streamed first, in submission order).
    pending:
        Unique jobs this submission *owns*: evaluations it started.
    deduped:
        Unique jobs joined onto another submission's in-flight evaluation.
    """

    def __init__(self, scheduler: "Scheduler"):
        self._scheduler = scheduler
        self._queue: "queue.SimpleQueue[EvalRecord]" = queue.SimpleQueue()
        self._keys: Set[str] = set()
        self._serial: List[EvalJob] = []
        self._cancelled = False
        self.expected = 0
        self.cached_keys: List[str] = []
        self.pending = 0
        self.deduped = 0

    # ---------------------------------------------------------- consumption
    def results(self, *, timeout: Optional[float] = None) -> Iterator[EvalRecord]:
        """Yield one record per unique key, as each becomes available.

        Cache-served records come first (submission order), then fresh ones
        in completion order.  When the scheduler fell back to serial
        evaluation (no usable process pool), the jobs this submission owns
        are evaluated *by the consuming thread* between queue drains, so
        iteration still streams and still feeds any joined submissions.

        ``timeout`` bounds the whole iteration; expiry raises
        :class:`SchedulerTimeout`.  The generator is single-use.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delivered = 0
        while delivered < self.expected and not self._cancelled:
            try:
                record = self._queue.get_nowait()
            except queue.Empty:
                if self._serial:
                    self._scheduler._evaluate_serial(self._serial.pop(0))
                    continue
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise SchedulerTimeout(
                            f"submission timed out after {timeout}s with "
                            f"{self.expected - delivered} record(s) outstanding"
                        )
                try:
                    record = self._queue.get(timeout=remaining)
                except queue.Empty:
                    raise SchedulerTimeout(
                        f"submission timed out after {timeout}s with "
                        f"{self.expected - delivered} record(s) outstanding"
                    ) from None
            if record is _WAKE:
                continue  # cancel() woke us; the loop re-checks _cancelled
            delivered += 1
            yield record

    def __iter__(self) -> Iterator[EvalRecord]:
        return self.results()

    def cancel(self) -> None:
        """Abandon the submission.

        Unsubscribes from every still-pending flight.  Owned jobs that were
        queued for *serial* evaluation and never started are resolved with
        transient error records so submissions that joined them do not wait
        forever; owned jobs already dispatched to the pool complete (and
        are cached) normally.
        """
        self._cancelled = True
        abandoned, self._serial = self._serial, []
        self._scheduler._abandon(self, abandoned)
        self._queue.put(_WAKE)  # unblock a consumer waiting in results()

    # ------------------------------------------------------------- delivery
    def _deliver(self, record: EvalRecord) -> None:
        self._queue.put(record)


class Scheduler:
    """Owns the evaluation pipeline: cache, dedup table, warmed process pool.

    Parameters
    ----------
    cache:
        Result store consulted and populated for every submission; defaults
        to a fresh in-memory cache (no persistence).
    workers:
        Worker process count.  ``None`` picks ``min(cpu_count, 8)``;
        ``0``/``1`` evaluates serially in the consuming thread.
    chunk_size:
        Jobs per worker submission.  ``None`` (the default) spreads each
        submission's owned jobs over roughly four batches per worker;
        ``1`` restores one-future-per-job dispatch.
    retry_policy:
        When set, jobs whose records come back transient (``error``) are
        re-evaluated after the policy's deterministic backoff, up to its
        attempt budget.  ``None`` (the default) keeps the historical
        single-attempt behaviour.
    rebuild_budget:
        How many times a broken process pool is rebuilt (with its doomed
        in-flight jobs re-enqueued) before the scheduler degrades to serial
        in-process evaluation for the rest of its life.

    One scheduler may serve any number of concurrent clients; submissions
    from different threads share the pool, the cache and the in-flight
    dedup table.  Use it as a context manager -- or call :meth:`close` --
    to shut the pool down deterministically.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rebuild_budget: int = 2,
    ):
        self.cache = cache if cache is not None else ResultCache()
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        self.workers = max(0, workers)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.retry_policy = retry_policy
        if rebuild_budget < 0:
            raise ValueError(f"rebuild_budget must be >= 0, got {rebuild_budget}")
        self.rebuild_budget = rebuild_budget
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._rebuilds_used = 0
        self._serial_only = False
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}
        self._attempts: Dict[str, int] = {}

    # ---------------------------------------------------------------- pool
    def _get_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        """The persistent worker pool, created (and warmed) on first use."""
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, initializer=_warm_worker
            )
        return self._pool

    def _handle_broken_pool(
        self,
        batch: List[EvalJob],
        generation: int,
        error: BaseException,
    ) -> bool:
        """Self-heal a pool-level failure; return whether the batch was saved.

        The first doomed future of a pool generation retires the broken
        pool and (budget permitting) builds its replacement; later doomed
        futures from the same generation just ride the fresh pool.  Each
        future re-enqueues only its batch's jobs that are *still* in the
        in-flight table -- a job whose record already landed is never
        evaluated twice.  Returns ``False`` when the rebuild budget is
        spent (the caller falls back to in-process evaluation).
        """
        with self._lock:
            jobs = [job for job in batch if job.key in self._inflight]
            if generation == self._pool_generation:
                # First doomed future of this generation: retire the pool.
                # No cancel_futures -- a broken pool's pending futures are
                # already failed, and each recovers its own batch here.
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                    self._pool = None
                if self._rebuilds_used >= self.rebuild_budget:
                    self._serial_only = True
                    log.warning(
                        "pool rebuild budget exhausted; degrading to serial",
                        component="scheduler",
                        budget=self.rebuild_budget,
                        error=str(error),
                    )
                    return False
                self._rebuilds_used += 1
                self._pool_generation += 1
                metrics.incr("scheduler.pool_rebuilds")
                log.warning(
                    "rebuilding broken process pool",
                    component="scheduler",
                    generation=self._pool_generation,
                    rebuilds_used=self._rebuilds_used,
                    error=str(error),
                )
            elif self._serial_only:
                return False
            if not jobs:
                return True  # every record already landed; nothing to redo
            try:
                pool = self._get_pool()
                future = pool.submit(
                    _runner._evaluate_batch, jobs, tracing_enabled()
                )
                generation = self._pool_generation
            except Exception:  # pool construction/submit itself failed
                self._serial_only = True
                return False
        metrics.incr("scheduler.jobs_requeued", len(jobs))
        future.add_done_callback(
            lambda f, b=jobs, g=generation: self._on_batch_done(f, b, g)
        )
        return True

    def _discard_pool(self) -> None:
        # getattr: __del__ may run on a half-constructed scheduler whose
        # __init__ raised before _pool was assigned.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent).

        Batches already queued on the pool are cancelled; their flights are
        resolved with transient error records so no subscriber hangs.  The
        scheduler stays usable -- a later submission simply starts a fresh
        pool (or runs serially).
        """
        self._discard_pool()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown dependent
        if getattr(self, "_pool", None) is not None:
            warnings.warn(
                "unclosed Scheduler reclaimed by the garbage collector; "
                "call close() or use it as a context manager",
                ResourceWarning,
                source=self,
            )
        self._discard_pool()

    def _chunked(self, jobs: List[EvalJob]) -> List[List[EvalJob]]:
        """Split pending jobs into per-submission batches."""
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # ~4 batches per worker: large enough to amortise pickling and
            # future bookkeeping, small enough to keep every worker busy
            # even when job durations are skewed.
            size = max(1, len(jobs) // (4 * max(1, self.workers)))
        return [jobs[i:i + size] for i in range(0, len(jobs), size)]

    # -------------------------------------------------------------- submit
    def submit(
        self, jobs: Iterable[EvalJob], *, force: bool = False
    ) -> Submission:
        """Register ``jobs`` and start evaluating whatever is genuinely new.

        Per unique key, in order: a cache hit is answered immediately
        (skipped under ``force``); a key another submission is already
        evaluating is joined (one evaluation, many results); everything
        else is owned by this submission and dispatched.  Returns the
        :class:`Submission` to iterate for records.
        """
        fault_point("scheduler.submit")
        submission = Submission(self)
        owned: List[EvalJob] = []
        with span("scheduler.submit"):
            with self._lock:
                for job in jobs:
                    key = job.key
                    if key in submission._keys:
                        continue  # duplicate within the submission
                    submission._keys.add(key)
                    if not force:
                        cached = self.cache.get(key)
                        if cached is not None:
                            submission.cached_keys.append(key)
                            submission._deliver(
                                EvalRecord.from_dict(cached, cached=True)
                            )
                            continue
                    flight = self._inflight.get(key)
                    if flight is not None:
                        flight.subscribers.append(submission)
                        submission.deduped += 1
                        metrics.incr("scheduler.dedup_hits")
                        continue
                    flight = _Flight(job)
                    flight.subscribers.append(submission)
                    self._inflight[key] = flight
                    owned.append(job)
                submission.expected = len(submission._keys)
                submission.pending = len(owned)
                metrics.incr("scheduler.submissions")
                metrics.gauge("scheduler.inflight", len(self._inflight))
            self._dispatch(owned, submission)
        return submission

    # ------------------------------------------------------------ dispatch
    def _dispatch(self, jobs: List[EvalJob], submission: Submission) -> None:
        if not jobs:
            return
        if self.workers > 1 and len(jobs) > 1 and not self._serial_only:
            dispatched = 0
            try:
                with self._lock:
                    pool = self._get_pool()
                    generation = self._pool_generation
                batches = self._chunked(jobs)
                # Whether workers should trace is decided once at dispatch:
                # each batch runs under its own worker-side tracer and ships
                # the span trees back for re-parenting.
                trace_workers = tracing_enabled()
                for batch in batches:
                    fault_point("scheduler.dispatch")
                    future = pool.submit(_runner._evaluate_batch, batch, trace_workers)
                    future.add_done_callback(
                        lambda f, batch=batch, g=generation: self._on_batch_done(
                            f, batch, g
                        )
                    )
                    dispatched += len(batch)
                metrics.incr("campaign.batches_dispatched", len(batches))
                metrics.gauge("campaign.chunk_size", max(len(b) for b in batches))
                return
            except (
                OSError,
                ImportError,
                BrokenProcessPool,
                RuntimeError,
            ) as error:
                # Sandboxes without fork support or /dev/shm land here; the
                # submission still completes, just serially.  The broken
                # pool is discarded so a later submit can try a fresh one.
                # Batches that made it onto the pool before the failure stay
                # there (their callbacks publish them); only the unsubmitted
                # remainder moves to the serial queue -- nothing runs twice.
                metrics.incr("campaign.pool_fallbacks")
                log.warning(
                    "process pool unavailable; falling back to serial",
                    component="scheduler",
                    error=str(error),
                    dispatched=dispatched,
                )
                self._discard_pool()
                jobs = jobs[dispatched:]
        # Serial path: evaluation happens in the consuming thread, one job
        # per queue drain, so results still stream as they complete.
        submission._serial.extend(jobs)

    def _on_batch_done(
        self,
        future: "concurrent.futures.Future",
        batch: List[EvalJob],
        generation: int = 0,
    ) -> None:
        """Pool-future completion: recover failures, then publish records.

        ``generation`` is the pool generation the batch was dispatched on,
        so a pool-level failure can tell "my pool broke" from "my pool was
        already replaced by an earlier failure's rebuild".  Runs on the
        pool's completion machinery (or inline for an already-finished
        future), so it must never raise.
        """
        retryable = True
        try:
            records, span_dicts, counter_delta = future.result()
        except concurrent.futures.CancelledError:
            # close() cancelled the queued batch; resolve its flights with
            # transient error records so no joined submission hangs.  These
            # synthetic records are final: never retried.
            retryable = False
            records = [
                self._synthetic_error(job, "evaluation cancelled by scheduler shutdown")
                for job in batch
            ]
            span_dicts, counter_delta = [], {}
        except (OSError, BrokenProcessPool) as error:
            # Pool-level breakage: every remaining future is doomed too.
            # Self-heal -- rebuild the pool once per generation and
            # re-enqueue this batch's still-in-flight jobs on it; only with
            # the rebuild budget spent does the batch fall back to
            # in-process evaluation.
            metrics.incr("campaign.pool_fallbacks")
            log.warning(
                "process pool broke mid-dispatch",
                component="scheduler",
                error=str(error),
                jobs=len(batch),
            )
            if self._handle_broken_pool(batch, generation, error):
                return  # re-enqueued on the rebuilt pool (or already done)
            records = [_runner.evaluate_job(job) for job in batch]
            metrics.incr("scheduler.evaluations", len(records))
            span_dicts, counter_delta = [], {}
        except Exception as error:
            # One raising future must not abort the whole submission.
            # evaluate_job itself never raises, so a failed future is a
            # dispatch failure (pickling, a worker dying mid-batch) that
            # cannot be attributed to any single job of the batch;
            # re-evaluate the batch in-process so the healthy jobs still
            # get real records and the true offender is classified per job
            # by evaluate_job -- deterministic inapplicability as
            # "skipped", anything else as a transient (uncached) "error".
            metrics.incr("campaign.batch_failures")
            log.warning(
                "worker batch failed; re-evaluating in-process",
                component="scheduler",
                error=f"{type(error).__name__}: {error}",
                jobs=len(batch),
            )
            records = [_runner.evaluate_job(job) for job in batch]
            metrics.incr("scheduler.evaluations", len(records))
            span_dicts, counter_delta = [], {}
        else:
            metrics.incr("scheduler.evaluations", len(records))
        if counter_delta:
            metrics.merge_counters(counter_delta)
        if span_dicts:
            get_tracer().adopt(span_dicts)
        if retryable:
            self._publish(records, batch)
        else:
            for record in records:
                self._complete(record)

    def _publish(self, records: List[EvalRecord], batch: List[EvalJob]) -> None:
        """Complete each record, diverting transient failures into retry."""
        jobs_by_key = {job.key: job for job in batch}
        for record in records:
            job = jobs_by_key.get(record.key)
            if job is not None and self._maybe_retry(job, record):
                continue  # a retry timer owns this job's completion now
            self._complete(record)

    def _maybe_retry(self, job: EvalJob, record: EvalRecord) -> bool:
        """Schedule a re-evaluation for a transient failure, if allowed.

        Only ``error`` (transient, uncached) records are candidates; the
        configured :class:`~repro.resilience.retry.RetryPolicy` bounds the
        attempts and dictates the deterministic backoff.  The retry runs on
        a daemon timer thread and publishes through the normal completion
        path, so joined submissions transparently receive the final record.
        """
        if self.retry_policy is None or record.status != ERROR:
            return False
        with self._lock:
            attempt = self._attempts.get(job.key, 0) + 1
            if attempt > self.retry_policy.max_retries:
                self._attempts.pop(job.key, None)
                return False
            self._attempts[job.key] = attempt
        metrics.incr("scheduler.retries")
        delay = self.retry_policy.backoff_s(attempt)
        log.warning(
            "retrying transient evaluation failure",
            component="scheduler",
            key=job.key,
            attempt=attempt,
            backoff_s=round(delay, 4),
            note=record.note,
        )
        timer = threading.Timer(delay, self._retry_job, args=(job,))
        timer.daemon = True
        timer.start()
        return True

    def _retry_job(self, job: EvalJob) -> None:
        """Timer body: re-evaluate one job in-process and publish it."""
        record = _runner.evaluate_job(job)
        metrics.incr("scheduler.evaluations")
        self._publish([record], [job])

    def _evaluate_serial(self, job: EvalJob) -> None:
        """Evaluate one owned job in the calling thread and publish it."""
        record = _runner.evaluate_job(job)
        metrics.incr("scheduler.evaluations")
        self._publish([record], [job])

    # ------------------------------------------------------------ completion
    def _complete(self, record: EvalRecord) -> None:
        """Publish one finished record: cache it, then retire the flight.

        The cache write happens *before* the flight is removed so a racing
        :meth:`submit` always sees at least one of the two -- it can join
        the flight or hit the cache, never re-evaluate.
        """
        with self._lock:
            if record.status != ERROR:
                # Error records are transient (a worker OOM, say) -- caching
                # them would replay the failure forever; only determinate
                # outcomes are persisted.
                try:
                    self.cache.put(record.key, record.to_dict())
                except Exception as error:
                    # A failed cache write must not swallow the record:
                    # subscribers still get their answer, the key just is
                    # not persisted (a later campaign re-evaluates it).
                    metrics.incr("scheduler.cache_write_failures")
                    log.warning(
                        "cache write failed; delivering record uncached",
                        component="scheduler",
                        key=record.key,
                        error=f"{type(error).__name__}: {error}",
                    )
            self._attempts.pop(record.key, None)
            flight = self._inflight.pop(record.key, None)
            subscribers = list(flight.subscribers) if flight is not None else []
            metrics.gauge("scheduler.inflight", len(self._inflight))
        for subscriber in subscribers:
            subscriber._deliver(record)

    def _abandon(self, submission: Submission, unstarted: List[EvalJob]) -> None:
        """Drop a cancelled submission's subscriptions and unstarted work."""
        with self._lock:
            for flight in self._inflight.values():
                if submission in flight.subscribers:
                    flight.subscribers.remove(submission)
        for job in unstarted:
            # Never evaluated; resolve so joined submissions see an answer.
            self._complete(
                self._synthetic_error(job, "evaluation cancelled by the submitting client")
            )

    @staticmethod
    def _synthetic_error(job: EvalJob, note: str) -> EvalRecord:
        """A transient (never cached) error record for an unevaluated job."""
        return EvalRecord(
            workload=job.workload,
            rows=job.rows,
            cols=job.cols,
            style=job.style,
            variant=job.variant,
            library=job.spec.library,
            key=job.key,
            opt_level=job.spec.opt_level,
            status=ERROR,
            note=note,
        )
