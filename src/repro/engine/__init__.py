"""Campaign engine: parallel, cached, persistent design-space exploration.

The paper closes by calling for "algorithms and heuristics which can explore
the vast design space opened up by address decoder decoupling".  This
package is the scaffolding for that exploration at scale:

* :mod:`repro.engine.jobs` -- declarative :class:`EvalJob`/:class:`Campaign`
  grids over (workload x geometry x style x library x encoding) with stable
  content-hash keys per job;
* :mod:`repro.engine.cache` -- a content-addressed on-disk result store, so
  re-running a campaign only evaluates new points;
* :mod:`repro.engine.scheduler` -- :class:`Scheduler` owns the warmed
  worker pool, chunking and error policy, and dedups concurrent
  submissions by content hash (two clients asking for the same grid point
  share one in-flight evaluation);
* :mod:`repro.engine.runner` -- :class:`CampaignRunner`, the thin
  synchronous scheduler client: submits a campaign, streams
  :class:`EvalRecord` results back in campaign order, and merges
  campaign-level Pareto fronts;
* :mod:`repro.engine.sweep` -- built-in campaigns reproducing the paper's
  Figure 8/10 sweeps plus new cross-workload grids;
* :mod:`repro.engine.pareto` -- the O(n log n) Pareto sweep shared with the
  interactive explorer.
"""

from repro.engine.cache import ResultCache
from repro.engine.jobs import (
    Campaign,
    EvalJob,
    FSM_ENCODINGS,
    STYLE_VARIANTS,
    build_design,
    candidate_factories,
)
from repro.engine.pareto import pareto_indices, pareto_min
from repro.engine.runner import CampaignResult, CampaignRunner, EvalRecord, evaluate_job
from repro.engine.scheduler import Scheduler, SchedulerTimeout, Submission
from repro.engine.sweep import (
    CAMPAIGNS,
    available_campaigns,
    build_campaign,
    campaign_description,
    register_campaign,
)

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CampaignResult",
    "CampaignRunner",
    "EvalJob",
    "EvalRecord",
    "FSM_ENCODINGS",
    "ResultCache",
    "STYLE_VARIANTS",
    "Scheduler",
    "SchedulerTimeout",
    "Submission",
    "available_campaigns",
    "build_campaign",
    "build_design",
    "campaign_description",
    "candidate_factories",
    "evaluate_job",
    "pareto_indices",
    "pareto_min",
    "register_campaign",
]
