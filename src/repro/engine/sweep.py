"""Built-in campaign factories.

Each factory reproduces one of the paper's sweeps -- Figure 8 (delay versus
array size) and Figure 10 (area versus array size) -- or opens a new grid
the paper only gestures at: cross-workload comparisons, FIFO depth scans,
library-corner sensitivity.  Factories are registered by name so the CLI
(``sradgen --campaign NAME``) and the benchmarks can invoke them as data.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.engine.jobs import Campaign, EvalJob

__all__ = ["CAMPAIGNS", "available_campaigns", "build_campaign", "register_campaign"]

CampaignFactory = Callable[[], Campaign]

#: Registered campaign factories, by name.
CAMPAIGNS: Dict[str, CampaignFactory] = {}


def register_campaign(factory: CampaignFactory) -> CampaignFactory:
    """Register a campaign factory under the name of the campaign it builds."""
    CAMPAIGNS[factory().name] = factory
    return factory


def available_campaigns() -> List[str]:
    """Registered campaign names, sorted."""
    return sorted(CAMPAIGNS)


def build_campaign(name: str) -> Campaign:
    """Instantiate the registered campaign ``name``."""
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; available: {', '.join(available_campaigns())}"
        ) from None
    return factory()


@register_campaign
def smoke_campaign() -> Campaign:
    """Tiny grid used by CI and the test suite (seconds, not minutes)."""
    return Campaign.from_grid(
        "smoke",
        workloads=("fifo", "dct"),
        geometries=((4, 4),),
        description="2 workloads x one 4x4 array x all styles (CI smoke test)",
    )


@register_campaign
def demo_campaign() -> Campaign:
    """The headline campaign: 4 workloads x 3 array sizes x all styles."""
    return Campaign.from_grid(
        "demo",
        workloads=("fifo", "dct", "motion_est_read", "zoombytwo"),
        geometries=((4, 4), (8, 8), (16, 16)),
        description="4 workloads x 3 array sizes x all styles (quickstart demo)",
    )


@register_campaign
def fig8_campaign() -> Campaign:
    """Figure 8: SRAG vs CntAG delay as the array grows."""
    return Campaign.from_grid(
        "fig8",
        workloads=("motion_est_read",),
        geometries=((8, 8), (16, 16), (32, 32), (64, 64)),
        styles=(("SRAG", "two-hot"), ("CntAG", "decoders")),
        description="paper Fig. 8 -- motion-estimation delay vs array size",
    )


@register_campaign
def fig10_campaign() -> Campaign:
    """Figure 10: SRAG vs CntAG area as the array grows."""
    return Campaign.from_grid(
        "fig10",
        workloads=("motion_est_read", "motion_est_write"),
        geometries=((8, 8), (16, 16), (32, 32), (64, 64)),
        styles=(("SRAG", "two-hot"), ("CntAG", "decoders"), ("CntAG", "adders")),
        description="paper Fig. 10 -- motion-estimation area vs array size",
    )


@register_campaign
def cross_workload_campaign() -> Campaign:
    """Every Table 3 workload across geometries -- the paper's open grid."""
    return Campaign.from_grid(
        "cross_workload",
        workloads=(
            "fifo",
            "dct",
            "dct_row",
            "motion_est_read",
            "motion_est_write",
            "zoombytwo",
            "strided",
            "block_raster",
            "interleaved_row",
        ),
        geometries=((4, 4), (8, 8), (16, 16)),
        description="9 workloads x 3 array sizes x all styles",
    )


@register_campaign
def fifo_depth_campaign() -> Campaign:
    """FIFO/incremental access at many depths (the Figures 3-4 axis)."""
    return Campaign.from_grid(
        "fifo_depths",
        workloads=("fifo",),
        geometries=((4, 4), (4, 8), (8, 8), (8, 16), (16, 16), (16, 32), (32, 32)),
        description="FIFO at 7 depths x all styles (Figs. 3-4 axis)",
    )


@register_campaign
def power_campaign() -> Campaign:
    """The paper's deferred future work: SRAG vs CntAG vs FSM power.

    The conclusion of the paper expects decoder decoupling to reduce power
    but states "we have not carried out a rigorous study of it".  This
    campaign is that study on the reproduction's models: every point also
    runs the switching-activity power estimator (256 simulated accesses on
    the compiled simulator), so records carry ``energy_per_access_fj`` /
    ``avg_power_uw`` next to delay and area.
    """
    return Campaign.from_grid(
        "power",
        workloads=("fifo", "dct", "motion_est_read", "zoombytwo"),
        geometries=((4, 4), (8, 8), (16, 16)),
        styles=(
            ("SRAG", "two-hot"),
            ("CntAG", "decoders"),
            ("FSM", "binary"),
        ),
        power_cycles=256,
        description="SRAG vs CntAG vs FSM energy/access, 4 workloads x 3 sizes",
    )


@register_campaign
def library_corners_campaign() -> Campaign:
    """Library-corner sensitivity: the demo grid under all three corners."""
    return Campaign.from_grid(
        "library_corners",
        workloads=("fifo", "dct", "motion_est_read"),
        geometries=((8, 8), (16, 16)),
        libraries=("std018", "std018_fast", "std018_lp"),
        description="3 workloads x 2 sizes x 3 library corners x all styles",
    )
