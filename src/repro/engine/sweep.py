"""Built-in campaign factories.

Each factory reproduces one of the paper's sweeps -- Figure 8 (delay versus
array size) and Figure 10 (area versus array size) -- or opens a new grid
the paper only gestures at: cross-workload comparisons, FIFO depth scans,
library-corner sensitivity.  Factories are registered by name so the CLI
(``sradgen --campaign NAME``) and the benchmarks can invoke them as data.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.engine.jobs import Campaign
from repro.flow import FlowSpec

__all__ = [
    "CAMPAIGNS",
    "available_campaigns",
    "build_campaign",
    "campaign_description",
    "register_campaign",
]

CampaignFactory = Callable[[], Campaign]

#: Registered campaign factories, by name.
CAMPAIGNS: Dict[str, CampaignFactory] = {}

#: One-line descriptions recorded at registration, so listing campaigns
#: (``sradgen --list-campaigns``) never has to expand a job grid.
_DESCRIPTIONS: Dict[str, str] = {}


def register_campaign(
    name: str, description: str = ""
) -> Callable[[CampaignFactory], CampaignFactory]:
    """Register a campaign factory under ``name`` without building it.

    Registration is lazy on purpose: building a campaign expands its full
    job grid, and ``import repro.engine`` must not pay for eight grids
    nobody asked for.  The grid is only expanded when
    :func:`build_campaign` is called, which also checks that the factory
    really produces a campaign of the registered name and stamps the
    registered ``description`` onto it.
    """

    if callable(name):
        # The pre-lazy API was a bare decorator; registering a factory under
        # a function object would silently drop the campaign.
        raise TypeError(
            "register_campaign now takes the campaign name: "
            'use @register_campaign("name")'
        )

    def decorator(factory: CampaignFactory) -> CampaignFactory:
        CAMPAIGNS[name] = factory
        _DESCRIPTIONS[name] = description
        return factory

    return decorator


def available_campaigns() -> List[str]:
    """Registered campaign names, sorted."""
    return sorted(CAMPAIGNS)


def campaign_description(name: str) -> str:
    """Registered one-line description of campaign ``name`` (no grid built)."""
    return _DESCRIPTIONS.get(name, "")


def build_campaign(name: str) -> Campaign:
    """Instantiate the registered campaign ``name``."""
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; available: {', '.join(available_campaigns())}"
        ) from None
    campaign = factory()
    if campaign.name != name:
        raise ValueError(
            f"campaign factory registered as {name!r} built {campaign.name!r}"
        )
    if not campaign.description:
        campaign.description = _DESCRIPTIONS.get(name, "")
    return campaign


@register_campaign(
    "smoke",
    description="2 workloads x one 4x4 array x all styles (CI smoke test)",
)
def smoke_campaign() -> Campaign:
    """Tiny grid used by CI and the test suite (seconds, not minutes)."""
    return Campaign.from_grid(
        "smoke",
        workloads=("fifo", "dct"),
        geometries=((4, 4),),
    )


@register_campaign(
    "demo",
    description="4 workloads x 3 array sizes x all styles (quickstart demo)",
)
def demo_campaign() -> Campaign:
    """The headline campaign: 4 workloads x 3 array sizes x all styles."""
    return Campaign.from_grid(
        "demo",
        workloads=("fifo", "dct", "motion_est_read", "zoombytwo"),
        geometries=((4, 4), (8, 8), (16, 16)),
    )


@register_campaign(
    "fig8",
    description="paper Fig. 8 -- motion-estimation delay vs array size",
)
def fig8_campaign() -> Campaign:
    """Figure 8: SRAG vs CntAG delay as the array grows."""
    return Campaign.from_grid(
        "fig8",
        workloads=("motion_est_read",),
        geometries=((8, 8), (16, 16), (32, 32), (64, 64)),
        styles=(("SRAG", "two-hot"), ("CntAG", "decoders")),
    )


@register_campaign(
    "fig10",
    description="paper Fig. 10 -- motion-estimation area vs array size",
)
def fig10_campaign() -> Campaign:
    """Figure 10: SRAG vs CntAG area as the array grows."""
    return Campaign.from_grid(
        "fig10",
        workloads=("motion_est_read", "motion_est_write"),
        geometries=((8, 8), (16, 16), (32, 32), (64, 64)),
        styles=(("SRAG", "two-hot"), ("CntAG", "decoders"), ("CntAG", "adders")),
    )


@register_campaign(
    "cross_workload",
    description="9 workloads x 3 array sizes x all styles",
)
def cross_workload_campaign() -> Campaign:
    """Every Table 3 workload across geometries -- the paper's open grid."""
    return Campaign.from_grid(
        "cross_workload",
        workloads=(
            "fifo",
            "dct",
            "dct_row",
            "motion_est_read",
            "motion_est_write",
            "zoombytwo",
            "strided",
            "block_raster",
            "interleaved_row",
        ),
        geometries=((4, 4), (8, 8), (16, 16)),
    )


@register_campaign(
    "fifo_depths",
    description="FIFO at 7 depths x all styles (Figs. 3-4 axis)",
)
def fifo_depth_campaign() -> Campaign:
    """FIFO/incremental access at many depths (the Figures 3-4 axis)."""
    return Campaign.from_grid(
        "fifo_depths",
        workloads=("fifo",),
        geometries=((4, 4), (4, 8), (8, 8), (8, 16), (16, 16), (16, 32), (32, 32)),
    )


@register_campaign(
    "power",
    description="SRAG vs CntAG vs FSM energy/access, 4 workloads x 3 sizes",
)
def power_campaign() -> Campaign:
    """The paper's deferred future work: SRAG vs CntAG vs FSM power.

    The conclusion of the paper expects decoder decoupling to reduce power
    but states "we have not carried out a rigorous study of it".  This
    campaign is that study on the reproduction's models: every point also
    runs the switching-activity power estimator (256 simulated accesses on
    the compiled simulator), so records carry ``energy_per_access_fj`` /
    ``avg_power_uw`` next to delay and area.
    """
    return Campaign.from_grid(
        "power",
        workloads=("fifo", "dct", "motion_est_read", "zoombytwo"),
        geometries=((4, 4), (8, 8), (16, 16)),
        styles=(
            ("SRAG", "two-hot"),
            ("CntAG", "decoders"),
            ("FSM", "binary"),
        ),
        spec=FlowSpec(power_cycles=256),
    )


@register_campaign(
    "library_corners",
    description="3 workloads x 2 sizes x 3 library corners x all styles",
)
def library_corners_campaign() -> Campaign:
    """Library-corner sensitivity: the demo grid under all three corners."""
    return Campaign.from_grid(
        "library_corners",
        workloads=("fifo", "dct", "motion_est_read"),
        geometries=((8, 8), (16, 16)),
        libraries=("std018", "std018_fast", "std018_lp"),
    )


@register_campaign(
    "opt_levels",
    description="O0 vs O1 logic optimization, 4 workloads x 2 sizes x 4 styles",
)
def opt_levels_campaign() -> Campaign:
    """O0 versus O1: what logic optimization is worth, as a cached metric.

    Every point of a representative workload x geometry x style grid is
    evaluated twice -- once on the raw generated netlist (O0, the numbers
    every earlier campaign reports) and once with the
    :mod:`repro.synth.opt` pipeline enabled (O1, what a real synthesis tool
    would report).  The O1 records carry ``opt_cells_removed`` so the win
    is a first-class, cached, Pareto-comparable metric.
    """
    grid = dict(
        workloads=("fifo", "dct", "motion_est_read", "zoombytwo"),
        geometries=((8, 8), (16, 16)),
        styles=(
            ("SRAG", "two-hot"),
            ("CntAG", "decoders"),
            ("CntAG", "adders"),
            ("FSM", "binary"),
        ),
    )
    baseline = Campaign.from_grid("opt_levels", spec=FlowSpec(opt_level=0), **grid)
    optimized = Campaign.from_grid("opt_levels", spec=FlowSpec(opt_level=1), **grid)
    return baseline.extended(optimized.jobs)
