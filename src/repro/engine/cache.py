"""Content-addressed on-disk result store with pluggable write backends.

Synthesising a design point takes orders of magnitude longer than reading a
cached record, so campaigns persist every evaluation keyed by the job's
content hash (:attr:`repro.engine.jobs.EvalJob.key`).  Re-running a campaign
then only evaluates points whose spec changed -- new workloads, new
geometries, a recalibrated library -- and everything else is a cache hit.

The store is a directory of append-only JSON-lines files.  *Reading* is
backend-agnostic: every cache loads the base ``results.jsonl`` plus any
``segments/*.jsonl`` shard files, so a directory written by either backend
(or by several writers) loads unchanged.  *Writing* is the backend choice:

* :class:`JsonlBackend` (the default, and the seed format) appends every
  record to the single base file.  Atomic enough for the single-writer
  model the CLI uses; the format stays greppable and diffable.
* :class:`ShardedSegmentBackend` gives every writer its own segment file
  under ``segments/``, so any number of concurrent processes (the campaign
  service, parallel CLI invocations) can append without interleaving a
  single file.  Segments are folded back into the base file by
  merge-on-compact.

Re-putting a key appends a new line that supersedes the old one on the next
load; :meth:`ResultCache.compact` re-reads every data file *from disk* under
the directory-level :class:`CacheLock` (so a concurrent writer can neither
be torn nor lost), rewrites the base file with only live entries and removes
the segment files it merged.  Every key and record stays byte-identical to
the seed format regardless of backend.

Crash safety (PR 10) completes the torn-*read* tolerance with torn-*write*
tolerance.  Appends are atomic from the reader's point of view: the line is
written, flushed and fsynced **before** the in-memory index acknowledges the
key, a torn tail left by a killed writer is newline-sealed before the next
append (so the fragment cannot glue onto a live record), and transient
append failures are retried under a bounded
:class:`~repro.resilience.retry.RetryPolicy`.  ``compact()`` commits through
a temp file + ``os.replace``, so a kill at any point leaves either the old
or the new state; a leftover temp file from an interrupted compaction is
discarded on the next load (``cache.recovered_compactions``).  Every seam is
instrumented with :func:`~repro.resilience.faults.fault_point` sites
(``cache.append*``, ``cache.compact.*``, ``cache.lock.acquire``) so the
chaos suite can prove each of these claims.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.obs import log, metrics
from repro.resilience.faults import FaultInjected, fault_data, fault_point
from repro.resilience.retry import RetryPolicy, call_with_retry

__all__ = [
    "CacheLock",
    "CacheLockTimeout",
    "CacheBackend",
    "JsonlBackend",
    "ResultCache",
    "ShardedSegmentBackend",
    "make_backend",
]

_RESULTS_FILE = "results.jsonl"
_SEGMENTS_DIR = "segments"
_LOCK_FILE = "cache.lock"

#: Bounded retry for appends: transient write failures (including injected
#: torn writes, which the seal protocol repairs) self-heal within ~0.1s.
_APPEND_POLICY = RetryPolicy(max_retries=3, base_backoff_s=0.002, max_backoff_s=0.05)


class CacheLockTimeout(TimeoutError):
    """Raised when the cache lock cannot be acquired within the timeout."""


class CacheLock:
    """Advisory inter-process lock file guarding cache compaction.

    Acquisition atomically creates ``cache.lock`` in the cache directory
    (``O_CREAT | O_EXCL``) with the holder's pid inside.  Compaction (both
    backends) and sharded-segment appends take this lock, so rewriting the
    base file can never race a writer into losing records -- the satellite
    fix for ``sradgen --compact-cache`` racing a running service.

    A lock whose holder died (pid gone, or the file is older than
    ``stale_after_s``) is broken and re-acquired, so a crashed compaction
    cannot wedge the cache forever.
    """

    def __init__(
        self,
        directory: str,
        *,
        timeout: float = 10.0,
        poll_s: float = 0.005,
        stale_after_s: float = 60.0,
    ):
        self.path = os.path.join(directory, _LOCK_FILE)
        self.timeout = timeout
        self.poll_s = poll_s
        self.stale_after_s = stale_after_s

    def acquire(self) -> "CacheLock":
        deadline = time.monotonic() + self.timeout
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        while True:
            fault_point("cache.lock.acquire")
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_if_stale(deadline)
                if time.monotonic() >= deadline:
                    raise CacheLockTimeout(
                        f"could not acquire cache lock {self.path} "
                        f"within {self.timeout}s"
                    )
                time.sleep(self.poll_s)
            else:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(str(os.getpid()))
                return self

    def _break_if_stale(self, deadline: Optional[float] = None) -> None:
        """Remove the lock file if its holder is provably gone."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
            with open(self.path, "r", encoding="utf-8") as handle:
                pid = int(handle.read().strip() or "0")
        except (OSError, ValueError):
            # Vanished or half-written mid-race.  Re-check the deadline
            # before retrying: a lock file that keeps vanishing under stat
            # must not spin the acquire loop past its timeout.
            if deadline is not None and time.monotonic() >= deadline:
                raise CacheLockTimeout(
                    f"could not acquire cache lock {self.path} "
                    f"within {self.timeout}s"
                )
            return
        stale = age > self.stale_after_s
        if not stale and pid:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                stale = True
            except OSError:  # sradlint: disable=ast.silent-except -- EPERM: holder exists but is not ours, keep waiting
                pass
        if stale:
            metrics.incr("cache.locks_broken")
            log.warning(
                "breaking stale cache lock",
                component="cache",
                path=self.path,
                holder_pid=pid,
                holder_age_s=round(age, 3),
            )
            try:
                os.unlink(self.path)
            except OSError:  # sradlint: disable=ast.silent-except -- a racing writer broke the stale lock first
                pass

    def release(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:  # sradlint: disable=ast.silent-except -- lock already broken as stale; release is idempotent
            pass

    def __enter__(self) -> "CacheLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


class CacheBackend:
    """Write strategy behind :class:`ResultCache`.

    A backend decides one thing: which file a ``put`` appends to, and
    whether that append must hold the directory :class:`CacheLock`.
    Reading and compaction are shared by :class:`ResultCache` and are
    backend-agnostic.
    """

    #: Registry handle (``ResultCache(dir, backend="jsonl")``).
    name: str = ""
    #: Whether appends must hold the cache lock (concurrent-writer safety).
    locks_appends: bool = False

    def append_path(self, directory: str) -> str:
        """The file this backend's appends go to."""
        raise NotImplementedError


class JsonlBackend(CacheBackend):
    """The seed format: one append-only ``results.jsonl``, single writer."""

    name = "jsonl"
    locks_appends = False

    def append_path(self, directory: str) -> str:
        return os.path.join(directory, _RESULTS_FILE)


class ShardedSegmentBackend(CacheBackend):
    """Per-writer segment files under ``segments/``; merge-on-compact.

    Each backend instance owns one segment named after its ``writer_id``
    (pid plus a random token by default), so concurrent writers never touch
    the same file.  Appends take the directory lock briefly so a concurrent
    compaction cannot unlink a segment between reading and merging it.
    """

    name = "sharded"
    locks_appends = True

    def __init__(self, writer_id: Optional[str] = None):
        self.writer_id = writer_id or f"{os.getpid()}-{uuid.uuid4().hex[:8]}"

    def append_path(self, directory: str) -> str:
        return os.path.join(
            directory, _SEGMENTS_DIR, f"seg-{self.writer_id}.jsonl"
        )


_BACKENDS = {JsonlBackend.name: JsonlBackend, ShardedSegmentBackend.name: ShardedSegmentBackend}


def make_backend(backend: Union[str, CacheBackend]) -> CacheBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, CacheBackend):
        return backend
    try:
        return _BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown cache backend {backend!r}; "
            f"available: {', '.join(sorted(_BACKENDS))}"
        ) from None


class ResultCache:
    """Persistent ``key -> record`` store backed by JSON-lines files.

    Parameters
    ----------
    directory:
        Cache directory; created on first write.  ``None`` gives a purely
        in-memory cache (useful for tests and one-shot runs).
    backend:
        Write strategy: ``"jsonl"`` (default; the seed single-writer file)
        or ``"sharded"`` (per-writer segment files safe for concurrent
        writers), or a :class:`CacheBackend` instance.  Reading always
        covers both layouts, so the backend can be switched freely over an
        existing directory.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        backend: Union[str, CacheBackend] = "jsonl",
    ):
        self.directory = directory
        self.backend = make_backend(backend)
        self._records: Dict[str, dict] = {}
        self._loaded = directory is None
        # Paths whose tail this instance has verified ends in a newline; a
        # write failure invalidates the entry so the next append re-seals.
        self._sealed: Set[str] = set()

    # ------------------------------------------------------------------- io
    @property
    def path(self) -> Optional[str]:
        """Path of the base JSONL file (``None`` for in-memory caches)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, _RESULTS_FILE)

    def data_paths(self) -> List[str]:
        """Every data file, in deterministic load order: base, then segments.

        Overlapping keys resolve last-write-wins in this order; since keys
        are content hashes, two writers racing on one key wrote the same
        record, so the order between segments is benign.
        """
        if self.directory is None:
            return []
        paths: List[str] = []
        base = self.path
        if base is not None and os.path.exists(base):
            paths.append(base)
        segments = os.path.join(self.directory, _SEGMENTS_DIR)
        if os.path.isdir(segments):
            paths.extend(
                os.path.join(segments, name)
                for name in sorted(os.listdir(segments))
                if name.endswith(".jsonl")
            )
        return paths

    @staticmethod
    def _read_lines(path: str, sink: Dict[str, dict]) -> None:
        """Fold one JSONL file into ``sink`` (last line per key wins).

        A line that does not decode -- a crash mid-append leaves a torn
        trailing line -- is warned about and skipped, keeping the live
        prefix instead of poisoning the whole cache.
        """
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as error:
                    metrics.incr("cache.torn_lines")
                    log.warning(
                        "skipping undecodable cache line "
                        "(torn append from a killed run?)",
                        component="cache",
                        path=path,
                        line=line_number,
                        error=str(error),
                    )
                    continue
                key = entry.get("key")
                record = entry.get("record")
                if isinstance(key, str) and isinstance(record, dict):
                    sink[key] = record

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        self._recover_interrupted_compaction()
        for path in self.data_paths():
            self._read_lines(path, self._records)
        metrics.incr("cache.loads")
        metrics.gauge("cache.entries", len(self._records))

    def _recover_interrupted_compaction(self) -> None:
        """Discard a temp file left by a compaction that was killed mid-commit.

        The commit protocol (temp write -> ``os.replace``) means a leftover
        ``results.jsonl.tmp`` is always a dead compaction's possibly-partial
        merge: the base file and segments it read still hold every record,
        so the temp file is simply dropped.  A *live* compaction holds the
        cache lock, so the temp file is only touched once the lock is gone
        or provably stale.
        """
        if self.directory is None:
            return
        tmp_path = os.path.join(self.directory, _RESULTS_FILE + ".tmp")
        if not os.path.exists(tmp_path):
            return
        lock_path = os.path.join(self.directory, _LOCK_FILE)
        if os.path.exists(lock_path):
            CacheLock(self.directory)._break_if_stale()
            if os.path.exists(lock_path):
                return  # live compaction owns the temp file
        try:
            os.unlink(tmp_path)
        except OSError:  # sradlint: disable=ast.silent-except -- another loader recovered it first
            return
        metrics.incr("cache.recovered_compactions")
        log.warning(
            "recovered interrupted compaction (discarded temp file)",
            component="cache",
            path=tmp_path,
        )

    def _append(self, key: str, record: dict) -> None:
        if self.directory is None:
            return
        fault_point("cache.append")
        path = self.backend.append_path(self.directory)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        line = json.dumps({"key": key, "record": record}, sort_keys=True) + "\n"

        def attempt() -> None:
            if self.backend.locks_appends:
                with self.lock():
                    self._write_line(path, line)
            else:
                self._write_line(path, line)

        call_with_retry(
            attempt,
            _APPEND_POLICY,
            retry_on=(OSError, FaultInjected),
            metric="cache.append_retries",
        )

    def _write_line(self, path: str, line: str) -> None:
        """One durable append: seal any torn tail, write, flush, fsync.

        The append is only acknowledged (by returning) once the bytes are
        flushed to the OS; callers index the key *after* this returns, so a
        reader can never observe a key whose record is not on disk.
        """
        payload = fault_data("cache.append.write", line)
        if path not in self._sealed:
            self._seal_tail(path)
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
        except Exception:
            self._sealed.discard(path)
            raise
        fault_point("cache.append.flush")
        if payload is not line:
            # An injected torn write left a fragment on disk, exactly as a
            # kill mid-write would.  Fail the append (it was never acked);
            # the retry re-seals the fragment and lands the full line.
            self._sealed.discard(path)
            raise FaultInjected(f"torn append left {len(payload)} bytes in {path}")

    def _seal_tail(self, path: str) -> None:
        """Newline-terminate a torn trailing line before appending to it.

        A writer killed mid-append leaves a partial last line; appending
        straight after it would glue the new record onto the fragment and
        corrupt *both*.  Sealing turns the fragment into its own (skipped,
        ``cache.torn_lines``) line so the new record stays intact.
        """
        try:
            size = os.path.getsize(path)
        except OSError:
            self._sealed.add(path)  # file does not exist yet
            return
        if size:
            with open(path, "rb+") as handle:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                    metrics.incr("cache.sealed_tails")
                    log.warning(
                        "sealed torn trailing line before append",
                        component="cache",
                        path=path,
                    )
        self._sealed.add(path)

    def lock(self, *, timeout: float = 10.0) -> CacheLock:
        """The directory-level lock guarding compaction and sharded appends."""
        if self.directory is None:
            raise ValueError("in-memory caches have no lock")
        return CacheLock(self.directory, timeout=timeout)

    # ------------------------------------------------------------ dict-like
    def __contains__(self, key: str) -> bool:
        self._load()
        return key in self._records

    def __len__(self) -> int:
        self._load()
        return len(self._records)

    def keys(self) -> Iterator[str]:
        """Iterate over cached job keys."""
        self._load()
        return iter(list(self._records))

    def get(self, key: str) -> Optional[dict]:
        """Return the cached record for ``key``, or ``None`` on a miss."""
        self._load()
        record = self._records.get(key)
        metrics.incr("cache.hits" if record is not None else "cache.misses")
        return record

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (persisted immediately).

        The durable append happens *before* the in-memory index update, so
        a key this cache acknowledges is always recoverable from disk; if
        the append fails (after bounded retries) the key stays invisible.
        """
        self._load()
        self._append(key, record)
        self._records[key] = record
        metrics.incr("cache.appends")
        metrics.gauge("cache.entries", len(self._records))

    # -------------------------------------------------------- housekeeping
    def records(self) -> List[dict]:
        """All live records (latest entry per key), in insertion order."""
        self._load()
        return list(self._records.values())

    def compact(self) -> None:
        """Merge every data file into the base file, keeping live entries.

        Runs under the :class:`CacheLock` and re-reads every file *from
        disk* (not from this instance's memory), so records appended by a
        concurrent writer this instance never saw survive the rewrite.
        Merged segment files are removed; segments created after the merge
        snapshot are left for the next compaction.
        """
        self._load()
        path = self.path
        if path is None:
            return
        sources = self.data_paths()
        if not sources:
            return
        metrics.incr("cache.compactions")
        with self.lock():
            sources = self.data_paths()  # re-list under the lock
            merged: Dict[str, dict] = {}
            for source in sources:
                self._read_lines(source, merged)
            fault_point("cache.compact.merge")
            tmp_path = path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for key, record in merged.items():
                    handle.write(
                        json.dumps({"key": key, "record": record}, sort_keys=True)
                    )
                    handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            # Commit point: up to here a kill leaves the old state (plus a
            # temp file the next load discards); from the replace on, the
            # new state.  There is no in-between.
            fault_point("cache.compact.commit")
            os.replace(tmp_path, path)
            fault_point("cache.compact.cleanup")
            for source in sources:
                if source != path:
                    try:
                        os.unlink(source)
                    except OSError:  # sradlint: disable=ast.silent-except -- concurrent compactor removed the segment first
                        pass
        # Adopt the merged view: it may contain other writers' records.
        self._records = merged
        metrics.gauge("cache.entries", len(self._records))

    def clear(self) -> None:
        """Drop every record (truncate the base file, remove segments)."""
        self._load()
        self._records.clear()
        path = self.path
        if path is None:
            return
        for source in self.data_paths():
            if source == path:
                with open(source, "w", encoding="utf-8"):
                    pass
            else:
                try:
                    os.unlink(source)
                except OSError:  # sradlint: disable=ast.silent-except -- segment gone already; clear() is idempotent
                    pass
