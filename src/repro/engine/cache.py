"""Content-addressed on-disk result store.

Synthesising a design point takes orders of magnitude longer than reading a
cached record, so campaigns persist every evaluation keyed by the job's
content hash (:attr:`repro.engine.jobs.EvalJob.key`).  Re-running a campaign
then only evaluates points whose spec changed -- new workloads, new
geometries, a recalibrated library -- and everything else is a cache hit.

The store is a directory holding one append-only JSON-lines file.  Appends
are atomic enough for the single-writer model used here (only the parent
campaign process writes; worker processes return records over the pool), and
the format stays greppable and diffable.  Re-putting a key appends a new
line that supersedes the old one on the next load; :meth:`ResultCache.compact`
rewrites the file with only live entries.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from repro.obs import metrics

__all__ = ["ResultCache"]

_RESULTS_FILE = "results.jsonl"


class ResultCache:
    """Persistent ``key -> record`` store backed by a JSON-lines file.

    Parameters
    ----------
    directory:
        Cache directory; created on first write.  ``None`` gives a purely
        in-memory cache (useful for tests and one-shot runs).
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._records: Dict[str, dict] = {}
        self._loaded = directory is None

    # ------------------------------------------------------------------- io
    @property
    def path(self) -> Optional[str]:
        """Path of the backing JSONL file (``None`` for in-memory caches)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, _RESULTS_FILE)

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        path = self.path
        if path is None or not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # tolerate a torn final line from a killed run
                key = entry.get("key")
                record = entry.get("record")
                if isinstance(key, str) and isinstance(record, dict):
                    self._records[key] = record
        metrics.incr("cache.loads")
        metrics.gauge("cache.entries", len(self._records))

    def _append(self, key: str, record: dict) -> None:
        path = self.path
        if path is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": key, "record": record}, sort_keys=True))
            handle.write("\n")

    # ------------------------------------------------------------ dict-like
    def __contains__(self, key: str) -> bool:
        self._load()
        return key in self._records

    def __len__(self) -> int:
        self._load()
        return len(self._records)

    def keys(self) -> Iterator[str]:
        """Iterate over cached job keys."""
        self._load()
        return iter(list(self._records))

    def get(self, key: str) -> Optional[dict]:
        """Return the cached record for ``key``, or ``None`` on a miss."""
        self._load()
        record = self._records.get(key)
        metrics.incr("cache.hits" if record is not None else "cache.misses")
        return record

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (persisted immediately)."""
        self._load()
        self._records[key] = record
        self._append(key, record)
        metrics.incr("cache.appends")
        metrics.gauge("cache.entries", len(self._records))

    # -------------------------------------------------------- housekeeping
    def records(self) -> List[dict]:
        """All live records (latest entry per key), in insertion order."""
        self._load()
        return list(self._records.values())

    def compact(self) -> None:
        """Rewrite the backing file keeping only the latest entry per key."""
        self._load()
        path = self.path
        if path is None or not os.path.exists(path):
            return
        metrics.incr("cache.compactions")
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for key, record in self._records.items():
                handle.write(json.dumps({"key": key, "record": record}, sort_keys=True))
                handle.write("\n")
        os.replace(tmp_path, path)

    def clear(self) -> None:
        """Drop every record (and truncate the backing file)."""
        self._load()
        self._records.clear()
        path = self.path
        if path is not None and os.path.exists(path):
            with open(path, "w", encoding="utf-8"):
                pass
