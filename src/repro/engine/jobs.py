"""Declarative evaluation jobs and campaigns.

A campaign is a grid of *jobs*; a job is one point of the design space the
paper closes on -- "discover algorithms and heuristics which can explore the
vast design space opened up by address decoder decoupling":

    workload x array geometry x generator style x cell library (x FSM encoding)

Jobs are pure data: every field is a name or a number, so a job can be
hashed, written to disk, shipped to a worker process and rebuilt there.  The
bridge from data back to objects lives here too -- :func:`build_design`
instantiates the generator a job describes, and :func:`candidate_factories`
enumerates every architecture applicable to a pattern (the explorer and the
campaign factories share this single list).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.generators.arithmetic import ArithmeticAddressGenerator
from repro.generators.base import AddressGeneratorDesign
from repro.generators.counter_based import CounterBasedAddressGenerator
from repro.generators.fsm_based import FsmAddressGenerator
from repro.generators.sfm_pointer import SfmPointerGenerator
from repro.generators.srag_design import SragDesign
from repro.synth.cell_library import get_library, library_fingerprint
from repro.workloads.loopnest import AffineAccessPattern
from repro.workloads.registry import build_pattern

__all__ = [
    "Campaign",
    "EvalJob",
    "FSM_ENCODINGS",
    "STYLE_VARIANTS",
    "build_design",
    "candidate_factories",
]

#: Default symbolic-FSM state encodings explored per workload.
FSM_ENCODINGS: Tuple[str, ...] = ("binary", "gray", "onehot")

#: Every (style, variant) pair the library can build.  ``FSM`` variants are
#: the state encodings.
STYLE_VARIANTS: Tuple[Tuple[str, str], ...] = (
    ("SRAG", "two-hot"),
    ("CntAG", "decoders"),
    ("CntAG", "adders"),
    ("ArithAG", "binary"),
    ("SFM", "pointers"),
    ("FSM", "binary"),
    ("FSM", "gray"),
    ("FSM", "onehot"),
)

#: Bump when the meaning of a job spec (or of the recorded metrics) changes
#: incompatibly; old cache entries then stop matching.
SPEC_VERSION = 1


def candidate_factories(
    pattern: AffineAccessPattern,
    *,
    fsm_encodings: Sequence[str] = FSM_ENCODINGS,
    max_fsm_states: int = 512,
) -> List[Tuple[str, str, Callable[[], AddressGeneratorDesign]]]:
    """Enumerate ``(style, variant, factory)`` for every applicable architecture.

    This is the single candidate list behind both the interactive explorer
    and campaign grids.  Factories may raise ``MappingError`` /
    ``NetlistError`` / ``ValueError`` for patterns an architecture cannot
    implement; callers record those as skipped points.

    Symbolic-FSM variants are omitted for sequences longer than
    ``max_fsm_states`` to keep evaluation time bounded (the blow-up itself is
    measured by the synthesis-effort benchmark instead).
    """
    sequence = pattern.to_sequence()
    candidates: List[Tuple[str, str, Callable[[], AddressGeneratorDesign]]] = [
        ("SRAG", "two-hot", lambda: SragDesign(sequence)),
        ("CntAG", "decoders", lambda: CounterBasedAddressGenerator(pattern)),
        (
            "CntAG",
            "adders",
            lambda: CounterBasedAddressGenerator(pattern, use_concatenation=False),
        ),
        ("ArithAG", "binary", lambda: ArithmeticAddressGenerator(sequence)),
        ("SFM", "pointers", lambda: SfmPointerGenerator(sequence)),
    ]
    if sequence.length <= max_fsm_states:
        for encoding in fsm_encodings:
            candidates.append(
                (
                    "FSM",
                    encoding,
                    lambda enc=encoding: FsmAddressGenerator(
                        sequence, encoding=enc, output_style="two_hot"
                    ),
                )
            )
    return candidates


def build_design(
    pattern: AffineAccessPattern, style: str, variant: str
) -> AddressGeneratorDesign:
    """Instantiate the generator ``(style, variant)`` describes for ``pattern``.

    Raises ``KeyError`` for unknown style/variant pairs and whatever the
    generator's constructor raises for inapplicable patterns.
    """
    for cand_style, cand_variant, factory in candidate_factories(
        pattern, max_fsm_states=2 ** 31
    ):
        if cand_style == style and cand_variant == variant:
            return factory()
    raise KeyError(f"unknown architecture {style}[{variant}]")


@dataclass(frozen=True)
class EvalJob:
    """One design-space point: evaluate one architecture for one workload.

    All fields are plain data so the job survives pickling into worker
    processes and JSON round-trips through the result cache.

    ``power_cycles > 0`` additionally runs the switching-activity power
    study (on the compiled simulator) over that many cycles; the resulting
    record then carries ``energy_per_access_fj`` / ``avg_power_uw``.

    ``opt_level > 0`` runs the logic-optimization pipeline
    (:mod:`repro.synth.opt`) before buffering and timing, so area/delay
    figures describe the netlist a real synthesis tool would report on.
    """

    workload: str
    rows: int
    cols: int
    style: str
    variant: str
    library: str = "std018"
    max_fanout: int = 8
    max_fsm_states: int = 512
    power_cycles: int = 0
    opt_level: int = 0

    def spec(self) -> dict:
        """Canonical dictionary form of the job (what gets hashed)."""
        spec = {
            "version": SPEC_VERSION,
            "workload": self.workload,
            "rows": self.rows,
            "cols": self.cols,
            "style": self.style,
            "variant": self.variant,
            "library": self.library,
            "library_fingerprint": library_fingerprint(get_library(self.library)),
            "max_fanout": self.max_fanout,
            "max_fsm_states": self.max_fsm_states,
        }
        # Only present when the power study is enabled, so every pre-power
        # job keeps its original key and cached results stay valid.
        if self.power_cycles:
            spec["power_cycles"] = self.power_cycles
        # Same contract for optimization: the default level hashes exactly
        # like a job from before opt_level existed.
        if self.opt_level:
            spec["opt_level"] = self.opt_level
        return spec

    @property
    def key(self) -> str:
        """Stable content-hash key identifying this job.

        The key covers the full spec including a fingerprint of the cell
        library's characterisation, so recalibrating a library (or bumping
        ``SPEC_VERSION``) invalidates stale cache entries.
        """
        payload = json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Compact display label, e.g. ``fifo 8x8 SRAG[two-hot] @std018 O1``."""
        suffix = f" O{self.opt_level}" if self.opt_level else ""
        return (
            f"{self.workload} {self.rows}x{self.cols} "
            f"{self.style}[{self.variant}] @{self.library}{suffix}"
        )

    def pattern(self) -> AffineAccessPattern:
        """Build the access pattern this job evaluates."""
        return build_pattern(self.workload, self.rows, self.cols)


@dataclass
class Campaign:
    """A named batch of evaluation jobs.

    Attributes
    ----------
    name:
        Campaign name (used for reporting and as the CLI handle).
    jobs:
        The evaluation grid, in a deterministic order.
    description:
        One-line human description shown by ``sradgen --list-campaigns``.
    """

    name: str
    jobs: List[EvalJob] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @classmethod
    def from_grid(
        cls,
        name: str,
        *,
        workloads: Sequence[str],
        geometries: Sequence[Tuple[int, int]],
        styles: Optional[Sequence[Tuple[str, str]]] = None,
        libraries: Sequence[str] = ("std018",),
        max_fanout: int = 8,
        max_fsm_states: int = 512,
        power_cycles: int = 0,
        opt_level: int = 0,
        description: str = "",
    ) -> "Campaign":
        """Expand a full cross-product grid into a campaign.

        ``styles`` defaults to every architecture the library knows
        (:data:`STYLE_VARIANTS`); architectures that turn out to be
        inapplicable to a particular workload are recorded as skipped at
        evaluation time rather than excluded up front.  A non-zero
        ``power_cycles`` additionally runs the switching-activity power
        study over that many simulated cycles at every grid point; a
        non-zero ``opt_level`` runs logic optimization at every grid point.
        """
        chosen = tuple(styles) if styles is not None else STYLE_VARIANTS
        jobs = [
            EvalJob(
                workload=workload,
                rows=rows,
                cols=cols,
                style=style,
                variant=variant,
                library=library,
                max_fanout=max_fanout,
                max_fsm_states=max_fsm_states,
                power_cycles=power_cycles,
                opt_level=opt_level,
            )
            for workload in workloads
            for rows, cols in geometries
            for library in libraries
            for style, variant in chosen
        ]
        return cls(name=name, jobs=jobs, description=description)

    def extended(self, other: Iterable[EvalJob]) -> "Campaign":
        """A copy of this campaign with extra jobs appended."""
        return replace(self, jobs=self.jobs + list(other))
