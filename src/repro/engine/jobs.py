"""Declarative evaluation jobs and campaigns.

A campaign is a grid of *jobs*; a job is one point of the design space the
paper closes on -- "discover algorithms and heuristics which can explore the
vast design space opened up by address decoder decoupling":

    workload x array geometry x generator style x cell library (x FSM encoding)

Jobs are pure data: every field is a name or a number, so a job can be
hashed, written to disk, shipped to a worker process and rebuilt there.  The
bridge from data back to objects lives here too -- :func:`build_design`
instantiates the generator a job describes, and :func:`candidate_factories`
enumerates every architecture applicable to a pattern (the explorer and the
campaign factories share this single list).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.flow import DEFAULT_SPEC, FSM_ENCODINGS, FlowSpec, resolve_spec
from repro.generators.arithmetic import ArithmeticAddressGenerator
from repro.generators.base import AddressGeneratorDesign
from repro.generators.counter_based import CounterBasedAddressGenerator
from repro.generators.fsm_based import FsmAddressGenerator
from repro.generators.sfm_pointer import SfmPointerGenerator
from repro.generators.srag_design import SragDesign
from repro.synth.cell_library import library_fingerprint
from repro.workloads.loopnest import AffineAccessPattern
from repro.workloads.registry import build_pattern

__all__ = [
    "Campaign",
    "EvalJob",
    "FSM_ENCODINGS",
    "STYLE_VARIANTS",
    "build_design",
    "candidate_factories",
]

#: Every (style, variant) pair the library can build.  ``FSM`` variants are
#: the state encodings.
STYLE_VARIANTS: Tuple[Tuple[str, str], ...] = (
    ("SRAG", "two-hot"),
    ("CntAG", "decoders"),
    ("CntAG", "adders"),
    ("ArithAG", "binary"),
    ("SFM", "pointers"),
    ("FSM", "binary"),
    ("FSM", "gray"),
    ("FSM", "onehot"),
)

#: Bump when the meaning of a job spec (or of the recorded metrics) changes
#: incompatibly; old cache entries then stop matching.
SPEC_VERSION = 1


def candidate_factories(
    pattern: AffineAccessPattern,
    *,
    fsm_encodings: Sequence[str] = FSM_ENCODINGS,
    max_fsm_states: int = 512,
) -> List[Tuple[str, str, Callable[[], AddressGeneratorDesign]]]:
    """Enumerate ``(style, variant, factory)`` for every applicable architecture.

    This is the single candidate list behind both the interactive explorer
    and campaign grids.  Factories may raise ``MappingError`` /
    ``NetlistError`` / ``ValueError`` for patterns an architecture cannot
    implement; callers record those as skipped points.

    Symbolic-FSM variants are omitted for sequences longer than
    ``max_fsm_states`` to keep evaluation time bounded (the blow-up itself is
    measured by the synthesis-effort benchmark instead).
    """
    sequence = pattern.to_sequence()
    candidates: List[Tuple[str, str, Callable[[], AddressGeneratorDesign]]] = [
        ("SRAG", "two-hot", lambda: SragDesign(sequence)),
        ("CntAG", "decoders", lambda: CounterBasedAddressGenerator(pattern)),
        (
            "CntAG",
            "adders",
            lambda: CounterBasedAddressGenerator(pattern, use_concatenation=False),
        ),
        ("ArithAG", "binary", lambda: ArithmeticAddressGenerator(sequence)),
        ("SFM", "pointers", lambda: SfmPointerGenerator(sequence)),
    ]
    if sequence.length <= max_fsm_states:
        for encoding in fsm_encodings:
            candidates.append(
                (
                    "FSM",
                    encoding,
                    lambda enc=encoding: FsmAddressGenerator(
                        sequence, encoding=enc, output_style="two_hot"
                    ),
                )
            )
    return candidates


def build_design(
    pattern: AffineAccessPattern, style: str, variant: str
) -> AddressGeneratorDesign:
    """Instantiate the generator ``(style, variant)`` describes for ``pattern``.

    Raises ``KeyError`` for unknown style/variant pairs and whatever the
    generator's constructor raises for inapplicable patterns.
    """
    for cand_style, cand_variant, factory in candidate_factories(
        pattern, max_fsm_states=2 ** 31
    ):
        if cand_style == style and cand_variant == variant:
            return factory()
    raise KeyError(f"unknown architecture {style}[{variant}]")


@dataclass(frozen=True)
class EvalJob:
    """One design-space point: evaluate one architecture for one workload.

    The identity of the point is ``(workload, rows, cols, style, variant)``;
    every evaluation knob lives in ``spec`` (:class:`repro.flow.FlowSpec`).
    All fields are plain data so the job survives pickling into worker
    processes and JSON round-trips through the result cache.

    ``spec.power_cycles > 0`` additionally runs the switching-activity power
    study (on the compiled simulator) over that many cycles; the resulting
    record then carries ``energy_per_access_fj`` / ``avg_power_uw``.
    ``spec.opt_level > 0`` runs the logic-optimization pipeline
    (:mod:`repro.synth.opt`) before buffering and timing, so area/delay
    figures describe the netlist a real synthesis tool would report on.

    The pre-``FlowSpec`` loose keywords (``library=``, ``max_fanout=``,
    ``max_fsm_states=``, ``power_cycles=``, ``opt_level=``) keep working
    under a :class:`DeprecationWarning`; the matching read-only attributes
    remain available as undeprecated conveniences.
    """

    workload: str
    rows: int
    cols: int
    style: str
    variant: str
    spec: FlowSpec = DEFAULT_SPEC

    def __init__(
        self,
        workload: str,
        rows: int,
        cols: int,
        style: str,
        variant: str,
        spec: Optional[FlowSpec] = None,
        *,
        library: Optional[str] = None,
        max_fanout: Optional[int] = None,
        max_fsm_states: Optional[int] = None,
        power_cycles: Optional[int] = None,
        opt_level: Optional[int] = None,
    ):
        if spec is not None and not isinstance(spec, FlowSpec):
            # The pre-FlowSpec dataclass had ``library`` as its sixth
            # positional field; a name (or CellLibrary) landing in the spec
            # slot is that legacy form, routed through the same shim.
            if library is not None:
                raise TypeError(
                    "EvalJob() got the library both positionally and by keyword"
                )
            library, spec = spec, None
        object.__setattr__(self, "workload", workload)
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "style", style)
        object.__setattr__(self, "variant", variant)
        object.__setattr__(
            self,
            "spec",
            resolve_spec(
                spec,
                caller="EvalJob",
                library=library,
                max_fanout=max_fanout,
                max_fsm_states=max_fsm_states,
                power_cycles=power_cycles,
                opt_level=opt_level,
            ),
        )

    # Convenience views onto the spec (reading these is not deprecated --
    # only constructing jobs from loose keywords is).
    @property
    def library(self) -> str:
        return self.spec.library

    @property
    def max_fanout(self) -> int:
        return self.spec.max_fanout

    @property
    def max_fsm_states(self) -> int:
        return self.spec.max_fsm_states

    @property
    def power_cycles(self) -> int:
        return self.spec.power_cycles

    @property
    def opt_level(self) -> int:
        return self.spec.opt_level

    def to_spec(self) -> dict:
        """Canonical dictionary form of the job (what gets hashed).

        The knob fields come from :meth:`FlowSpec.to_spec`, whose
        omit-at-default contract keeps every pre-``FlowSpec`` key stable;
        the job adds its identity fields and a fingerprint of the cell
        library's characterisation.
        """
        spec = {
            "version": SPEC_VERSION,
            "workload": self.workload,
            "rows": self.rows,
            "cols": self.cols,
            "style": self.style,
            "variant": self.variant,
            "library_fingerprint": library_fingerprint(self.spec.resolve_library()),
        }
        spec.update(self.spec.to_spec(job_key=True))
        return spec

    @property
    def key(self) -> str:
        """Stable content-hash key identifying this job.

        The key covers the full spec including a fingerprint of the cell
        library's characterisation, so recalibrating a library (or bumping
        ``SPEC_VERSION``) invalidates stale cache entries.
        """
        payload = json.dumps(self.to_spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Compact display label, e.g. ``fifo 8x8 SRAG[two-hot] @std018 O1``."""
        return (
            f"{self.workload} {self.rows}x{self.cols} "
            f"{self.style}[{self.variant}] @{self.library}{self.spec.label_suffix}"
        )

    def pattern(self) -> AffineAccessPattern:
        """Build the access pattern this job evaluates."""
        return build_pattern(self.workload, self.rows, self.cols)


@dataclass
class Campaign:
    """A named batch of evaluation jobs.

    Attributes
    ----------
    name:
        Campaign name (used for reporting and as the CLI handle).
    jobs:
        The evaluation grid, in a deterministic order.
    description:
        One-line human description shown by ``sradgen --list-campaigns``.
    """

    name: str
    jobs: List[EvalJob] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @classmethod
    def from_grid(
        cls,
        name: str,
        *,
        workloads: Sequence[str],
        geometries: Sequence[Tuple[int, int]],
        styles: Optional[Sequence[Tuple[str, str]]] = None,
        libraries: Optional[Sequence[str]] = None,
        spec: Optional[FlowSpec] = None,
        max_fanout: Optional[int] = None,
        max_fsm_states: Optional[int] = None,
        power_cycles: Optional[int] = None,
        opt_level: Optional[int] = None,
        description: str = "",
    ) -> "Campaign":
        """Expand a full cross-product grid into a campaign.

        ``styles`` defaults to every architecture the library knows
        (:data:`STYLE_VARIANTS`); architectures that turn out to be
        inapplicable to a particular workload are recorded as skipped at
        evaluation time rather than excluded up front.  ``libraries`` is a
        grid *axis* (one job per library per point); it defaults to the
        single ``spec.library``.

        Every other knob comes from ``spec`` (:class:`repro.flow.FlowSpec`),
        shared by every job in the grid: a non-zero ``spec.power_cycles``
        additionally runs the switching-activity power study over that many
        simulated cycles at every grid point; a non-zero ``spec.opt_level``
        runs logic optimization at every grid point.  The old loose
        keywords (``max_fanout=`` etc.) keep working under a
        :class:`DeprecationWarning`.
        """
        base = resolve_spec(
            spec,
            caller="Campaign.from_grid",
            max_fanout=max_fanout,
            max_fsm_states=max_fsm_states,
            power_cycles=power_cycles,
            opt_level=opt_level,
        )
        chosen = tuple(styles) if styles is not None else STYLE_VARIANTS
        library_axis = tuple(libraries) if libraries is not None else (base.library,)
        jobs = [
            EvalJob(
                workload=workload,
                rows=rows,
                cols=cols,
                style=style,
                variant=variant,
                spec=base.with_overrides(library=library),
            )
            for workload in workloads
            for rows, cols in geometries
            for library in library_axis
            for style, variant in chosen
        ]
        return cls(name=name, jobs=jobs, description=description)

    def extended(self, other: Iterable[EvalJob]) -> "Campaign":
        """A copy of this campaign with extra jobs appended."""
        return replace(self, jobs=self.jobs + list(other))
