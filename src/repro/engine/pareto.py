"""Sort-based Pareto-front computation.

Campaigns evaluate thousands of design points, so the quadratic
all-pairs dominance check the explorer started with does not scale.  This
module provides the O(n log n) sweep both the explorer and the campaign
runner use: sort by the first objective, then a single pass keeps exactly
the points no other point dominates.

Domination is the usual weak/strict mix: ``q`` dominates ``p`` when ``q`` is
no worse in both objectives and strictly better in at least one.  Points
that tie on *both* objectives do not dominate each other, so duplicates of a
frontier point all survive -- the same semantics as the original all-pairs
check.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

__all__ = ["pareto_indices", "pareto_min"]

T = TypeVar("T")


def pareto_indices(objectives: Sequence[Sequence[float]]) -> List[int]:
    """Indices (in input order) of the Pareto front of ``(x, y)`` pairs.

    Both objectives are minimised.  Runs in O(n log n).

    Points with a NaN objective are never dominated (and never dominate), so
    they are kept unconditionally, as in the all-pairs check.
    """
    finite = [
        i for i in range(len(objectives))
        if objectives[i][0] == objectives[i][0] and objectives[i][1] == objectives[i][1]
    ]
    finite_set = set(finite)
    keep_nan = [i for i in range(len(objectives)) if i not in finite_set]
    order = sorted(finite, key=lambda i: (objectives[i][0], objectives[i][1]))
    keep: List[int] = []
    best_prev_y = float("inf")  # min y over all strictly-smaller x values
    group_start = 0
    while group_start < len(order):
        # One group of equal x; its members are sorted by ascending y.
        group_end = group_start
        x = objectives[order[group_start]][0]
        while group_end < len(order) and objectives[order[group_end]][0] == x:
            group_end += 1
        group_min_y = objectives[order[group_start]][1]
        for position in range(group_start, group_end):
            index = order[position]
            y = objectives[index][1]
            # Dominated by a smaller-x point (weakly better y, strictly
            # better x) or by a same-x point with strictly smaller y.
            if y < best_prev_y and y == group_min_y:
                keep.append(index)
        best_prev_y = min(best_prev_y, group_min_y)
        group_start = group_end
    return sorted(keep + keep_nan)


def pareto_min(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> List[T]:
    """Items on the Pareto front, in input order, minimising ``key(item)``.

    ``key`` must return an ``(x, y)`` pair of objectives.
    """
    objectives = [key(item) for item in items]
    return [items[i] for i in pareto_indices(objectives)]
