"""Design-space exploration across address-generator styles.

The paper's closing goal is "to discover algorithms and heuristics which can
explore the vast design space opened up by address decoder decoupling at a
high level of abstraction and choose the best architecture".  This module is
the interactive, single-workload face of that explorer: given an access
pattern it evaluates every architecture that can implement it, collects
their area/delay points and reports the Pareto frontier.

Candidate enumeration is delegated to :func:`repro.engine.jobs.candidate_factories`
so the explorer and the batch campaign engine (:mod:`repro.engine`) always
agree on the design space; for grid-scale exploration with caching and
parallelism use ``sradgen --campaign`` or :class:`repro.engine.CampaignRunner`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.mapping_params import MappingError
from repro.engine.jobs import candidate_factories
from repro.engine.pareto import pareto_min
from repro.flow import FlowSpec, resolve_spec
from repro.generators.base import AddressGeneratorDesign
from repro.hdl.netlist import NetlistError
from repro.workloads.loopnest import AffineAccessPattern

__all__ = ["DesignPoint", "ExplorationResult", "explore", "pareto_front"]


@dataclass
class DesignPoint:
    """One evaluated architecture."""

    style: str
    variant: str
    delay_ns: float
    area_cells: float
    flip_flops: int
    applicable: bool = True
    note: str = ""

    @property
    def label(self) -> str:
        """Display label combining style and variant."""
        return f"{self.style}[{self.variant}]" if self.variant else self.style


@dataclass
class ExplorationResult:
    """All design points evaluated for one workload."""

    workload: str
    points: List[DesignPoint] = field(default_factory=list)
    skipped: List[DesignPoint] = field(default_factory=list)

    def pareto(self) -> List[DesignPoint]:
        """Pareto-optimal points (minimising both delay and area)."""
        return pareto_front(self.points)

    def best_delay(self) -> Optional[DesignPoint]:
        """The fastest applicable design."""
        return min(self.points, key=lambda p: p.delay_ns) if self.points else None

    def best_area(self) -> Optional[DesignPoint]:
        """The smallest applicable design."""
        return min(self.points, key=lambda p: p.area_cells) if self.points else None

    def describe(self) -> str:
        """Multi-line summary of the exploration."""
        lines = [f"design space for {self.workload}:"]
        pareto = set(id(p) for p in self.pareto())
        for point in sorted(self.points, key=lambda p: p.delay_ns):
            marker = "*" if id(point) in pareto else " "
            lines.append(
                f" {marker} {point.label:<22} delay {point.delay_ns:6.2f} ns   "
                f"area {point.area_cells:10.0f} cu   FFs {point.flip_flops}"
            )
        for point in self.skipped:
            lines.append(f"   {point.label:<22} not applicable: {point.note}")
        lines.append("(* = Pareto-optimal)")
        return "\n".join(lines)


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated in both delay and area by any other point.

    Uses the engine's sort-based O(n log n) sweep (campaigns produce
    thousands of points; the old all-pairs check was quadratic).
    """
    return pareto_min(list(points), key=lambda p: (p.delay_ns, p.area_cells))


def _evaluate(
    design: AddressGeneratorDesign,
    variant: str,
    spec: FlowSpec,
) -> DesignPoint:
    result = design.synthesize(spec=spec)
    return DesignPoint(
        style=design.style,
        variant=variant,
        delay_ns=result.delay_ns,
        area_cells=result.area_cells,
        flip_flops=result.area.flip_flop_count,
    )


def explore(
    pattern: AffineAccessPattern,
    *,
    spec: Optional[FlowSpec] = None,
    library=None,
    fsm_encodings: Optional[Sequence[str]] = None,
    max_fsm_states: Optional[int] = None,
    opt_level: Optional[int] = None,
) -> ExplorationResult:
    """Evaluate every applicable architecture for ``pattern``.

    Architectures that cannot implement the pattern (SRAG restrictions, SFM's
    FIFO-only limitation, non-power-of-two arrays for the arithmetic style)
    are recorded in ``skipped`` with the reason, rather than raising.  The
    same applies when the failure only surfaces while elaborating or
    synthesising the candidate, not just while constructing it -- mirroring
    :func:`repro.engine.runner.evaluate_job`, so one impossible architecture
    cannot take down a whole exploration.

    Parameters
    ----------
    spec:
        Flow configuration (:class:`repro.flow.FlowSpec`) applied at every
        design point; defaults to an all-defaults spec.  ``spec.fsm_encodings``
        selects the symbolic-FSM candidates, ``spec.max_fsm_states`` skips
        them for sequences longer than that bound (keeping exploration time
        bounded; the blow-up itself is measured by the synthesis-effort
        benchmark instead), and ``spec.opt_level`` sets the
        logic-optimization effort (0 = raw netlists, the historical
        behaviour).
    library, fsm_encodings, max_fsm_states, opt_level:
        Deprecated loose-keyword forms of the corresponding spec fields.
    """
    spec = resolve_spec(
        spec,
        caller="explore",
        library=library,
        fsm_encodings=fsm_encodings,
        max_fsm_states=max_fsm_states,
        opt_level=opt_level,
    )
    sequence = pattern.to_sequence()
    result = ExplorationResult(workload=sequence.name)

    candidates = candidate_factories(
        pattern,
        fsm_encodings=spec.fsm_encodings,
        max_fsm_states=spec.max_fsm_states,
    )
    for style, variant, factory in candidates:
        try:
            design = factory()
            point = _evaluate(design, variant, spec)
        except (MappingError, NetlistError, ValueError) as error:
            result.skipped.append(
                DesignPoint(
                    style=style,
                    variant=variant,
                    delay_ns=float("nan"),
                    area_cells=float("nan"),
                    flip_flops=0,
                    applicable=False,
                    note=str(error),
                )
            )
            continue
        result.points.append(point)
    return result
