"""Plain-text table and series formatting for experiment output.

The benchmark harnesses print their results in the same row/series layout as
the paper's figures and tables so paper-versus-measured comparison is a
side-by-side read.  Everything here is plain text (no plotting dependencies,
the environment is offline).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_figure"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render one or more y-series against shared x values (a text 'figure')."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            row.append(series[name][i])
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)


def format_figure(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    y_label: str = "",
    expectation: str = "",
) -> str:
    """Render a figure reproduction: data table plus the expected paper shape."""
    parts = [f"=== {title} ==="]
    if y_label:
        parts.append(f"(y axis: {y_label})")
    parts.append(format_series(x_label, x_values, series))
    if expectation:
        parts.append(f"paper shape: {expectation}")
    return "\n".join(parts)
