"""Performance-area trade-off evaluation (the paper's Section 6).

This module turns workloads into the numbers the paper's evaluation reports:
for each access pattern and array size it synthesises the SRAG and the CntAG
baseline, computes the CntAG delay the way the paper does (counter component
plus the worst decoder component, per Figure 9), and produces
:class:`TradeoffRecord` rows from which Figures 8-10 and Table 3 are
regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.flow import FlowSpec
from repro.generators.counter_based import CounterBasedAddressGenerator
from repro.generators.srag_design import SragDesign
from repro.synth.cell_library import CellLibrary, STD018
from repro.synth.report import SynthesisResult
from repro.workloads.loopnest import AffineAccessPattern

__all__ = [
    "GeneratorMetrics",
    "TradeoffRecord",
    "evaluate_srag",
    "evaluate_cntag",
    "compare_generators",
    "average_factors",
]


@dataclass
class GeneratorMetrics:
    """Delay and area of one synthesised address generator."""

    style: str
    delay_ns: float
    area_cells: float
    flip_flops: int
    detail: Dict[str, SynthesisResult] = field(default_factory=dict)


@dataclass
class TradeoffRecord:
    """One row of the SRAG-versus-CntAG comparison.

    Attributes
    ----------
    workload:
        Workload name (e.g. ``motion_est_read``).
    rows, cols:
        Array dimensions of the data point.
    srag, cntag:
        Metrics of the two generators.
    """

    workload: str
    rows: int
    cols: int
    srag: GeneratorMetrics
    cntag: GeneratorMetrics

    @property
    def delay_reduction_factor(self) -> float:
        """How many times faster the SRAG is (CntAG delay / SRAG delay)."""
        return self.cntag.delay_ns / self.srag.delay_ns

    @property
    def area_increase_factor(self) -> float:
        """How many times larger the SRAG is (SRAG area / CntAG area)."""
        return self.srag.area_cells / self.cntag.area_cells

    def describe(self) -> str:
        """One-line summary used in benchmark output."""
        return (
            f"{self.workload:<24} {self.rows}x{self.cols}: "
            f"SRAG {self.srag.delay_ns:5.2f} ns / {self.srag.area_cells:9.0f} cu   "
            f"CntAG {self.cntag.delay_ns:5.2f} ns / {self.cntag.area_cells:9.0f} cu   "
            f"delay x{self.delay_reduction_factor:4.2f}  area x{self.area_increase_factor:4.2f}"
        )


def evaluate_srag(
    pattern: AffineAccessPattern, library: CellLibrary = STD018
) -> GeneratorMetrics:
    """Synthesise the SRAG for ``pattern`` and return its metrics."""
    design = SragDesign(pattern.to_sequence())
    result = design.synthesize(spec=FlowSpec(library=library))
    return GeneratorMetrics(
        style="SRAG",
        delay_ns=result.delay_ns,
        area_cells=result.area_cells,
        flip_flops=result.area.flip_flop_count,
        detail={"full": result},
    )


def evaluate_cntag(
    pattern: AffineAccessPattern, library: CellLibrary = STD018
) -> GeneratorMetrics:
    """Synthesise the CntAG for ``pattern`` and return its metrics.

    The delay follows the paper's methodology (counter section plus worst
    decoder); the area is that of the complete netlist including both
    decoders.
    """
    design = CounterBasedAddressGenerator(pattern)
    full = design.synthesize(spec=FlowSpec(library=library))
    components = design.component_reports(library)
    delay = components["counter"].delay_ns + max(
        components["row_decoder"].delay_ns, components["column_decoder"].delay_ns
    )
    detail = dict(components)
    detail["full"] = full
    return GeneratorMetrics(
        style="CntAG",
        delay_ns=delay,
        area_cells=full.area_cells,
        flip_flops=full.area.flip_flop_count,
        detail=detail,
    )


def compare_generators(
    workload: str,
    pattern: AffineAccessPattern,
    library: CellLibrary = STD018,
) -> TradeoffRecord:
    """Build the SRAG/CntAG trade-off record for one access pattern."""
    return TradeoffRecord(
        workload=workload,
        rows=pattern.rows,
        cols=pattern.cols,
        srag=evaluate_srag(pattern, library),
        cntag=evaluate_cntag(pattern, library),
    )


def average_factors(records: Sequence[TradeoffRecord]) -> Tuple[float, float]:
    """Average delay-reduction and area-increase factors over ``records``.

    This is how each row of the paper's Table 3 is computed: the factors are
    averaged over the array-size sweep of one workload.
    """
    if not records:
        raise ValueError("cannot average an empty record list")
    delay = sum(r.delay_reduction_factor for r in records) / len(records)
    area = sum(r.area_increase_factor for r in records) / len(records)
    return delay, area
