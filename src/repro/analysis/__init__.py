"""Trade-off analysis and design-space exploration.

* :mod:`repro.analysis.tradeoff` -- SRAG-versus-CntAG evaluation producing
  the records behind Figures 8-10 and Table 3.
* :mod:`repro.analysis.explorer` -- multi-architecture design-space
  exploration with Pareto filtering (the paper's stated future-work goal).
* :mod:`repro.analysis.reporting` -- plain-text table/series formatting used
  by the benchmark harnesses.
"""

from repro.analysis.explorer import DesignPoint, ExplorationResult, explore, pareto_front
from repro.analysis.reporting import format_figure, format_series, format_table
from repro.analysis.tradeoff import (
    GeneratorMetrics,
    TradeoffRecord,
    average_factors,
    compare_generators,
    evaluate_cntag,
    evaluate_srag,
)

__all__ = [
    "DesignPoint",
    "ExplorationResult",
    "explore",
    "pareto_front",
    "format_figure",
    "format_series",
    "format_table",
    "GeneratorMetrics",
    "TradeoffRecord",
    "average_factors",
    "compare_generators",
    "evaluate_cntag",
    "evaluate_srag",
]
