"""Process-wide counter/gauge registry with JSON export.

Counters are monotonically increasing event tallies (``cache.hit``,
``qm.merge_operations``, ``sim.compiled.settle_events``); gauges are
last-write-wins level readings (``cache.entries``, ``campaign.chunk_size``).
One process-global :data:`metrics` registry is wired into the result cache,
the campaign runner, the logic minimiser, the optimization pass manager and
both simulators, so any run can be asked "where did the work go" after the
fact -- ``sradgen --metrics-out FILE`` dumps the registry.

Instrumented code folds *aggregate* statistics into the registry (one
``incr`` per minimisation, per simulation batch, per pass run), never one
call per inner-loop event, so the always-on cost is a handful of dict
updates per evaluated design point.

Worker processes accumulate into their own copy of the registry; the
campaign runner snapshots counters around each batch and ships the delta
back with the results (:meth:`MetricsRegistry.counters_since` /
:meth:`MetricsRegistry.merge_counters`), so parallel and serial campaigns
report the same totals.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Union

__all__ = ["MetricsRegistry", "metrics"]

Number = Union[int, float]


class MetricsRegistry:
    """Named counters and gauges; safe to read at any time, cheap to write."""

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}

    # -------------------------------------------------------------- writing
    def incr(self, name: str, amount: Number = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: Number) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        self._gauges[name] = value

    def reset(self) -> None:
        """Drop every counter and gauge."""
        self._counters.clear()
        self._gauges.clear()

    # -------------------------------------------------------------- reading
    def counter(self, name: str) -> Number:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, Number]:
        """Copy of all counters."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Number]:
        """Copy of all gauges."""
        return dict(self._gauges)

    def as_dict(self) -> Dict[str, Dict[str, Number]]:
        """Plain-dict form: ``{"counters": {...}, "gauges": {...}}``."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON dump of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """Human-readable multi-line listing (counters, then gauges)."""
        lines = []
        for name, value in sorted(self._counters.items()):
            lines.append(f"  {name:<36} {value}")
        for name, value in sorted(self._gauges.items()):
            lines.append(f"  {name:<36} {value} (gauge)")
        return "\n".join(lines) if lines else "  (no metrics recorded)"

    # ------------------------------------------------- cross-process merging
    def snapshot(self) -> Dict[str, Number]:
        """Counter state now; pass to :meth:`counters_since` for a delta."""
        return dict(self._counters)

    def counters_since(self, snapshot: Mapping[str, Number]) -> Dict[str, Number]:
        """Counter increments since ``snapshot`` (zero-delta names omitted)."""
        delta: Dict[str, Number] = {}
        for name, value in self._counters.items():
            gained = value - snapshot.get(name, 0)
            if gained:
                delta[name] = gained
        return delta

    def merge_counters(self, delta: Mapping[str, Number]) -> None:
        """Fold a worker's counter delta into this registry."""
        for name, gained in delta.items():
            self.incr(name, gained)


#: The process-global registry every instrumented subsystem writes to.
metrics = MetricsRegistry()
