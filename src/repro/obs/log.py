"""Structured stderr logging for the stack.

Campaign progress lines and reports are the product and stay on stdout;
*diagnostics* -- pool fallbacks, worker batch failures, trace renderings --
belong on stderr so ``sradgen --campaign ... | tee results.txt`` pipes clean
output.  This module owns the one logger the repo uses for those
diagnostics: ``repro.obs``, writing compact ``key=value``-structured lines
to whatever ``sys.stderr`` currently is (so test harnesses capturing stderr
see the messages too).

Usage::

    from repro.obs import log
    log.warning("process pool unavailable; falling back to serial",
                component="runner", error=str(error))

renders as::

    [sradgen] WARNING process pool unavailable; falling back to serial component=runner error=...
"""

from __future__ import annotations

import logging
import sys
from typing import Any

__all__ = ["LOGGER_NAME", "debug", "get_logger", "info", "warning"]

LOGGER_NAME = "repro.obs"


class _CurrentStderrHandler(logging.StreamHandler):
    """StreamHandler bound to *current* ``sys.stderr`` at emit time.

    ``logging.StreamHandler()`` captures ``sys.stderr`` once at construction;
    resolving it per record keeps the logger honest under stream redirection
    (pytest's capsys, shells re-wiring fd 2 mid-run).
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:
        """Ignored: the handler always follows ``sys.stderr``."""


def get_logger() -> logging.Logger:
    """The configured ``repro.obs`` logger (handler installed on first use)."""
    logger = logging.getLogger(LOGGER_NAME)
    if not logger.handlers:
        handler = _CurrentStderrHandler()
        handler.setFormatter(logging.Formatter("[sradgen] %(levelname)s %(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


def _format(message: str, fields: dict) -> str:
    if not fields:
        return message
    suffix = " ".join(f"{key}={value}" for key, value in fields.items())
    return f"{message} {suffix}"


def debug(message: str, **fields: Any) -> None:
    """Emit a DEBUG diagnostic with ``key=value`` structured fields."""
    get_logger().debug(_format(message, fields))


def info(message: str, **fields: Any) -> None:
    """Emit an INFO diagnostic with ``key=value`` structured fields."""
    get_logger().info(_format(message, fields))


def warning(message: str, **fields: Any) -> None:
    """Emit a WARNING diagnostic with ``key=value`` structured fields."""
    get_logger().warning(_format(message, fields))
