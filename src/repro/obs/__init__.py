"""Telemetry subsystem: tracing, metrics and structured logging.

The observability plane for the whole stack, in three layers:

* :mod:`repro.obs.trace` -- hierarchical wall-clock **spans**
  (``with span("qm.minimize"): ...``) with a zero-allocation disabled path,
  serialisable across process pools and renderable as a tree
  (``sradgen --trace``);
* :mod:`repro.obs.metrics` -- a process-global **counter/gauge registry**
  (``metrics.incr("cache.hit")``) with JSON export
  (``sradgen --metrics-out``);
* :mod:`repro.obs.log` -- the **structured stderr logger** diagnostics go
  through, keeping piped stdout clean.

Everything here is dependency-free (it imports nothing from the rest of
``repro``), so any layer -- hdl, synth, engine, cli, tools -- may import it
without cycles.
"""

from repro.obs import log
from repro.obs.metrics import MetricsRegistry, metrics
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    collect_phase_totals,
    enable_tracing,
    get_tracer,
    phase,
    render_spans,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "collect_phase_totals",
    "enable_tracing",
    "get_tracer",
    "log",
    "metrics",
    "phase",
    "render_spans",
    "set_tracer",
    "span",
    "tracing_enabled",
]
