"""Hierarchical tracing: nestable spans with counters over the whole stack.

A *span* is one timed region of work (``qm.minimize``, ``flow.timing``,
``evaluate_job``); spans nest, so a traced run produces a tree attributing
every second of wall-clock to the stage that spent it.  The design goals, in
order:

1. **Free when off.**  The process-global tracer is disabled by default and
   :func:`span` then returns one pre-allocated no-op context manager -- no
   object allocation, no clock read, nothing on the span stack.  Campaign
   hot paths stay instrumented permanently because the disabled path is one
   attribute check.
2. **Cheap when on.**  An enabled span is one small object, two
   ``perf_counter`` reads and two list operations.
3. **Pool-transparent.**  Spans are plain data (:meth:`Span.to_dict` /
   :meth:`Span.from_dict`), so work recorded inside a
   ``ProcessPoolExecutor`` worker is serialised back with the batch results
   and re-parented under the dispatching span via :meth:`Tracer.adopt` --
   the rendered tree looks the same whether the campaign ran serially or
   over eight processes.

Enable tracing programmatically with :func:`enable_tracing`, from the CLI
with ``sradgen --trace``, or for a whole process tree (including pytest
runs) with the ``SRADGEN_TRACE=1`` environment variable.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "collect_phase_totals",
    "enable_tracing",
    "get_tracer",
    "phase",
    "render_spans",
    "set_tracer",
    "span",
    "tracing_enabled",
]

#: Environment variable force-enabling the global tracer at import time.
TRACE_ENV_VAR = "SRADGEN_TRACE"


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled.

    A single module-level instance (:data:`NULL_SPAN`) serves every
    disabled :func:`span` call, so instrumenting a hot loop costs one
    truthiness check and zero allocations when tracing is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def add(self, counter: str, amount: Union[int, float] = 1) -> None:
        """Counter updates are dropped on the floor."""


NULL_SPAN = _NullSpan()


class Span:
    """One timed, nestable region of work.

    Used as a context manager (handed out by :meth:`Tracer.span`): entering
    attaches the span to the currently open span (or the tracer's roots) and
    starts the clock, exiting stops it.  ``counters`` holds named event
    counts recorded with :meth:`add`; ``detail`` is a free-form label shown
    in rendered trees (a job label, a campaign name).
    """

    __slots__ = ("name", "detail", "wall_s", "counters", "children", "_start", "_tracer")

    def __init__(self, name: str, detail: str = ""):
        self.name = name
        self.detail = detail
        self.wall_s = 0.0
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self._start = 0.0
        self._tracer: Optional["Tracer"] = None

    def add(self, counter: str, amount: Union[int, float] = 1) -> None:
        """Accumulate ``amount`` into the named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    # -------------------------------------------------------- context manager
    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            tracer._open(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.wall_s = time.perf_counter() - self._start
        tracer = self._tracer
        if tracer is not None:
            tracer._close(self)
        return False

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (what worker processes ship back to the parent)."""
        data: Dict[str, Any] = {"name": self.name, "wall_s": self.wall_s}
        if self.detail:
            data["detail"] = self.detail
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span tree serialised by :meth:`to_dict`."""
        rebuilt = cls(data["name"], data.get("detail", ""))
        rebuilt.wall_s = data.get("wall_s", 0.0)
        rebuilt.counters = dict(data.get("counters", {}))
        rebuilt.children = [cls.from_dict(child) for child in data.get("children", ())]
        return rebuilt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall_s={self.wall_s:.6f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Span factory and stack; owns the tree a traced run produces.

    ``roots`` holds every top-level span recorded while the tracer was
    installed; nested spans hang off their parents.  One tracer belongs to
    one thread of execution (the stack is plain, not thread-local) -- worker
    processes get their own fresh tracer per batch and ship the resulting
    tree back as data.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, detail: str = "") -> Union[Span, _NullSpan]:
        """A new span, or the shared no-op when this tracer is disabled."""
        if not self.enabled:
            return NULL_SPAN
        fresh = Span(name, detail)
        fresh._tracer = self
        return fresh

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def adopt(self, span_dicts: Sequence[Mapping[str, Any]]) -> List[Span]:
        """Re-parent serialised spans under the currently open span.

        This is the parent-process half of the worker-side collector: span
        trees recorded inside a pool worker arrive as dictionaries and are
        attached as children of whatever span is open at the adoption site
        (the campaign dispatch span), exactly where the work logically ran.
        """
        adopted = [Span.from_dict(data) for data in span_dicts]
        parent = self.current()
        target = parent.children if parent is not None else self.roots
        target.extend(adopted)
        return adopted

    def clear(self) -> None:
        """Drop every recorded span (the stack must be empty)."""
        if self._stack:
            raise RuntimeError(
                f"cannot clear tracer with {len(self._stack)} open span(s)"
            )
        self.roots = []

    # ------------------------------------------------------------- internals
    def _open(self, opened: Span) -> None:
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)

    def _close(self, closed: Span) -> None:
        if self._stack and self._stack[-1] is closed:
            self._stack.pop()
        elif closed in self._stack:  # pragma: no cover - misnested exit
            while self._stack and self._stack[-1] is not closed:
                self._stack.pop()
            self._stack.pop()


#: The process-global tracer; ``SRADGEN_TRACE=1`` force-enables it at import.
_TRACER = Tracer(enabled=os.environ.get(TRACE_ENV_VAR, "") not in ("", "0"))


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global default; returns it."""
    global _TRACER
    _TRACER = tracer
    return tracer


def enable_tracing(enabled: bool = True) -> None:
    """Switch the global tracer on (or off) in place."""
    _TRACER.enabled = enabled


def tracing_enabled() -> bool:
    """True when the global tracer records spans."""
    return _TRACER.enabled


def span(name: str, detail: str = "") -> Union[Span, _NullSpan]:
    """Open a span on the global tracer (the no-op singleton when disabled)."""
    tracer = _TRACER
    if not tracer.enabled:
        return NULL_SPAN
    fresh = Span(name, detail)
    fresh._tracer = tracer
    return fresh


class _TimedPhase:
    """A span that additionally folds its wall time into a timings dict."""

    __slots__ = ("name", "timings", "_span", "_start")

    def __init__(self, name: str, timings: Dict[str, float], detail: str):
        self.name = name
        self.timings = timings
        self._span = span(name, detail)
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self._span.__enter__()

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter() - self._start
        self.timings[self.name] = self.timings.get(self.name, 0.0) + elapsed
        return self._span.__exit__(*exc_info)


def phase(
    name: str,
    timings: Optional[Dict[str, float]] = None,
    detail: str = "",
) -> Union[Span, _NullSpan, _TimedPhase]:
    """A span that, given a ``timings`` dict, also records its wall time there.

    The flow profiler passes a dict only when profiling is wanted (tracing
    enabled); with ``timings=None`` this is exactly :func:`span`, including
    the zero-allocation disabled path.
    """
    if timings is None:
        return span(name, detail)
    return _TimedPhase(name, timings, detail)


# ---------------------------------------------------------------------------
# Rendering and aggregation
# ---------------------------------------------------------------------------

def collect_phase_totals(
    roots: Sequence[Span], prefixes: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Total wall seconds per span name over a whole span forest.

    With ``prefixes``, only span names starting with one of them are kept
    (the bench harness asks for ``("job.", "flow.")`` to get the per-phase
    attribution without the campaign plumbing spans).
    """
    totals: Dict[str, float] = {}

    def walk(node: Span) -> None:
        if prefixes is None or node.name.startswith(tuple(prefixes)):
            totals[node.name] = totals.get(node.name, 0.0) + node.wall_s
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    return totals


def render_spans(roots: Sequence[Span], *, merge: bool = True) -> str:
    """Render a span forest as an indented text tree.

    With ``merge`` (the default), sibling spans sharing a name are folded
    into one line -- ``evaluate_job x64   total 3.801 s`` -- which keeps a
    whole campaign's tree readable; a merged line's children are the merged
    children of all its members.  With ``merge=False`` every span gets its
    own line, details included.
    """
    lines: List[str] = []

    def emit(name_part: str, wall_s: float, depth: int, extra: str) -> None:
        label = "  " * depth + name_part
        lines.append(f"{label:<48} {wall_s * 1000:10.2f} ms{extra}")

    def counters_suffix(counters: Mapping[str, float]) -> str:
        if not counters:
            return ""
        body = ", ".join(
            f"{key}={int(value) if float(value).is_integer() else value}"
            for key, value in sorted(counters.items())
        )
        return f"   [{body}]"

    def walk_plain(node: Span, depth: int) -> None:
        detail = f"  ({node.detail})" if node.detail else ""
        emit(node.name, node.wall_s, depth, detail + counters_suffix(node.counters))
        for child in node.children:
            walk_plain(child, depth + 1)

    def walk_merged(siblings: Sequence[Span], depth: int) -> None:
        groups: Dict[str, List[Span]] = {}
        for node in siblings:
            groups.setdefault(node.name, []).append(node)
        for name, members in groups.items():
            wall = sum(member.wall_s for member in members)
            counters: Dict[str, float] = {}
            children: List[Span] = []
            for member in members:
                children.extend(member.children)
                for key, value in member.counters.items():
                    counters[key] = counters.get(key, 0) + value
            if len(members) == 1:
                detail = f"  ({members[0].detail})" if members[0].detail else ""
                emit(name, wall, depth, detail + counters_suffix(counters))
            else:
                emit(f"{name} x{len(members)}", wall, depth, counters_suffix(counters))
            if children:
                walk_merged(children, depth + 1)

    if merge:
        walk_merged(list(roots), 0)
    else:
        for root in roots:
            walk_plain(root, 0)
    return "\n".join(lines)
