"""Complete two-hot SRAG address generator for an ADDM array.

The full generator of the paper's Section 4 is the composition of two
identical one-dimensional SRAGs: a row SRAG driving the ``2^m`` row-select
lines and a column SRAG driving the ``2^n`` column-select lines, both fed by
the same ``clk`` / ``next`` / ``reset`` inputs.  Each dimension is mapped
independently by the SRAdGen procedure on its own RowAS / ColAS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.mapper import map_address_sequence
from repro.core.mapping_params import SragMapping
from repro.core.srag import SragFunctionalModel, SragPorts, build_srag
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.workloads.sequences import AddressSequence

__all__ = ["SragAddressGenerator"]


@dataclass
class SragAddressGenerator:
    """A mapped, elaborated two-hot SRAG for one address sequence.

    Use :meth:`from_sequence` to run the mapping procedure and elaborate the
    netlist in one step.

    Attributes
    ----------
    sequence:
        The 2-D address sequence the generator implements.
    row_mapping, col_mapping:
        SRAdGen mapping parameters of each dimension.
    netlist:
        The elaborated structural netlist (inputs ``clk``, ``next``,
        ``reset``; outputs ``rs_<i>`` and ``cs_<j>``).
    row_ports, col_ports:
        Internal port bundles of the two one-dimensional SRAGs.
    """

    sequence: AddressSequence
    row_mapping: SragMapping
    col_mapping: SragMapping
    netlist: Netlist
    row_ports: SragPorts
    col_ports: SragPorts

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_sequence(
        cls, sequence: AddressSequence, *, name: Optional[str] = None
    ) -> "SragAddressGenerator":
        """Map ``sequence`` and elaborate the complete two-hot generator.

        Raises :class:`~repro.core.mapping_params.MappingError` when either
        dimension violates an SRAG restriction.
        """
        row_mapping, col_mapping = map_address_sequence(sequence)
        netlist = Netlist(name or _sanitise(f"srag_{sequence.name}"))
        clk = netlist.add_input("clk")
        next_signal = netlist.add_input("next")
        reset = netlist.add_input("reset")
        row_ports = build_srag(
            netlist, row_mapping, clk, next_signal, reset, prefix="row"
        )
        col_ports = build_srag(
            netlist, col_mapping, clk, next_signal, reset, prefix="col"
        )
        netlist.add_output_bus("rs", row_ports.select_lines)
        netlist.add_output_bus("cs", col_ports.select_lines)
        return cls(
            sequence=sequence,
            row_mapping=row_mapping,
            col_mapping=col_mapping,
            netlist=netlist,
            row_ports=row_ports,
            col_ports=col_ports,
        )

    # ---------------------------------------------------------------- queries
    @property
    def rows(self) -> int:
        """Number of row-select lines."""
        return self.sequence.rows

    @property
    def cols(self) -> int:
        """Number of column-select lines."""
        return self.sequence.cols

    @property
    def select_line_count(self) -> int:
        """Total select lines (two-hot width)."""
        return self.rows + self.cols

    def functional_models(self) -> Tuple[SragFunctionalModel, SragFunctionalModel]:
        """Behavioural models of the row and column SRAGs."""
        return (
            SragFunctionalModel.from_mapping(self.row_mapping),
            SragFunctionalModel.from_mapping(self.col_mapping),
        )

    # ------------------------------------------------------------- simulation
    def simulate_functional(self, cycles: Optional[int] = None) -> List[int]:
        """Linear addresses produced by the behavioural models."""
        steps = cycles if cycles is not None else self.sequence.length
        row_model, col_model = self.functional_models()
        addresses = []
        for _ in range(steps):
            addresses.append(row_model.current_address * self.cols + col_model.current_address)
            row_model.step()
            col_model.step()
        return addresses

    def simulate_structural(self, cycles: Optional[int] = None) -> List[int]:
        """Linear addresses produced by gate-level simulation of the netlist.

        The netlist must not have been modified by buffering/synthesis passes
        between elaboration and simulation for the select-line names to be
        meaningful -- run this before :func:`repro.synth.flow.run_synthesis_flow`
        or on a fresh elaboration.
        """
        steps = cycles if cycles is not None else self.sequence.length
        sim = Simulator(self.netlist)
        sim.reset()
        sim.poke("next", 1)
        addresses = []
        for _ in range(steps):
            sim.settle()
            row = sim.peek_onehot(self.row_ports.select_lines)
            col = sim.peek_onehot(self.col_ports.select_lines)
            if row is None or col is None:
                raise RuntimeError("select lines are not one-hot during simulation")
            addresses.append(row * self.cols + col)
            sim.step()
        return addresses

    def verify(self, cycles: Optional[int] = None, *, structural: bool = False) -> bool:
        """Check that the generator reproduces its target sequence."""
        steps = cycles if cycles is not None else self.sequence.length
        produced = (
            self.simulate_structural(steps) if structural else self.simulate_functional(steps)
        )
        expected = [
            self.sequence.linear[i % self.sequence.length] for i in range(steps)
        ]
        return produced == expected


def _sanitise(name: str) -> str:
    """Make a workload name safe for use as a netlist identifier."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"n_{cleaned}"
    return cleaned
