"""SRAdGen -- the end-to-end tool flow of the paper's Section 5.

The paper's SRAdGen tool "accepts a sequence of one-dimensional addresses
and, if mapping is successful, produces synthesisable VHDL code describing
the corresponding SRAG".  :func:`generate` reproduces that flow on top of the
library: sequence in, mapping parameters + structural netlist + HDL text +
synthesis report out.  The command-line front end in :mod:`repro.cli` is a
thin wrapper around this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.addm_generator import SragAddressGenerator
from repro.core.mapping_params import SragMapping
from repro.flow import FlowSpec, resolve_spec
from repro.hdl.emit import emit_verilog, emit_vhdl
from repro.synth.flow import run_synthesis_flow
from repro.synth.report import SynthesisResult
from repro.workloads.sequences import AddressSequence

__all__ = ["SRAdGenResult", "generate"]


@dataclass
class SRAdGenResult:
    """Everything SRAdGen produces for one address sequence.

    Attributes
    ----------
    generator:
        The mapped and elaborated two-hot SRAG.
    row_mapping, col_mapping:
        Mapping parameters of each dimension (the Table 2 quantities).
    vhdl, verilog:
        Generated HDL text (``None`` unless requested).
    synthesis:
        Area/delay report (``None`` unless requested).  Synthesis works on a
        clone of the netlist, so the emitted HDL and the generator's netlist
        are unaffected by buffer insertion.
    """

    generator: SragAddressGenerator
    row_mapping: SragMapping
    col_mapping: SragMapping
    vhdl: Optional[str] = None
    verilog: Optional[str] = None
    synthesis: Optional[SynthesisResult] = None

    def describe(self) -> str:
        """Human-readable summary (mapping parameters plus synthesis figures)."""
        lines = [
            f"SRAdGen result for {self.generator.sequence.name!r} "
            f"({self.generator.rows}x{self.generator.cols} array, "
            f"{self.generator.sequence.length} accesses)",
            "",
            "row address sequence mapping:",
            self.row_mapping.describe(),
            "",
            "column address sequence mapping:",
            self.col_mapping.describe(),
        ]
        if self.synthesis is not None:
            lines += ["", self.synthesis.summary()]
        return "\n".join(lines)


def generate(
    sequence: AddressSequence,
    *,
    emit_vhdl_text: bool = True,
    emit_verilog_text: bool = False,
    synthesize: bool = False,
    spec: Optional[FlowSpec] = None,
    library=None,
    opt_level: Optional[int] = None,
    verify: bool = True,
    name: Optional[str] = None,
) -> SRAdGenResult:
    """Run the complete SRAdGen flow on ``sequence``.

    Parameters
    ----------
    sequence:
        The 2-D address sequence to implement.
    emit_vhdl_text, emit_verilog_text:
        Which HDL back ends to run.
    synthesize:
        Also run the synthesis flow (optimization + buffering + timing +
        area).
    spec:
        Flow configuration (:class:`repro.flow.FlowSpec`) for the synthesis
        step: cell library, buffering threshold, logic-optimization effort.
        Defaults to an all-defaults spec.
    library, opt_level:
        Deprecated loose-keyword forms of the corresponding spec fields.
    verify:
        Check, by gate-level simulation, that the elaborated netlist actually
        regenerates the input sequence before emitting anything.
    name:
        Optional netlist/entity name.

    Raises
    ------
    MappingError
        If the sequence violates an SRAG restriction.
    RuntimeError
        If verification fails (which would indicate a library bug rather
        than an unmappable sequence).
    """
    spec = resolve_spec(
        spec, caller="generate", library=library, opt_level=opt_level
    )
    generator = SragAddressGenerator.from_sequence(sequence, name=name)
    if verify and not generator.verify(structural=True):
        raise RuntimeError(
            f"structural verification failed for sequence {sequence.name!r}"
        )
    vhdl_text = emit_vhdl(generator.netlist) if emit_vhdl_text else None
    verilog_text = emit_verilog(generator.netlist) if emit_verilog_text else None
    synthesis = None
    if synthesize:
        synthesis = run_synthesis_flow(
            generator.netlist,
            spec=spec,
            name=generator.netlist.name,
            metadata={
                "workload": sequence.name,
                "rows": sequence.rows,
                "cols": sequence.cols,
                "accesses": sequence.length,
            },
        )
    return SRAdGenResult(
        generator=generator,
        row_mapping=generator.row_mapping,
        col_mapping=generator.col_mapping,
        vhdl=vhdl_text,
        verilog=verilog_text,
        synthesis=synthesis,
    )
