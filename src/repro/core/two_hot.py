"""Two-hot encoding utilities.

The SRAG drives a two-dimensional memory with a *two-hot* code: exactly one
row-select line and exactly one column-select line are asserted at a time.
The paper's Section 4 argues this is the natural encoding for the ADDM --
the 2-D arrangement of the cell array implements the "decoding" for free, so
two-hot costs no delay over one-hot while using ``rows + cols`` wires instead
of ``rows * cols``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "encode_two_hot",
    "decode_two_hot",
    "is_valid_two_hot",
    "two_hot_width",
    "one_hot_width",
]


def two_hot_width(rows: int, cols: int) -> int:
    """Number of select lines used by a two-hot code for a ``rows x cols`` array."""
    if rows < 1 or cols < 1:
        raise ValueError(f"array dimensions must be positive, got {rows}x{cols}")
    return rows + cols


def one_hot_width(rows: int, cols: int) -> int:
    """Number of select lines a flat one-hot code would need (for comparison)."""
    if rows < 1 or cols < 1:
        raise ValueError(f"array dimensions must be positive, got {rows}x{cols}")
    return rows * cols


def encode_two_hot(row: int, col: int, rows: int, cols: int) -> Tuple[List[int], List[int]]:
    """Encode an array cell as (row-select vector, column-select vector)."""
    if not (0 <= row < rows and 0 <= col < cols):
        raise ValueError(f"cell ({row},{col}) outside {rows}x{cols} array")
    row_select = [1 if i == row else 0 for i in range(rows)]
    col_select = [1 if i == col else 0 for i in range(cols)]
    return row_select, col_select


def is_valid_two_hot(row_select: Sequence[int], col_select: Sequence[int]) -> bool:
    """True when exactly one row line and one column line are asserted."""
    return sum(1 for b in row_select if b) == 1 and sum(1 for b in col_select if b) == 1


def decode_two_hot(
    row_select: Sequence[int], col_select: Sequence[int]
) -> Tuple[int, int]:
    """Decode a two-hot code back to ``(row, col)``.

    Raises :class:`ValueError` when the code is not exactly two-hot -- the
    condition that would corrupt an ADDM array.
    """
    rows_asserted = [i for i, bit in enumerate(row_select) if bit]
    cols_asserted = [i for i, bit in enumerate(col_select) if bit]
    if len(rows_asserted) != 1 or len(cols_asserted) != 1:
        raise ValueError(
            f"not a two-hot code: rows {rows_asserted}, columns {cols_asserted}"
        )
    return rows_asserted[0], cols_asserted[0]
