"""Mapping parameter records (the quantities of the paper's Table 2).

The SRAdGen mapping procedure of Section 5 derives, from a one-dimensional
address sequence ``I``, the parameter sets

``D``  division counts (consecutive repetitions of each address),
``R``  the reduced sequence,
``U``  the unique addresses in order of first appearance,
``O``  occurrence counts of each unique address in ``R``,
``Z``  position of each unique address's first appearance in ``R``,
``S``  the grouping of addresses onto shift registers,
``P``  pass counts per shift register,
``dC`` the common division count, and
``pC`` the common pass count.

:class:`SragMapping` holds all of them so the Table 2 reproduction can print
exactly the rows the paper prints, and so the structural SRAG builder has
everything it needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["SragMapping", "MappingError"]


class MappingError(Exception):
    """Raised when a sequence cannot be mapped onto the (single-counter) SRAG.

    The message records which restriction failed: the DivCnt restriction
    (unequal consecutive-repetition counts), the PassCnt restriction (unequal
    per-register pass counts), or the grouping verification step.
    """


@dataclass
class SragMapping:
    """Result of mapping one 1-D address sequence onto an SRAG.

    Attributes
    ----------
    sequence:
        The input address sequence ``I``.
    division_counts:
        ``D`` -- consecutive repetition count of each run in ``I``.
    reduced:
        ``R`` -- ``I`` with consecutive repetitions collapsed.
    unique:
        ``U`` -- distinct addresses of ``R`` in first-appearance order.
    occurrences:
        ``O`` -- how many times each element of ``U`` appears in ``R``.
    first_positions:
        ``Z`` -- index in ``R`` of each element of ``U``'s first appearance.
    registers:
        ``S`` -- the shift-register grouping: one tuple of addresses per
        register, in token order.
    pass_counts:
        ``P`` -- the portion of ``R`` produced by each register.
    div_count:
        ``dC`` -- the common division count.
    pass_count:
        ``pC`` -- the common pass count.
    num_lines:
        Number of select lines of the dimension being addressed.
    """

    sequence: List[int]
    division_counts: List[int]
    reduced: List[int]
    unique: List[int]
    occurrences: List[int]
    first_positions: List[int]
    registers: List[Tuple[int, ...]]
    pass_counts: List[int]
    div_count: int
    pass_count: int
    num_lines: int

    @property
    def num_registers(self) -> int:
        """Number of shift registers ``N``."""
        return len(self.registers)

    @property
    def register_lengths(self) -> List[int]:
        """Number of flip-flops ``M_i`` in each register."""
        return [len(register) for register in self.registers]

    @property
    def total_flip_flops(self) -> int:
        """Total shift-register flip-flops (one per distinct address)."""
        return sum(self.register_lengths)

    def iterations_per_register(self) -> List[int]:
        """How many times the token circulates each register before passing."""
        return [
            self.pass_count // length if length else 0
            for length in self.register_lengths
        ]

    def as_table(self) -> Dict[str, object]:
        """Render the mapping in the same parameter/value form as Table 2."""
        return {
            "I": list(self.sequence),
            "D": list(self.division_counts),
            "R": list(self.reduced),
            "U": list(self.unique),
            "O": list(self.occurrences),
            "Z": list(self.first_positions),
            "S": [tuple(register) for register in self.registers],
            "P": list(self.pass_counts),
            "dC": self.div_count,
            "pC": self.pass_count,
        }

    def describe(self) -> str:
        """Multi-line rendering of :meth:`as_table` for reports and the CLI."""
        table = self.as_table()
        lines = []
        for key in ("I", "D", "R", "U", "O", "Z", "S", "P", "dC", "pC"):
            value = table[key]
            if isinstance(value, list):
                text = ";".join(str(v) for v in value)
            elif isinstance(value, tuple):
                text = str(value)
            else:
                text = str(value)
            if key == "S":
                text = ";".join(
                    "(" + ";".join(str(a) for a in group) + ")" for group in value
                )
            lines.append(f"{key:>3} = {text}")
        return "\n".join(lines)
