"""Shift Register based Address Generator (SRAG) -- Section 4 of the paper.

Two views of the same architecture are provided:

* :class:`SragFunctionalModel` -- a cycle-accurate but purely behavioural
  model (token position, DivCnt, PassCnt) used by the mapper's verification
  step and by fast functional tests;
* :func:`build_srag` -- the structural elaboration into primitive cells
  (token shift registers, 2:1 multiplexors, the DivCnt/PassCnt binary
  counters and their comparator logic) whose area and delay are what the
  paper's Figures 8 and 10 measure.

Both operate on one dimension of the memory array; the complete two-hot
generator (row SRAG + column SRAG) is assembled in
:mod:`repro.core.addm_generator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.mapping_params import MappingError, SragMapping
from repro.hdl.components.counter import build_binary_counter
from repro.hdl.components.shift_register import build_token_shift_register
from repro.hdl.netlist import Bus, Net, Netlist

__all__ = ["SragFunctionalModel", "SragPorts", "build_srag"]


# ---------------------------------------------------------------------------
# Functional model
# ---------------------------------------------------------------------------

class SragFunctionalModel:
    """Behavioural model of a one-dimensional SRAG.

    Parameters
    ----------
    registers:
        The shift-register grouping ``S``: one sequence of addresses per
        register, in token order.  The address stored at flip-flop ``(i, j)``
        is the select line that flip-flop drives.
    div_count:
        ``dC`` -- how many ``next`` pulses each address is held for.
    pass_count:
        ``pC`` -- how many enable pulses occur before the token passes to the
        next register.
    num_lines:
        Number of select lines in this dimension.
    """

    def __init__(
        self,
        registers: Sequence[Sequence[int]],
        div_count: int,
        pass_count: int,
        num_lines: Optional[int] = None,
    ):
        if not registers or any(len(r) == 0 for r in registers):
            raise ValueError("SRAG needs at least one non-empty shift register")
        if div_count < 1:
            raise ValueError(f"division count must be >= 1, got {div_count}")
        if pass_count < 1:
            raise ValueError(f"pass count must be >= 1, got {pass_count}")
        self.registers: List[Tuple[int, ...]] = [tuple(r) for r in registers]
        self.div_count = div_count
        self.pass_count = pass_count
        all_addresses = [a for register in self.registers for a in register]
        if len(set(all_addresses)) != len(all_addresses):
            raise ValueError("an address may be stored in only one flip-flop")
        self.num_lines = num_lines if num_lines is not None else max(all_addresses) + 1
        if max(all_addresses) >= self.num_lines:
            raise ValueError("register addresses exceed the number of select lines")
        self.reset()

    @classmethod
    def from_mapping(cls, mapping: SragMapping) -> "SragFunctionalModel":
        """Build the model directly from a mapper result."""
        return cls(
            registers=mapping.registers,
            div_count=mapping.div_count,
            pass_count=mapping.pass_count,
            num_lines=mapping.num_lines,
        )

    # --------------------------------------------------------------- state
    def reset(self) -> None:
        """Return the token to flip-flop (0, 0) and clear both counters."""
        self._register_index = 0
        self._position = 0
        self._div_value = 0
        self._pass_value = 0

    @property
    def current_address(self) -> int:
        """Select line currently asserted (the token's address)."""
        return self.registers[self._register_index][self._position]

    @property
    def select_vector(self) -> List[int]:
        """The full one-hot select-line vector."""
        address = self.current_address
        return [1 if line == address else 0 for line in range(self.num_lines)]

    # ------------------------------------------------------------ behaviour
    def step(self, next_asserted: bool = True) -> int:
        """Advance one clock cycle; returns the address *after* the edge."""
        if next_asserted:
            enable = self._div_value == self.div_count - 1
            self._div_value = 0 if enable else self._div_value + 1
            if enable:
                passing = self._pass_value == self.pass_count - 1
                self._pass_value = 0 if passing else self._pass_value + 1
                self._advance_token(passing)
        return self.current_address

    def _advance_token(self, passing: bool) -> None:
        register = self.registers[self._register_index]
        if self._position < len(register) - 1:
            self._position += 1
            return
        if passing:
            self._register_index = (self._register_index + 1) % len(self.registers)
        self._position = 0

    def run(self, cycles: int) -> List[int]:
        """Addresses produced over ``cycles`` cycles starting from reset."""
        self.reset()
        produced = []
        for _ in range(cycles):
            produced.append(self.current_address)
            self.step()
        return produced


# ---------------------------------------------------------------------------
# Structural elaboration
# ---------------------------------------------------------------------------

@dataclass
class SragPorts:
    """Nets of an elaborated one-dimensional SRAG.

    Attributes
    ----------
    select_lines:
        One net per select line; unaccessed lines are tied to 0.
    enable:
        The internal shift-enable signal (after DivCnt division).
    pass_signal:
        The internal pass signal (``None`` when a single register needs no
        pass control).
    flip_flop_outputs:
        Flip-flop output nets in ``(register, position)`` order, for tests
        that want to inspect the token directly.
    """

    select_lines: Bus
    enable: Net
    pass_signal: Optional[Net]
    flip_flop_outputs: List[Net] = field(default_factory=list)


def build_srag(
    netlist: Netlist,
    mapping: SragMapping,
    clk: Net,
    next_signal: Net,
    reset: Net,
    *,
    prefix: str = "srag",
) -> SragPorts:
    """Elaborate one dimension of the SRAG into ``netlist``.

    The architecture follows the paper's Figure 5: a DivCnt counter dividing
    the ``next`` input down to the shift ``enable``, a PassCnt counter
    deriving the ``pass`` signal, one token shift register per group in the
    mapping, and a 2:1 multiplexor in front of each register's first
    flip-flop selecting between recirculation and the previous register's
    output.
    """
    num_registers = mapping.num_registers

    # Divide the next signal down to the shift enable.
    if mapping.div_count > 1:
        div_counter = build_binary_counter(
            netlist,
            mapping.div_count,
            clk,
            enable=next_signal,
            reset=reset,
            prefix=f"{prefix}_divcnt",
        )
        enable = netlist.new_net(f"{prefix}_enable")
        netlist.add_cell(
            "AND2", A=div_counter.terminal_count, B=next_signal, Y=enable
        )
    else:
        enable = next_signal

    # Derive the pass signal from the PassCnt counter.
    pass_signal: Optional[Net] = None
    if num_registers > 1:
        if mapping.pass_count > 1:
            pass_counter = build_binary_counter(
                netlist,
                mapping.pass_count,
                clk,
                enable=enable,
                reset=reset,
                prefix=f"{prefix}_passcnt",
            )
            pass_signal = pass_counter.terminal_count
        else:
            pass_signal = netlist.const(1)

    # Token shift registers with their input multiplexors.
    serial_inputs = [
        netlist.new_net(f"{prefix}_s{i}_in") for i in range(num_registers)
    ]
    shift_registers = []
    for i, addresses in enumerate(mapping.registers):
        token_at = 0 if i == 0 else None
        shift_registers.append(
            build_token_shift_register(
                netlist,
                len(addresses),
                clk,
                serial_inputs[i],
                enable=enable,
                reset=reset,
                token_at=token_at,
                prefix=f"{prefix}_s{i}",
            )
        )

    for i in range(num_registers):
        own_tail = shift_registers[i].serial_out
        if num_registers == 1:
            # Single register: simple recirculation, no multiplexor needed.
            netlist.add_cell("BUF", A=own_tail, Y=serial_inputs[i])
            continue
        previous_tail = shift_registers[(i - 1) % num_registers].serial_out
        netlist.add_cell(
            "MUX2",
            A=own_tail,
            B=previous_tail,
            S=pass_signal,
            Y=serial_inputs[i],
            name=f"{prefix}_mux{i}",
        )

    # Map flip-flop outputs onto select lines; unaccessed lines stay at 0.
    line_nets: List[Optional[Net]] = [None] * mapping.num_lines
    flip_flop_outputs: List[Net] = []
    for register, ports in zip(mapping.registers, shift_registers):
        for address, q_net in zip(register, ports.outputs):
            if line_nets[address] is not None:
                raise MappingError(f"select line {address} driven twice")
            line_nets[address] = q_net
            flip_flop_outputs.append(q_net)
    select_lines = Bus(
        [net if net is not None else netlist.const(0) for net in line_nets],
        name=f"{prefix}_sel",
    )

    return SragPorts(
        select_lines=select_lines,
        enable=enable,
        pass_signal=pass_signal,
        flip_flop_outputs=flip_flop_outputs,
    )
