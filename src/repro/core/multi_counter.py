"""Generalised SRAG with relaxed counter restrictions.

Section 4 of the paper notes that the single-DivCnt / single-PassCnt
restrictions "can be relaxed by using multiple counters that provide more
flexibility in the sequences that can be generated", and that the enable and
pass signals could equally be derived from shift registers or interacting
FSMs.  This module implements that extension:

* :class:`GeneralisedSragModel` -- a behavioural model that accepts a
  *per-run* division count and a *per-register* pass count, so sequences
  such as ``5,5,5,1,1,...`` (unequal repetition lengths) or
  ``5,1,4,0,5,1,4,0,5,1,4,0,3,7,6,2,...`` (unequal pass counts) become
  representable.
* :func:`map_sequence_relaxed` -- a mapper that produces those generalised
  parameters for any sequence whose reduced form still decomposes into
  per-register circulations.
* :func:`build_generalised_srag` -- a structural elaboration in which the
  enable and pass signals are derived from a sequence-position counter plus
  two-level minimised schedule logic (one of the alternative control
  structures the paper suggests), so the relaxed architecture can still be
  measured for area and delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping_params import MappingError
from repro.hdl.components.counter import build_binary_counter
from repro.hdl.components.shift_register import build_token_shift_register
from repro.hdl.netlist import Bus, Net, Netlist
from repro.synth.logic.minimize import minimize
from repro.synth.logic.synthesize import sop_to_netlist
from repro.synth.logic.truth_table import TruthTable
from repro.workloads.sequences import collapse_repetitions, consecutive_repetitions

__all__ = [
    "GeneralisedSragParameters",
    "GeneralisedSragModel",
    "map_sequence_relaxed",
    "build_generalised_srag",
]


@dataclass
class GeneralisedSragParameters:
    """Parameters of the relaxed architecture.

    Attributes
    ----------
    registers:
        Shift-register grouping, as in the single-counter SRAG.
    division_counts:
        One division count per *run* of the original sequence (how long each
        reduced-sequence element is held).
    pass_schedule:
        One pass count per register *visit*: entry ``k`` is the number of
        enable pulses the token spends in the register visited ``k``-th.
    num_lines:
        Number of select lines in the dimension.
    """

    registers: List[Tuple[int, ...]]
    division_counts: List[int]
    pass_schedule: List[int]
    num_lines: int

    @property
    def sequence_length(self) -> int:
        """Length of the original (unreduced) sequence."""
        return sum(self.division_counts)

    @property
    def reduced_length(self) -> int:
        """Length of the reduced sequence."""
        return len(self.division_counts)


class GeneralisedSragModel:
    """Behavioural model of the multi-counter SRAG."""

    def __init__(self, parameters: GeneralisedSragParameters):
        if not parameters.registers:
            raise ValueError("at least one shift register is required")
        if not parameters.division_counts:
            raise ValueError("the division-count schedule may not be empty")
        if not parameters.pass_schedule:
            raise ValueError("the pass schedule may not be empty")
        self.parameters = parameters
        self.reset()

    def reset(self) -> None:
        """Return the token to register 0, position 0 and restart schedules."""
        self._register_index = 0
        self._position = 0
        self._run_index = 0      # which reduced-sequence element we are on
        self._div_value = 0      # next pulses consumed within the current run
        self._visit_index = 0    # which pass-schedule entry is active
        self._enables_in_visit = 0

    @property
    def current_address(self) -> int:
        """Select line currently asserted."""
        return self.parameters.registers[self._register_index][self._position]

    def step(self, next_asserted: bool = True) -> int:
        """Advance one clock cycle; returns the address after the edge."""
        if not next_asserted:
            return self.current_address
        params = self.parameters
        run_length = params.division_counts[self._run_index % params.reduced_length]
        self._div_value += 1
        if self._div_value < run_length:
            return self.current_address
        # The run is complete: shift (enable) and move to the next run.
        self._div_value = 0
        self._run_index += 1
        self._enables_in_visit += 1
        visit_length = params.pass_schedule[self._visit_index % len(params.pass_schedule)]
        passing = self._enables_in_visit >= visit_length
        if passing:
            self._enables_in_visit = 0
            self._visit_index += 1
        self._advance_token(passing)
        return self.current_address

    def _advance_token(self, passing: bool) -> None:
        register = self.parameters.registers[self._register_index]
        if self._position < len(register) - 1:
            self._position += 1
            return
        if passing:
            self._register_index = (
                self._register_index + 1
            ) % len(self.parameters.registers)
        self._position = 0

    def run(self, cycles: int) -> List[int]:
        """Addresses produced over ``cycles`` cycles starting from reset."""
        self.reset()
        produced = []
        for _ in range(cycles):
            produced.append(self.current_address)
            self.step()
        return produced


def map_sequence_relaxed(
    sequence: Sequence[int], num_lines: Optional[int] = None
) -> GeneralisedSragParameters:
    """Map a sequence onto the relaxed (multi-counter) SRAG.

    Unlike :func:`repro.core.mapper.map_sequence`, unequal repetition counts
    and unequal per-visit pass counts are allowed; the only remaining
    requirement is that the reduced sequence decomposes into contiguous
    circulations of the grouped registers (each visit must walk its register
    from position 0 in order, a property verified by simulation).
    """
    addresses = list(sequence)
    if not addresses:
        raise MappingError("cannot map an empty address sequence")
    if num_lines is None:
        num_lines = max(addresses) + 1

    division_counts = consecutive_repetitions(addresses)
    reduced = collapse_repetitions(addresses)

    unique: List[int] = []
    seen = set()
    for address in reduced:
        if address not in seen:
            seen.add(address)
            unique.append(address)
    occurrences = [reduced.count(a) for a in unique]
    first_positions = [reduced.index(a) for a in unique]

    # Reuse the strict mapper's grouping heuristic.
    from repro.core.mapper import _group_registers

    registers = _group_registers(unique, occurrences, first_positions)

    # Pass schedule: length of each contiguous ownership block of R.
    owner: Dict[int, int] = {}
    for index, register in enumerate(registers):
        for address in register:
            owner[address] = index
    pass_schedule: List[int] = []
    previous_owner: Optional[int] = None
    for address in reduced:
        register_index = owner[address]
        if register_index == previous_owner:
            pass_schedule[-1] += 1
        else:
            pass_schedule.append(1)
        previous_owner = register_index

    parameters = GeneralisedSragParameters(
        registers=registers,
        division_counts=division_counts,
        pass_schedule=pass_schedule,
        num_lines=num_lines,
    )
    produced = GeneralisedSragModel(parameters).run(len(addresses))
    if produced != addresses:
        raise MappingError(
            "relaxed mapping verification failed: the sequence does not "
            "decompose into in-order register circulations"
        )
    return parameters


@dataclass
class GeneralisedSragPorts:
    """Nets of an elaborated generalised SRAG."""

    select_lines: Bus
    enable: Net
    pass_signal: Net


def build_generalised_srag(
    netlist: Netlist,
    parameters: GeneralisedSragParameters,
    clk: Net,
    next_signal: Net,
    reset: Net,
    *,
    prefix: str = "gsrag",
) -> GeneralisedSragPorts:
    """Elaborate the relaxed SRAG with schedule-derived control.

    A position counter counts ``next`` pulses modulo the sequence length; the
    ``enable`` and ``pass`` signals are two-level minimised functions of the
    counter value (the "interacting FSM" style of control the paper mentions
    as an alternative to plain counters).
    """
    sequence_length = parameters.sequence_length
    position = build_binary_counter(
        netlist,
        sequence_length,
        clk,
        enable=next_signal,
        reset=reset,
        prefix=f"{prefix}_pos",
    )
    width = position.width

    # Enable is asserted on the last cycle of every run; pass on the last
    # cycle of every register visit.
    enable_positions = set()
    pass_positions = set()
    cycle = 0
    run_index = 0
    enables_in_visit = 0
    visit_index = 0
    for run_length in parameters.division_counts:
        cycle += run_length
        enable_positions.add(cycle - 1)
        run_index += 1
        enables_in_visit += 1
        visit_length = parameters.pass_schedule[visit_index % len(parameters.pass_schedule)]
        if enables_in_visit >= visit_length:
            pass_positions.add(cycle - 1)
            enables_in_visit = 0
            visit_index += 1

    dc_set = frozenset(
        value for value in range(1 << width) if value >= sequence_length
    )
    inverter_cache: Dict[str, Net] = {}

    enable_table = TruthTable(
        num_inputs=width, on_set=frozenset(enable_positions), dc_set=dc_set
    )
    enable_cover, _ = minimize(enable_table)
    enable_from_position = sop_to_netlist(
        netlist, enable_cover, list(position.count), prefix=f"{prefix}_en",
        inverter_cache=inverter_cache,
    )
    enable = netlist.new_net(f"{prefix}_enable")
    netlist.add_cell("AND2", A=enable_from_position, B=next_signal, Y=enable)

    pass_table = TruthTable(
        num_inputs=width, on_set=frozenset(pass_positions), dc_set=dc_set
    )
    pass_cover, _ = minimize(pass_table)
    pass_signal = sop_to_netlist(
        netlist, pass_cover, list(position.count), prefix=f"{prefix}_pass",
        inverter_cache=inverter_cache,
    )

    # Token shift registers and multiplexors, exactly as in the strict SRAG.
    num_registers = len(parameters.registers)
    serial_inputs = [netlist.new_net(f"{prefix}_s{i}_in") for i in range(num_registers)]
    shift_registers = []
    for i, addresses in enumerate(parameters.registers):
        shift_registers.append(
            build_token_shift_register(
                netlist,
                len(addresses),
                clk,
                serial_inputs[i],
                enable=enable,
                reset=reset,
                token_at=0 if i == 0 else None,
                prefix=f"{prefix}_s{i}",
            )
        )
    for i in range(num_registers):
        own_tail = shift_registers[i].serial_out
        if num_registers == 1:
            netlist.add_cell("BUF", A=own_tail, Y=serial_inputs[i])
            continue
        previous_tail = shift_registers[(i - 1) % num_registers].serial_out
        netlist.add_cell(
            "MUX2",
            A=own_tail,
            B=previous_tail,
            S=pass_signal,
            Y=serial_inputs[i],
            name=f"{prefix}_mux{i}",
        )

    line_nets: List[Optional[Net]] = [None] * parameters.num_lines
    for register, ports in zip(parameters.registers, shift_registers):
        for address, q_net in zip(register, ports.outputs):
            line_nets[address] = q_net
    select_lines = Bus(
        [net if net is not None else netlist.const(0) for net in line_nets],
        name=f"{prefix}_sel",
    )
    return GeneralisedSragPorts(
        select_lines=select_lines, enable=enable, pass_signal=pass_signal
    )
