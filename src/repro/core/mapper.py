"""SRAdGen automatic mapping procedure (Section 5 of the paper).

Maps a one-dimensional address sequence onto the SRAG architecture: it
derives the division count ``dC``, the shift-register grouping ``S`` and the
pass count ``pC``, and verifies (by simulating the functional SRAG model)
that the mapped architecture really regenerates the input sequence -- the
"verification step" the paper requires because initial grouping can fail for
sequences such as ``1,2,3,4,3,2,1,4``.

A :class:`~repro.core.mapping_params.MappingError` is raised whenever the
sequence violates one of the single-counter restrictions:

* **DivCnt restriction** -- every address's consecutive repetition count must
  be the same,
* **PassCnt restriction** -- the portion of the reduced sequence produced by
  each shift register must be the same,
* **verification failure** -- the grouped registers do not regenerate the
  sequence (irregular orderings).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.mapping_params import MappingError, SragMapping
from repro.workloads.sequences import (
    AddressSequence,
    collapse_repetitions,
    consecutive_repetitions,
)

__all__ = ["map_sequence", "map_address_sequence", "map_row_and_column"]


def map_sequence(
    sequence: Sequence[int],
    num_lines: Optional[int] = None,
    *,
    verify: bool = True,
) -> SragMapping:
    """Map a 1-D address sequence onto SRAG parameters.

    Parameters
    ----------
    sequence:
        The address sequence ``I`` (for example a RowAS or ColAS).
    num_lines:
        Number of select lines in this dimension; defaults to
        ``max(sequence) + 1``.
    verify:
        Run the functional-model verification step (recommended; the paper
        requires it).

    Returns
    -------
    SragMapping
        The full parameter set of Table 2.

    Raises
    ------
    MappingError
        If the sequence violates the DivCnt or PassCnt restriction, or fails
        verification.
    """
    addresses = list(sequence)
    if not addresses:
        raise MappingError("cannot map an empty address sequence")
    if min(addresses) < 0:
        raise MappingError("address sequences must be non-negative")
    if num_lines is None:
        num_lines = max(addresses) + 1
    elif max(addresses) >= num_lines:
        raise MappingError(
            f"address {max(addresses)} outside the {num_lines} select lines"
        )

    # Step 1: division counts D and the common dC.
    division_counts = consecutive_repetitions(addresses)
    distinct_counts = set(division_counts)
    if len(distinct_counts) > 1:
        raise MappingError(
            "DivCnt restriction violated: consecutive repetition counts are "
            f"not all equal ({sorted(distinct_counts)})"
        )
    div_count = division_counts[0]

    # Step 2: reduced sequence R.
    reduced = collapse_repetitions(addresses)

    # Step 3: unique addresses U in first-appearance order.
    unique: List[int] = []
    seen = set()
    for address in reduced:
        if address not in seen:
            seen.add(address)
            unique.append(address)

    # Step 4: occurrence counts O and first positions Z.
    occurrences = [reduced.count(address) for address in unique]
    first_positions = [reduced.index(address) for address in unique]

    # Step 5: initial grouping of consecutive unique addresses.
    registers = _group_registers(unique, occurrences, first_positions)

    # Step 6: pass counts P and the common pC.
    pass_counts, block_lengths = _pass_counts(reduced, registers)
    distinct_pass = set(block_lengths)
    if len(distinct_pass) > 1:
        raise MappingError(
            "PassCnt restriction violated: per-register pass counts are not "
            f"all equal ({sorted(distinct_pass)})"
        )
    pass_count = pass_counts[0]

    mapping = SragMapping(
        sequence=addresses,
        division_counts=division_counts,
        reduced=reduced,
        unique=unique,
        occurrences=occurrences,
        first_positions=first_positions,
        registers=registers,
        pass_counts=pass_counts,
        div_count=div_count,
        pass_count=pass_count,
        num_lines=num_lines,
    )

    if verify:
        _verify(mapping)
    return mapping


def _group_registers(
    unique: Sequence[int],
    occurrences: Sequence[int],
    first_positions: Sequence[int],
) -> List[Tuple[int, ...]]:
    """Initial grouping: consecutive unique addresses that occur the same
    number of times and first appear consecutively share a shift register."""
    registers: List[Tuple[int, ...]] = []
    current: List[int] = []
    for k, address in enumerate(unique):
        if not current:
            current = [address]
            continue
        same_occurrences = occurrences[k] == occurrences[k - 1]
        consecutive_first = first_positions[k] == first_positions[k - 1] + 1
        if same_occurrences and consecutive_first:
            current.append(address)
        else:
            registers.append(tuple(current))
            current = [address]
    if current:
        registers.append(tuple(current))
    return registers


def _pass_counts(
    reduced: Sequence[int], registers: Sequence[Tuple[int, ...]]
) -> Tuple[List[int], List[int]]:
    """Pass count of each register: how much of R it produces before passing.

    The reduced sequence is scanned in order and each element is attributed
    to the register containing its address.  The token stays in one register
    until it passes, so R decomposes into contiguous ownership blocks; the
    length of register ``i``'s first block is its pass count ``P_i``, and the
    PassCnt restriction demands that *every* block (including repeats when
    the pattern wraps within I) has the same length.

    Returns ``(per_register_pass_counts, all_block_lengths)``.
    """
    owner = {}
    for index, register in enumerate(registers):
        for address in register:
            owner[address] = index

    blocks: List[Tuple[int, int]] = []  # (register index, block length)
    for address in reduced:
        register_index = owner[address]
        if blocks and blocks[-1][0] == register_index:
            blocks[-1] = (register_index, blocks[-1][1] + 1)
        else:
            blocks.append((register_index, 1))

    per_register: List[int] = []
    for index in range(len(registers)):
        lengths = [length for reg, length in blocks if reg == index]
        per_register.append(lengths[0] if lengths else 0)
    return per_register, [length for _, length in blocks]


def _verify(mapping: SragMapping) -> None:
    """Simulate the functional SRAG model and compare against the input."""
    # Imported here to avoid a circular import (srag builds on the mapping).
    from repro.core.srag import SragFunctionalModel

    model = SragFunctionalModel.from_mapping(mapping)
    produced = model.run(len(mapping.sequence))
    if produced != list(mapping.sequence):
        raise MappingError(
            "verification step failed: the grouped SRAG regenerates "
            f"{produced[:16]}... instead of {list(mapping.sequence)[:16]}..."
        )


def map_address_sequence(
    sequence: AddressSequence, *, verify: bool = True
) -> Tuple[SragMapping, SragMapping]:
    """Map both dimensions of a 2-D :class:`AddressSequence`.

    Returns ``(row_mapping, column_mapping)`` -- the inputs to the row SRAG
    and the column SRAG of the complete two-hot generator.
    """
    row_mapping = map_sequence(
        sequence.row_sequence, num_lines=sequence.rows, verify=verify
    )
    col_mapping = map_sequence(
        sequence.col_sequence, num_lines=sequence.cols, verify=verify
    )
    return row_mapping, col_mapping


def map_row_and_column(
    row_sequence: Sequence[int],
    col_sequence: Sequence[int],
    num_rows: int,
    num_cols: int,
    *,
    verify: bool = True,
) -> Tuple[SragMapping, SragMapping]:
    """Map explicit row and column sequences (convenience wrapper)."""
    return (
        map_sequence(row_sequence, num_lines=num_rows, verify=verify),
        map_sequence(col_sequence, num_lines=num_cols, verify=verify),
    )
