"""The paper's primary contribution.

* :mod:`repro.core.mapper` / :mod:`repro.core.mapping_params` -- the SRAdGen
  automatic mapping procedure of Section 5 and its parameter records
  (Table 2).
* :mod:`repro.core.srag` -- the Shift Register based Address Generator of
  Section 4, as both a behavioural model and a structural elaboration.
* :mod:`repro.core.addm_generator` -- the complete two-hot generator (row
  SRAG + column SRAG) for an address decoder-decoupled memory.
* :mod:`repro.core.two_hot` -- two-hot encoding helpers.
* :mod:`repro.core.sradgen` -- the end-to-end SRAdGen tool flow (sequence in,
  VHDL/Verilog + synthesis report out).
* :mod:`repro.core.multi_counter` -- the relaxed multi-counter extension the
  paper sketches as future work.
"""

from repro.core.addm_generator import SragAddressGenerator
from repro.core.mapper import map_address_sequence, map_row_and_column, map_sequence
from repro.core.mapping_params import MappingError, SragMapping
from repro.core.multi_counter import (
    GeneralisedSragModel,
    GeneralisedSragParameters,
    build_generalised_srag,
    map_sequence_relaxed,
)
from repro.core.srag import SragFunctionalModel, SragPorts, build_srag
from repro.core.sradgen import SRAdGenResult, generate
from repro.core.two_hot import (
    decode_two_hot,
    encode_two_hot,
    is_valid_two_hot,
    one_hot_width,
    two_hot_width,
)

__all__ = [
    "SragAddressGenerator",
    "map_address_sequence",
    "map_row_and_column",
    "map_sequence",
    "MappingError",
    "SragMapping",
    "GeneralisedSragModel",
    "GeneralisedSragParameters",
    "build_generalised_srag",
    "map_sequence_relaxed",
    "SragFunctionalModel",
    "SragPorts",
    "build_srag",
    "SRAdGenResult",
    "generate",
    "decode_two_hot",
    "encode_two_hot",
    "is_valid_two_hot",
    "one_hot_width",
    "two_hot_width",
]
