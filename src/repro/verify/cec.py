"""Combinational and sequential equivalence checking (CEC) between netlists.

The construction is the classic miter used by ABC/yosys ``sat``/``equiv``:
both netlists are Tseitin-encoded into one CNF with shared input-port
variables, a difference flag is attached to every matched output pair, and
the solver is asked for a model raising some flag.  UNSAT is a proof of
equivalence; SAT yields a candidate counterexample.

Sequential designs are handled by *register correspondence induction*: the
optimization pipeline (PR 3/PR 5) preserves cell and net names, so flops are
matched by name, both fabrics are evaluated on a shared symbolic state, and
the solver proves that from any agreeing state the outputs agree and the
next states agree again.  Both simulators reset every flop to 0, so the base
case is trivial and an UNSAT induction step is a full equivalence proof --
over a superset of the reachable states, which is sound.  When induction
does not apply (flop sets differ) or returns a possibly-unreachable
counterexample, the checker falls back to bounded unrolling (BMC) from the
all-zero reset state.

Two defences keep the verdict trustworthy:

* *SAT sweeping*: before the final miter query, internal nets that exist in
  both designs under the same name are proved equal (cheap, effort-bounded
  queries) and merged, so the closing proof is local and fast even on the
  full workload grid.
* *Counterexample replay*: a claimed difference is only ever reported after
  it has been replayed on the reference :class:`~repro.hdl.simulator
  .Simulator` and observed as a real output mismatch.  A solver or encoder
  bug can therefore never produce a false "inequivalent" -- it raises
  :class:`VerificationError` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.obs import metrics, span

from .cnf import CnfBuilder, encode_flop_next, encode_netlist

__all__ = [
    "VerificationError",
    "Counterexample",
    "CecResult",
    "check_equivalence",
]

# Effort bound for individual sweeping queries; a limit hit just skips the
# merge, it never affects soundness of the final verdict.
_SWEEP_CONFLICT_LIMIT = 2_000


class VerificationError(Exception):
    """An internal solver/encoder inconsistency (never a design property)."""


@dataclass
class Counterexample:
    """A replayed, confirmed difference between two netlists.

    ``inputs`` holds one ``{port: bit}`` assignment per cycle (a single
    entry for combinational designs).  The mismatch was observed on the
    reference simulator at ``cycle`` on output ``port``.
    """

    inputs: List[Dict[str, int]]
    cycle: int
    port: str
    golden_value: int
    revised_value: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "inputs": [dict(sorted(a.items())) for a in self.inputs],
            "cycle": self.cycle,
            "port": self.port,
            "golden_value": self.golden_value,
            "revised_value": self.revised_value,
        }

    def describe(self) -> str:
        stimulus = "; ".join(
            "cycle {}: {}".format(
                t, " ".join(f"{k}={v}" for k, v in sorted(a.items())) or "-"
            )
            for t, a in enumerate(self.inputs)
        )
        return (
            f"output {self.port} differs at cycle {self.cycle} "
            f"(golden={self.golden_value}, revised={self.revised_value}) "
            f"under stimulus [{stimulus}]"
        )


@dataclass
class CecResult:
    """Outcome of an equivalence check.

    ``equivalent`` is the verdict; ``proven`` distinguishes a formal proof
    (combinational miter or induction) from a bounded-only answer (BMC
    exhausted its unrolling depth without finding a difference).  A
    ``False`` verdict always carries a simulator-replayed
    :class:`Counterexample`.
    """

    equivalent: bool
    proven: bool
    method: str
    bound: int = 0
    counterexample: Optional[Counterexample] = None
    note: str = ""
    stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "equivalent": self.equivalent,
            "proven": self.proven,
            "method": self.method,
            "bound": self.bound,
            "note": self.note,
            "counterexample": (
                self.counterexample.to_dict() if self.counterexample else None
            ),
            "stats": dict(self.stats),
        }

    def summary(self) -> str:
        if not self.equivalent:
            assert self.counterexample is not None
            return f"NOT equivalent ({self.method}): {self.counterexample.describe()}"
        strength = "proven" if self.proven else f"bounded to {self.bound} cycles"
        detail = f"; {self.note}" if self.note else ""
        return (
            f"equivalent ({self.method}, {strength}; "
            f"{self.stats.get('vars', 0)} vars, "
            f"{self.stats.get('clauses', 0)} clauses, "
            f"{self.stats.get('merged_nets', 0)} nets merged){detail}"
        )


def check_equivalence(golden: Netlist, revised: Netlist, *, bound: int = 8) -> CecResult:
    """Check that ``revised`` implements the same function as ``golden``.

    Netlists are matched by port name (input and output port sets must be
    identical, or :class:`ValueError` is raised).  Purely combinational
    pairs get a direct miter proof; sequential pairs get register-
    correspondence induction with a ``bound``-cycle BMC fallback.
    """
    golden.validate()
    revised.validate()
    if set(golden.inputs) != set(revised.inputs):
        raise ValueError(
            "input ports differ: "
            f"{sorted(golden.inputs)} vs {sorted(revised.inputs)}"
        )
    if set(golden.outputs) != set(revised.outputs):
        raise ValueError(
            "output ports differ: "
            f"{sorted(golden.outputs)} vs {sorted(revised.outputs)}"
        )
    with span("verify.cec", detail=golden.name):
        if golden.sequential_cells() or revised.sequential_cells():
            result = _check_sequential(golden, revised, bound)
        else:
            result = _check_combinational(golden, revised)
    metrics.incr("verify.cec.checks")
    if not result.equivalent:
        metrics.incr("verify.cec.inequivalent")
    return result


# ---------------------------------------------------------------------------
# Shared machinery
# ---------------------------------------------------------------------------

def _shared_input_lits(
    builder: CnfBuilder, golden: Netlist, revised: Netlist
) -> Tuple[Dict[str, int], Dict[str, int], Dict[str, int]]:
    """One variable per input *port*, seeded into both net-lit maps."""
    port_lits = {port: builder.new_var() for port in sorted(golden.inputs)}
    golden_seed = {golden.inputs[p].name: lit for p, lit in port_lits.items()}
    revised_seed = {revised.inputs[p].name: lit for p, lit in port_lits.items()}
    return port_lits, golden_seed, revised_seed


def _canon(table: Dict[int, int], lit: int) -> int:
    """Canonical representative of ``lit`` under the merge substitution."""
    while lit in table:
        lit = table[lit]
    return lit


def _sweep(
    builder: CnfBuilder,
    golden: Netlist,
    golden_lits: Dict[str, int],
    revised: Netlist,
    revised_lits: Dict[str, int],
    canon: Dict[int, int],
) -> int:
    """Prove and merge same-named internal nets; return the merge count.

    Works in the golden netlist's topological order so each query sits on
    top of already-merged fanin, keeping the solver's work local.  Most
    pairs merge *deductively*: when the two drivers are the same cell type
    over pairwise-merged input literals, both Tseitin blocks define the
    same function of the same literals, so equality is a logical
    consequence and no solve is needed (this makes an O0-vs-buffered sweep
    SAT-free).  Structurally changed nets fall back to an effort-bounded
    SAT query; an unanswered query simply skips the merge.

    ``canon`` is the caller's literal-substitution table; every entry added
    to it is an equality already entailed by the clause database, so callers
    may use it to drop provably-equal miter pairs without solving.
    """
    merged = 0

    # Buffers are transparent to canonicalization: a BUF's Tseitin clauses
    # already force its output literal equal to its input literal, so chasing
    # through them costs nothing and lets cells whose pins were rewired onto
    # inserted buffer trees still match their pre-buffering counterparts.
    for netlist, lits in ((golden, golden_lits), (revised, revised_lits)):
        for cell in netlist.topological_combinational_order():
            if cell.cell_type != "BUF":
                continue
            out_lit = lits.get(cell.pins["Y"].name)
            in_lit = lits.get(cell.pins["A"].name)
            if out_lit is None or in_lit is None or out_lit == in_lit:
                continue
            canon[out_lit] = in_lit
            canon[-out_lit] = -in_lit

    def merge(g_lit: int, r_lit: int) -> None:
        builder.assert_equal(g_lit, r_lit)
        canon[r_lit] = g_lit
        canon[-r_lit] = -g_lit

    def structurally_equal(g_cell, net_name: str) -> bool:
        r_net = revised.nets.get(net_name)
        if r_net is None or r_net.driver is None:
            return False
        r_cell, _ = r_net.driver
        if r_cell.cell_type != g_cell.cell_type:
            return False
        for pin in g_cell.spec.inputs:
            g_in = golden_lits.get(g_cell.pins[pin].name)
            r_in = revised_lits.get(r_cell.pins[pin].name)
            if g_in is None or r_in is None:
                return False
            if _canon(canon, g_in) != _canon(canon, r_in):
                return False
        return True

    for cell in golden.topological_combinational_order():
        net_name = cell.pins[cell.spec.outputs[0]].name
        g_lit = golden_lits.get(net_name)
        r_lit = revised_lits.get(net_name)
        if g_lit is None or r_lit is None or g_lit == r_lit:
            continue
        if _canon(canon, g_lit) == _canon(canon, r_lit):
            merged += 1  # already equal through earlier merges
            continue
        if structurally_equal(cell, net_name):
            merge(g_lit, r_lit)
            merged += 1
            continue
        diff = builder.xor_lit(g_lit, r_lit)
        verdict = builder.solver.solve(
            [diff], conflict_limit=_SWEEP_CONFLICT_LIMIT
        )
        if verdict is False:
            merge(g_lit, r_lit)
            merged += 1
    return merged


def _merge_matched_flops(
    builder: CnfBuilder,
    canon: Dict[int, int],
    matched: List[str],
    golden_flops: Dict[str, object],
    revised_flops: Dict[str, object],
    golden_lits: Dict[str, int],
    revised_lits: Dict[str, int],
    next_g: Dict[str, int],
    next_r: Dict[str, int],
) -> None:
    """Deductively merge next-state literals of identically-wired flops.

    When a name-matched flop pair has the same cell type and every non-CLK
    input (plus the shared ``Q`` state) sits on canonically-merged
    literals, both next-state encodings tabulate the same function of the
    same literals, so their output literals are equal by construction --
    mirroring the combinational sweep's structural merge."""
    for name in matched:
        g_flop = golden_flops[name]
        r_flop = revised_flops[name]
        if g_flop.cell_type != r_flop.cell_type:
            continue
        pins = [p for p in g_flop.spec.inputs if p != "CLK"] + ["Q"]
        if all(
            _canon(canon, golden_lits[g_flop.pins[p].name])
            == _canon(canon, revised_lits[r_flop.pins[p].name])
            for p in pins
        ):
            builder.assert_equal(next_g[name], next_r[name])
            canon[next_r[name]] = next_g[name]
            canon[-next_r[name]] = -next_g[name]


def _miter_query(
    builder: CnfBuilder,
    pairs: List[Tuple[int, int]],
    canon: Dict[int, int],
) -> Optional[bool]:
    """SAT query "some pair differs"; ``False`` proves all pairs equal.

    Pairs whose literals are canonically merged are already equal in every
    model (their equality clauses are in the database), so they get no
    difference flag -- without this the closing solve rediscovers each
    merged pair's equality through one learned conflict apiece."""
    flags = [
        builder.xor_lit(a, b)
        for a, b in pairs
        if _canon(canon, a) != _canon(canon, b)
    ]
    if not flags:
        return False
    gate = builder.new_var()
    builder.add(-gate, *flags)
    return builder.solver.solve([gate])


def _model_inputs(
    builder: CnfBuilder, port_lits: Dict[str, int]
) -> Dict[str, int]:
    model = builder.solver.model
    return {port: int(model.get(lit, False)) for port, lit in port_lits.items()}


def _replay(
    golden: Netlist, revised: Netlist, stimulus: List[Dict[str, int]]
) -> Optional[Counterexample]:
    """Run the stimulus on both reference simulators; return the first
    observed output mismatch, or ``None`` when the designs agree on it."""
    sim_g = Simulator(golden)
    sim_r = Simulator(revised)
    for cycle, assignment in enumerate(stimulus):
        for port, value in assignment.items():
            sim_g.poke(port, value)
            sim_r.poke(port, value)
        sim_g.settle()
        sim_r.settle()
        for port in sorted(golden.outputs):
            got_g = sim_g.peek(golden.outputs[port])
            got_r = sim_r.peek(revised.outputs[port])
            if got_g != got_r:
                return Counterexample(
                    inputs=stimulus[: cycle + 1],
                    cycle=cycle,
                    port=port,
                    golden_value=got_g,
                    revised_value=got_r,
                )
        sim_g.step()
        sim_r.step()
    return None


def _confirmed(
    golden: Netlist,
    revised: Netlist,
    stimulus: List[Dict[str, int]],
    method: str,
    bound: int,
    stats: Dict[str, int],
) -> CecResult:
    cex = _replay(golden, revised, stimulus)
    if cex is None:
        raise VerificationError(
            f"{method} produced a counterexample that does not replay on the "
            "reference simulator; refusing to report inequivalence"
        )
    return CecResult(
        equivalent=False,
        proven=True,
        method=method,
        bound=bound,
        counterexample=cex,
        stats=stats,
    )


def _snapshot_stats(builder: CnfBuilder, merged: int) -> Dict[str, int]:
    solver = builder.solver
    return {
        "vars": solver.num_vars,
        "clauses": solver.clause_count,
        "conflicts": solver.conflicts,
        "decisions": solver.decisions,
        "merged_nets": merged,
    }


# ---------------------------------------------------------------------------
# Combinational
# ---------------------------------------------------------------------------

def _check_combinational(golden: Netlist, revised: Netlist) -> CecResult:
    builder = CnfBuilder()
    port_lits, golden_seed, revised_seed = _shared_input_lits(
        builder, golden, revised
    )
    golden_lits = encode_netlist(builder, golden, golden_seed)
    revised_lits = encode_netlist(builder, revised, revised_seed)
    canon: Dict[int, int] = {}
    merged = _sweep(builder, golden, golden_lits, revised, revised_lits, canon)
    pairs = [
        (golden_lits[golden.outputs[p].name], revised_lits[revised.outputs[p].name])
        for p in sorted(golden.outputs)
    ]
    verdict = _miter_query(builder, pairs, canon)
    stats = _snapshot_stats(builder, merged)
    if verdict is False:
        return CecResult(
            equivalent=True, proven=True, method="comb-miter", stats=stats
        )
    stimulus = [_model_inputs(builder, port_lits)]
    return _confirmed(golden, revised, stimulus, "comb-miter", 0, stats)


# ---------------------------------------------------------------------------
# Sequential: induction over register correspondence, BMC fallback
# ---------------------------------------------------------------------------

def _induction_step(golden: Netlist, revised: Netlist) -> Tuple[Optional[bool], Dict[str, int]]:
    """Prove the induction step; returns (miter verdict, stats).

    A shared variable per name-matched flop models "both designs are in the
    same state"; flops private to one side stay free, which over-
    approximates that side's behaviour and keeps UNSAT sound.
    """
    builder = CnfBuilder()
    _, golden_seed, revised_seed = _shared_input_lits(builder, golden, revised)
    golden_flops = {c.name: c for c in golden.sequential_cells()}
    revised_flops = {c.name: c for c in revised.sequential_cells()}
    matched = sorted(set(golden_flops) & set(revised_flops))
    for name in matched:
        state = builder.new_var()
        golden_seed[golden_flops[name].pins["Q"].name] = state
        revised_seed[revised_flops[name].pins["Q"].name] = state
    golden_lits = encode_netlist(builder, golden, golden_seed)
    revised_lits = encode_netlist(builder, revised, revised_seed)
    canon: Dict[int, int] = {}
    merged = _sweep(builder, golden, golden_lits, revised, revised_lits, canon)
    next_g = encode_flop_next(builder, golden, golden_lits)
    next_r = encode_flop_next(builder, revised, revised_lits)
    _merge_matched_flops(
        builder, canon, matched, golden_flops, revised_flops,
        golden_lits, revised_lits, next_g, next_r,
    )
    pairs = [
        (golden_lits[golden.outputs[p].name], revised_lits[revised.outputs[p].name])
        for p in sorted(golden.outputs)
    ]
    pairs.extend((next_g[name], next_r[name]) for name in matched)
    verdict = _miter_query(builder, pairs, canon)
    return verdict, _snapshot_stats(builder, merged)


def _check_sequential(golden: Netlist, revised: Netlist, bound: int) -> CecResult:
    verdict, stats = _induction_step(golden, revised)
    if verdict is False:
        return CecResult(
            equivalent=True, proven=True, method="induction", stats=stats
        )
    # The induction counterexample may start from an unreachable state, so
    # it is never reported directly; fall back to bounded model checking
    # from the real (all-zero) reset state.
    return _bmc(golden, revised, bound, note="induction step failed")


def _bmc(golden: Netlist, revised: Netlist, bound: int, *, note: str) -> CecResult:
    builder = CnfBuilder()
    zero = builder.false_lit()
    golden_flops = {c.name: c for c in golden.sequential_cells()}
    revised_flops = {c.name: c for c in revised.sequential_cells()}
    matched = sorted(set(golden_flops) & set(revised_flops))
    state_g = {name: zero for name in golden_flops}
    state_r = {name: zero for name in revised_flops}
    cycle_ports: List[Dict[str, int]] = []
    diff_flags: List[int] = []
    merged = 0
    canon: Dict[int, int] = {}
    for _ in range(bound):
        port_lits, golden_seed, revised_seed = _shared_input_lits(
            builder, golden, revised
        )
        cycle_ports.append(port_lits)
        for name, cell in golden_flops.items():
            golden_seed[cell.pins["Q"].name] = state_g[name]
        for name, cell in revised_flops.items():
            revised_seed[cell.pins["Q"].name] = state_r[name]
        golden_lits = encode_netlist(builder, golden, golden_seed)
        revised_lits = encode_netlist(builder, revised, revised_seed)
        merged += _sweep(builder, golden, golden_lits, revised, revised_lits, canon)
        for port in sorted(golden.outputs):
            g_lit = golden_lits[golden.outputs[port].name]
            r_lit = revised_lits[revised.outputs[port].name]
            if _canon(canon, g_lit) != _canon(canon, r_lit):
                diff_flags.append(builder.xor_lit(g_lit, r_lit))
        state_g = encode_flop_next(builder, golden, golden_lits)
        state_r = encode_flop_next(builder, revised, revised_lits)
        _merge_matched_flops(
            builder, canon, matched, golden_flops, revised_flops,
            golden_lits, revised_lits, state_g, state_r,
        )
    gate = builder.new_var()
    builder.add(-gate, *diff_flags)
    verdict = builder.solver.solve([gate])
    stats = _snapshot_stats(builder, merged)
    if verdict is False:
        return CecResult(
            equivalent=True,
            proven=False,
            method="bmc",
            bound=bound,
            note=note,
            stats=stats,
        )
    stimulus = [_model_inputs(builder, ports) for ports in cycle_ports]
    return _confirmed(golden, revised, stimulus, "bmc", bound, stats)
