"""Formal verification: SAT core, equivalence checking, cover oracle.

Public surface:

* :class:`repro.verify.sat.SatSolver` -- deterministic stdlib CDCL solver.
* :func:`repro.verify.cec.check_equivalence` -- combinational/sequential
  CEC with simulator-replayed counterexamples.
* :func:`repro.verify.cover.verify_cover` -- SAT proof that an SOP cover
  equals a :class:`~repro.synth.logic.truth_table.TruthTable` exactly.
"""

from .cec import CecResult, Counterexample, VerificationError, check_equivalence
from .cover import CoverVerdict, verify_cover
from .sat import SatSolver

__all__ = [
    "CecResult",
    "Counterexample",
    "VerificationError",
    "check_equivalence",
    "CoverVerdict",
    "verify_cover",
    "SatSolver",
]
