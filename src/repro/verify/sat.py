"""Deterministic stdlib-only CDCL SAT solver.

The formal-verification layer (:mod:`repro.verify.cec`,
:mod:`repro.verify.cover`) needs a complete Boolean oracle; this module is a
small conflict-driven clause-learning solver in the MiniSat lineage:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style variable activities (decay on conflict, lazy max-heap),
* Luby-sequence restarts with phase saving,
* incremental use: clauses may be added between :meth:`SatSolver.solve`
  calls, and each call may carry *assumptions* (temporarily asserted
  literals), which is what lets the equivalence checker prove hundreds of
  small per-net queries against one shared CNF.

Everything is deterministic by construction -- no ``random``, no wall-clock
(the ``ast.nondeterministic-key`` lint rule patrols exactly this): variable
order falls back to index on activity ties, so the same clause set always
explores the same tree and produces the same model.

Literals follow the DIMACS convention: variable ``v`` (a positive integer
handed out by :meth:`SatSolver.new_var`) appears positively as ``v`` and
negatively as ``-v``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["SatSolver", "luby"]


def luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
    if i < 1:
        raise ValueError("luby is 1-indexed")
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """A CDCL solver over clauses of integer literals.

    Typical use::

        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        assert solver.solve() is True
        assert solver.model[b] is True

    :meth:`solve` returns ``True`` (satisfiable; ``self.model`` maps every
    variable to a bool), ``False`` (unsatisfiable, under the given
    assumptions if any) or ``None`` when ``conflict_limit`` was exhausted
    before an answer was reached (the effort-bounded mode the SAT-backed
    lint rules use).
    """

    _RESTART_BASE = 100
    _ACTIVITY_DECAY = 0.95
    _ACTIVITY_RESCALE = 1e100

    def __init__(self) -> None:
        self.num_vars = 0
        # Index 0 is padding so variables index their slots directly.
        self._assign: List[int] = [0]  # 0 unassigned / 1 true / -1 false
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._watches: Dict[int, List[List[int]]] = {}
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._heap: List[Tuple[float, int]] = []
        self._var_inc = 1.0
        self._unsat = False
        self.model: Dict[int, bool] = {}
        # Cumulative statistics (monotonic across solve() calls).
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.clause_count = 0

    # ------------------------------------------------------------ construction
    def new_var(self) -> int:
        """Allocate and return a fresh variable (a positive literal)."""
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        heapq.heappush(self._heap, (0.0, self.num_vars))
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; may be called before or between :meth:`solve` calls."""
        if self._unsat:
            return
        self._cancel_until(0)
        seen: Dict[int, bool] = {}
        lits: List[int] = []
        for lit in literals:
            var = abs(lit)
            if not 0 < var <= self.num_vars:
                raise ValueError(f"literal {lit} names an unallocated variable")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen[lit] = True
                value = self._value(lit)
                if value == 1:
                    return  # satisfied at the root level
                if value != -1:
                    lits.append(lit)
        if not lits:
            self._unsat = True
            return
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            if self._propagate() is not None:
                self._unsat = True
            return
        self.clause_count += 1
        self._attach(lits)

    def _attach(self, clause: List[int]) -> None:
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # ---------------------------------------------------------------- querying
    def _value(self, lit: int) -> int:
        assigned = self._assign[abs(lit)]
        if assigned == 0:
            return 0
        return assigned if lit > 0 else -assigned

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # -------------------------------------------------------------- assignment
    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        value = self._value(lit)
        if value != 0:
            return value == 1
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _cancel_until(self, level: int) -> None:
        if self._decision_level <= level:
            return
        bound = self._trail_lim[level]
        for lit in self._trail[bound:]:
            var = abs(lit)
            self._phase[var] = lit > 0
            self._assign[var] = 0
            self._reason[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------- propagation
    def _propagate(self) -> Optional[List[int]]:
        """Exhaust unit propagation; return a conflicting clause or ``None``."""
        while self._qhead < len(self._trail):
            false_lit = -self._trail[self._qhead]
            self._qhead += 1
            watchers = self._watches.get(false_lit)
            if not watchers:
                continue
            kept: List[List[int]] = []
            conflict: Optional[List[int]] = None
            for index, clause in enumerate(watchers):
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(clause)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        break
                else:
                    kept.append(clause)
                    if self._value(first) == -1:
                        kept.extend(watchers[index + 1:])
                        conflict = clause
                        break
                    self.propagations += 1
                    self._enqueue(first, clause)
            self._watches[false_lit] = kept
            if conflict is not None:
                self._qhead = len(self._trail)
                return conflict
        return None

    # ---------------------------------------------------------------- analysis
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > self._ACTIVITY_RESCALE:
            inv = 1.0 / self._ACTIVITY_RESCALE
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= inv
            self._var_inc *= inv

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP learning: return (learned clause, backtrack level).

        ``learned[0]`` is the asserting literal.
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail)
        reason: Optional[List[int]] = conflict
        while True:
            assert reason is not None
            for other in reason:
                if other == lit:
                    continue
                var = abs(other)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] >= self._decision_level:
                    counter += 1
                else:
                    learned.append(other)
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            if counter == 0:
                break
            # ``lit`` is the trail literal whose reason we expand next; its
            # reason clause lists ``lit`` itself, skipped by the loop above.
            reason = self._reason[abs(lit)]
        learned[0] = -lit
        if len(learned) == 1:
            return learned, 0
        # Backtrack to the second-highest level in the learned clause and
        # put a literal of that level in the second watch position.
        max_index = 1
        for k in range(2, len(learned)):
            if self._level[abs(learned[k])] > self._level[abs(learned[max_index])]:
                max_index = k
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, self._level[abs(learned[1])]

    # ------------------------------------------------------------------ decide
    def _pick_branch_var(self) -> int:
        while self._heap:
            negated_activity, var = heapq.heappop(self._heap)
            if self._assign[var] == 0 and -negated_activity == self._activity[var]:
                return var
        for var in range(1, self.num_vars + 1):  # pragma: no cover - heap lag
            if self._assign[var] == 0:
                return var
        return 0

    # ------------------------------------------------------------------- solve
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: Optional[int] = None,
    ) -> Optional[bool]:
        """Decide satisfiability under ``assumptions``.

        Returns ``True``/``False``, or ``None`` if ``conflict_limit``
        conflicts elapsed first.  On ``True``, :attr:`model` maps every
        allocated variable to its value (variables the search never touched
        default to ``False``).  The solver remains usable afterwards: more
        clauses may be added and further calls made.
        """
        if self._unsat:
            return False
        self._cancel_until(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        budget = conflict_limit
        restart_count = 0
        restart_budget = self._RESTART_BASE * luby(1)
        conflicts_here = 0
        # Decision levels 1..root_level hold only assumption decisions; a
        # conflict at or below root_level therefore contradicts the
        # assumptions themselves.  (Counting len(assumptions) would be wrong:
        # implied assumptions open no level, so a free decision can sit at a
        # numerically lower level than the assumption count.)
        root_level = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if self._decision_level <= root_level:
                    self._cancel_until(0)
                    return False
                learned, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                root_level = min(root_level, back_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    self.clause_count += 1
                    self._attach(learned)
                    self._enqueue(learned[0], learned)
                self._var_inc /= self._ACTIVITY_DECAY
                if budget is not None and conflicts_here >= budget:
                    self._cancel_until(0)
                    return None
                if conflicts_here >= restart_budget:
                    restart_count += 1
                    restart_budget = conflicts_here + (
                        self._RESTART_BASE * luby(restart_count + 1)
                    )
                    self._cancel_until(0)
                    root_level = 0
                continue
            # Assumption prefix: one decision level per not-yet-implied
            # assumed literal, re-established after every backjump/restart.
            pending = None
            failed = False
            for lit in assumptions:
                value = self._value(lit)
                if value == -1:
                    failed = True
                    break
                if value == 0:
                    pending = lit
                    break
            if failed:
                self._cancel_until(0)
                return False
            if pending is not None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(pending, None)
                root_level = self._decision_level
                continue
            var = self._pick_branch_var()
            if var == 0:
                self.model = {
                    v: self._assign[v] == 1 for v in range(1, self.num_vars + 1)
                }
                self._cancel_until(0)
                return True
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(var if self._phase[var] else -var, None)
