"""SAT oracle for two-level covers: does an SOP equal a ``TruthTable``?

``verify_cover`` is the correctness contract the ROADMAP's heuristic
(Espresso-style) minimizer will be held to: above the exact-QM input ceiling
there is no exact cover to diff against, so exactness must be *proved*, not
compared.  The proof is two UNSAT queries over the input variables:

* **missed minterm** -- is there an assignment in the on-set that no cube
  covers?  (``on_set ⊆ cover``)
* **off-set overlap** -- is there an assignment in the off-set that some
  cube covers?  (``cover ⊆ on_set ∪ dc_set``)

Both unsatisfiable means the cover is exact up to don't-cares -- precisely
the freedom a minimizer is allowed.  Any SAT model is decoded and checked
directly against the table/cubes in Python before being reported, so a
solver bug cannot produce a false rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.synth.logic.minimize import Implicant
from repro.synth.logic.truth_table import TruthTable

from .sat import SatSolver

__all__ = ["CoverVerdict", "verify_cover"]


class CoverOracleError(Exception):
    """Internal solver/decode inconsistency (never a property of the cover)."""


@dataclass(frozen=True)
class CoverVerdict:
    """Result of :func:`verify_cover`.

    ``exact`` is the verdict.  On rejection, ``missed_minterm`` is an
    on-set minterm no cube covers and/or ``overlap_minterm`` is an off-set
    minterm some cube covers (each ``None`` when that direction holds).
    """

    exact: bool
    missed_minterm: Optional[int] = None
    overlap_minterm: Optional[int] = None

    def describe(self) -> str:
        if self.exact:
            return "cover exactly matches the table"
        parts = []
        if self.missed_minterm is not None:
            parts.append(f"on-set minterm {self.missed_minterm} is not covered")
        if self.overlap_minterm is not None:
            parts.append(
                f"off-set minterm {self.overlap_minterm} is wrongly covered"
            )
        return "; ".join(parts)


def _exclude_clause(variables: Sequence[int], minterm: int) -> List[int]:
    """A clause forcing the input vector to differ from ``minterm``."""
    return [
        -variables[i] if (minterm >> i) & 1 else variables[i]
        for i in range(len(variables))
    ]


def _decode(solver: SatSolver, variables: Sequence[int]) -> int:
    model = solver.model
    value = 0
    for i, var in enumerate(variables):
        if model.get(var, False):
            value |= 1 << i
    return value


def _find_missed(table: TruthTable, implicants: Sequence[Implicant]) -> Optional[int]:
    solver = SatSolver()
    variables = [solver.new_var() for _ in range(table.num_inputs)]
    for minterm in sorted(table.off_set | table.dc_set):
        solver.add_clause(_exclude_clause(variables, minterm))
    for imp in implicants:
        # NOT cube: at least one literal of the cube is violated.  An empty
        # cube (constant-1 term) yields the empty clause: nothing is missed.
        solver.add_clause(
            [
                -variables[i] if positive else variables[i]
                for i, positive in imp.literals()
            ]
        )
    if solver.solve() is not True:
        return None
    minterm = _decode(solver, variables)
    if minterm not in table.on_set or any(imp.covers(minterm) for imp in implicants):
        raise CoverOracleError(
            f"missed-minterm model {minterm} fails the direct check"
        )
    return minterm


def _find_overlap(table: TruthTable, implicants: Sequence[Implicant]) -> Optional[int]:
    solver = SatSolver()
    variables = [solver.new_var() for _ in range(table.num_inputs)]
    for minterm in sorted(table.on_set | table.dc_set):
        solver.add_clause(_exclude_clause(variables, minterm))
    selectors = []
    for imp in implicants:
        selector = solver.new_var()
        for i, positive in imp.literals():
            solver.add_clause(
                [-selector, variables[i] if positive else -variables[i]]
            )
        selectors.append(selector)
    # cover(x) = 1: some cube is selected (and, via the clauses above,
    # actually satisfied).  No implicants -> empty clause -> no overlap.
    solver.add_clause(selectors)
    if solver.solve() is not True:
        return None
    minterm = _decode(solver, variables)
    if minterm not in table.off_set or not any(
        imp.covers(minterm) for imp in implicants
    ):
        raise CoverOracleError(
            f"overlap model {minterm} fails the direct check"
        )
    return minterm


def verify_cover(
    table: TruthTable, implicants: Sequence[Implicant]
) -> CoverVerdict:
    """Prove (or refute, with witnesses) that the SOP equals the table.

    The cover is *exact* when it contains every on-set minterm and nothing
    from the off-set; don't-care minterms may land on either side.
    """
    for imp in implicants:
        if imp.num_inputs != table.num_inputs:
            raise ValueError(
                f"implicant width {imp.num_inputs} does not match "
                f"table width {table.num_inputs}"
            )
    missed = _find_missed(table, implicants)
    overlap = _find_overlap(table, implicants)
    return CoverVerdict(
        exact=missed is None and overlap is None,
        missed_minterm=missed,
        overlap_minterm=overlap,
    )
