"""Address decoder-decoupled memory model (Figure 2 of the paper).

The ADDM removes the built-in row/column decoders: the memory cell array is
driven directly by ``2^m`` row-select and ``2^n`` column-select lines, and all
address sequencing *and* decoding responsibility moves into the external
address generator (an FSM in general, the SRAG in particular).  The model
therefore accepts raw select vectors and checks the single-assertion safety
property the paper's conclusion insists on.
"""

from __future__ import annotations

from typing import Sequence

from repro.memory.cell_array import MemoryCellArray

__all__ = ["AddressDecoderDecoupledMemory"]


class AddressDecoderDecoupledMemory:
    """A ``rows x cols`` memory driven by row/column select lines."""

    def __init__(self, rows: int, cols: int):
        self.array = MemoryCellArray(rows, cols)

    @property
    def rows(self) -> int:
        """Number of row-select lines."""
        return self.array.rows

    @property
    def cols(self) -> int:
        """Number of column-select lines."""
        return self.array.cols

    @property
    def size(self) -> int:
        """Number of addressable words."""
        return self.rows * self.cols

    def read(self, row_select: Sequence[int], col_select: Sequence[int]) -> int:
        """Read the word selected by the two one-hot vectors.

        Raises :class:`~repro.memory.cell_array.MultipleSelectError` when the
        vectors are not exactly one-hot (no decoder exists to guarantee it).
        """
        return self.array.read_selected(row_select, col_select)

    def write(
        self, row_select: Sequence[int], col_select: Sequence[int], value: int
    ) -> None:
        """Write ``value`` to the word selected by the two one-hot vectors."""
        self.array.write_selected(row_select, col_select, value)

    def read_rowcol(self, row: int, col: int) -> int:
        """Testing convenience: read by index, bypassing the select lines."""
        return self.array.read_cell(row, col)

    def write_rowcol(self, row: int, col: int, value: int) -> None:
        """Testing convenience: write by index, bypassing the select lines."""
        self.array.write_cell(row, col, value)
