"""Two-dimensional memory cell array with a select-line interface.

This is the storage fabric shared by every memory model in the package.  It
exposes two access styles:

* indexed access (``read_cell`` / ``write_cell``) used by the conventional
  RAM model after it has decoded the binary address, and
* select-line access (``read_selected`` / ``write_selected``) used by the
  address decoder-decoupled memory, where the caller supplies the raw
  row-select and column-select vectors.

The select-line path enforces the safety property the paper's conclusion
highlights: if more than one row (or column) select line is asserted the
write would short multiple cells together, so the model raises
:class:`MultipleSelectError` instead of silently corrupting data.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["MemoryCellArray", "MultipleSelectError"]


class MultipleSelectError(Exception):
    """Raised when more than one select line of a dimension is asserted."""


class MemoryCellArray:
    """A ``rows x cols`` array of single-word storage cells.

    Parameters
    ----------
    rows, cols:
        Physical dimensions of the array (``2^m`` by ``2^n`` in the paper's
        Figures 1 and 2, although powers of two are not required here).
    fill:
        Initial content of every cell.
    """

    def __init__(self, rows: int, cols: int, fill: int = 0):
        if rows < 1 or cols < 1:
            raise ValueError(f"array dimensions must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._cells: List[List[int]] = [[fill] * cols for _ in range(rows)]
        self.read_count = 0
        self.write_count = 0

    # ----------------------------------------------------------- index access
    def read_cell(self, row: int, col: int) -> int:
        """Read the cell at (``row``, ``col``)."""
        self._check_index(row, col)
        self.read_count += 1
        return self._cells[row][col]

    def write_cell(self, row: int, col: int, value: int) -> None:
        """Write ``value`` to the cell at (``row``, ``col``)."""
        self._check_index(row, col)
        self.write_count += 1
        self._cells[row][col] = value

    # ------------------------------------------------------ select-line access
    def read_selected(self, row_select: Sequence[int], col_select: Sequence[int]) -> int:
        """Read the cell addressed by one-hot row/column select vectors."""
        row = self._decode_select(row_select, self.rows, "row")
        col = self._decode_select(col_select, self.cols, "column")
        return self.read_cell(row, col)

    def write_selected(
        self, row_select: Sequence[int], col_select: Sequence[int], value: int
    ) -> None:
        """Write ``value`` to the cell addressed by one-hot select vectors."""
        row = self._decode_select(row_select, self.rows, "row")
        col = self._decode_select(col_select, self.cols, "column")
        self.write_cell(row, col, value)

    # -------------------------------------------------------------- utilities
    def snapshot(self) -> List[List[int]]:
        """Return a copy of the whole array contents."""
        return [list(row) for row in self._cells]

    def load(self, contents: Sequence[Sequence[int]]) -> None:
        """Replace the array contents from a ``rows x cols`` nested sequence."""
        if len(contents) != self.rows or any(len(r) != self.cols for r in contents):
            raise ValueError(
                f"contents shape does not match {self.rows}x{self.cols} array"
            )
        self._cells = [list(row) for row in contents]

    def _check_index(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"cell ({row},{col}) outside {self.rows}x{self.cols} array")

    @staticmethod
    def _decode_select(select: Sequence[int], expected: int, what: str) -> int:
        if len(select) != expected:
            raise ValueError(
                f"{what}-select vector has {len(select)} lines, expected {expected}"
            )
        asserted = [i for i, bit in enumerate(select) if bit]
        if len(asserted) > 1:
            raise MultipleSelectError(
                f"multiple {what}-select lines asserted: {asserted}"
            )
        if not asserted:
            raise MultipleSelectError(f"no {what}-select line asserted")
        return asserted[0]
