"""Conventional RAM model (Figure 1 of the paper).

A RAM with built-in row and column decoders: the interface is a binary
address of ``m + n`` bits which is split into a row address (upper ``m``
bits) and a column address (lower ``n`` bits) and decoded internally.  This
is the memory model assumed by most memory-synthesis work the paper surveys,
and the one the CntAG baseline targets.
"""

from __future__ import annotations

from typing import Tuple

from repro.memory.cell_array import MemoryCellArray

__all__ = ["ConventionalRAM"]


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


class ConventionalRAM:
    """A ``2^m x 2^n`` RAM accessed through a binary address port.

    Parameters
    ----------
    rows, cols:
        Array dimensions; both must be powers of two because the built-in
        decoders decode fixed-width binary row/column addresses.
    """

    def __init__(self, rows: int, cols: int):
        if not (_is_power_of_two(rows) and _is_power_of_two(cols)):
            raise ValueError(
                f"conventional RAM dimensions must be powers of two, got {rows}x{cols}"
            )
        self.array = MemoryCellArray(rows, cols)
        self.row_address_width = (rows - 1).bit_length() if rows > 1 else 1
        self.col_address_width = (cols - 1).bit_length() if cols > 1 else 1

    @property
    def rows(self) -> int:
        """Number of rows (``2^m``)."""
        return self.array.rows

    @property
    def cols(self) -> int:
        """Number of columns (``2^n``)."""
        return self.array.cols

    @property
    def address_width(self) -> int:
        """Total binary address width ``m + n``."""
        return self.row_address_width + self.col_address_width

    @property
    def size(self) -> int:
        """Number of addressable words."""
        return self.rows * self.cols

    def split_address(self, address: int) -> Tuple[int, int]:
        """Split a linear binary address into (row address, column address).

        The column address occupies the low-order bits, matching the paper's
        row-major linear address ``LA = I0 * img_width + I1``.
        """
        if not (0 <= address < self.size):
            raise IndexError(f"address {address} outside 0..{self.size - 1}")
        return address >> self.col_address_width, address & (self.cols - 1)

    def read(self, address: int) -> int:
        """Read the word at the binary ``address`` (decoders are internal)."""
        row, col = self.split_address(address)
        return self.array.read_cell(row, col)

    def write(self, address: int, value: int) -> None:
        """Write ``value`` at the binary ``address``."""
        row, col = self.split_address(address)
        self.array.write_cell(row, col, value)
