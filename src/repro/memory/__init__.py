"""Memory models.

Functional models of the three memory organisations discussed in the paper:

* :class:`~repro.memory.ram.ConventionalRAM` -- the standard RAM model of
  Figure 1, with built-in row/column address decoders and a binary address
  port.
* :class:`~repro.memory.addm.AddressDecoderDecoupledMemory` -- the proposed
  ADDM model of Figure 2, whose cell array is driven directly by row-select
  and column-select lines (and which therefore corrupts data if more than one
  line is asserted -- the hazard called out in the paper's conclusion).
* :class:`~repro.memory.sfm.SequentialFifoMemory` -- Aloqeely's Sequential
  FIFO Memory (Figure 6), the prior art the SRAG improves on.

The paper excludes the memory cell array from all area/delay figures, so
these models are used for functional verification (does a generated address
generator stream the right data in and out?) rather than for estimation.
"""

from repro.memory.cell_array import MemoryCellArray, MultipleSelectError
from repro.memory.layout import DataLayout, ROW_MAJOR, COLUMN_MAJOR, BlockedLayout
from repro.memory.ram import ConventionalRAM
from repro.memory.addm import AddressDecoderDecoupledMemory
from repro.memory.sfm import SequentialFifoMemory

__all__ = [
    "MemoryCellArray",
    "MultipleSelectError",
    "DataLayout",
    "ROW_MAJOR",
    "COLUMN_MAJOR",
    "BlockedLayout",
    "ConventionalRAM",
    "AddressDecoderDecoupledMemory",
    "SequentialFifoMemory",
]
