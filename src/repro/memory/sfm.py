"""Sequential FIFO Memory (Aloqeely, ISCAS 1998; Figure 6 of the paper).

The SFM is the prior art the SRAG improves on: a one-dimensional memory
whose address decoder is replaced by two one-hot ("one-bit") shift registers,
a head-pointer register selecting the cell to read and a tail-pointer
register selecting the cell to write.  The paper lists its limitations --
one-dimensional organisation, one-hot encoding, FIFO-only access -- which the
SRAG lifts; this model exists so those limitations can be demonstrated and so
the ``fifo`` row of Table 3 has a faithful functional reference.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["SequentialFifoMemory"]


class SequentialFifoMemory:
    """A FIFO memory with head/tail pointer shift registers.

    Parameters
    ----------
    depth:
        Number of memory cells (and of flip-flops in each pointer register).
    """

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError(f"SFM depth must be positive, got {depth}")
        self.depth = depth
        self._cells: List[Optional[int]] = [None] * depth
        # One-hot pointer registers; the token marks the next cell to use.
        self._head = 0  # next cell to read
        self._tail = 0  # next cell to write
        self._occupancy = 0

    # -------------------------------------------------------------- pointers
    @property
    def head_pointer(self) -> List[int]:
        """Current one-hot head (read) pointer vector."""
        return [1 if i == self._head else 0 for i in range(self.depth)]

    @property
    def tail_pointer(self) -> List[int]:
        """Current one-hot tail (write) pointer vector."""
        return [1 if i == self._tail else 0 for i in range(self.depth)]

    @property
    def occupancy(self) -> int:
        """Number of words currently stored."""
        return self._occupancy

    @property
    def is_empty(self) -> bool:
        """True when no data is stored."""
        return self._occupancy == 0

    @property
    def is_full(self) -> bool:
        """True when every cell holds live data."""
        return self._occupancy == self.depth

    # ----------------------------------------------------------------- access
    def push(self, value: int) -> None:
        """Write ``value`` at the tail pointer and advance the tail register."""
        if self.is_full:
            raise OverflowError("SFM is full")
        self._cells[self._tail] = value
        self._tail = (self._tail + 1) % self.depth
        self._occupancy += 1

    def pop(self) -> int:
        """Read the value at the head pointer and advance the head register."""
        if self.is_empty:
            raise IndexError("SFM is empty")
        value = self._cells[self._head]
        assert value is not None
        self._cells[self._head] = None
        self._head = (self._head + 1) % self.depth
        self._occupancy -= 1
        return value

    def reset(self) -> None:
        """Return both pointer registers to cell 0 and drop all contents."""
        self._cells = [None] * self.depth
        self._head = 0
        self._tail = 0
        self._occupancy = 0

    # ----------------------------------------------------------- limitations
    def supports_access_pattern(self, sequence: List[int]) -> bool:
        """Whether the SFM can serve ``sequence`` as its *read* order.

        The SFM can only produce first-in first-out access: the read sequence
        must visit cells in the same cyclic incremental order the writes used.
        This check makes the paper's "cannot be applied to other types of
        address sequences such as block access" limitation executable.
        """
        if not sequence:
            return True
        start = sequence[0]
        expected = [(start + i) % self.depth for i in range(len(sequence))]
        return list(sequence) == expected
