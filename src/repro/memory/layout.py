"""Data organisation within the memory cell array.

Section 5 of the paper notes that "data organization within the memory cell
array can greatly affect the available regularity at the RowAS and ColAS
level" and assumes a row-major mapping for its examples (``RA = I0``,
``CA = I1``, ``LA = I0 * img_width + I1``).  This module makes that mapping
an explicit, swappable object so that the effect of alternative organisations
(column-major, blocked) on mappability and on the resulting SRAG cost can be
studied -- the design-space knob the paper leaves to future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

__all__ = ["DataLayout", "ROW_MAJOR", "COLUMN_MAJOR", "BlockedLayout"]


@dataclass
class DataLayout:
    """A bijection between 2-D array indices and physical (row, column) cells.

    Attributes
    ----------
    name:
        Layout name used in reports.
    to_rowcol:
        Maps ``(i0, i1, rows, cols)`` to the physical ``(row, col)``.
    """

    name: str
    to_rowcol: Callable[[int, int, int, int], Tuple[int, int]]

    def rowcol(self, i0: int, i1: int, rows: int, cols: int) -> Tuple[int, int]:
        """Physical (row, column) of logical element ``[i0][i1]``."""
        if not (0 <= i0 < rows and 0 <= i1 < cols):
            raise IndexError(f"index ({i0},{i1}) outside {rows}x{cols} array")
        row, col = self.to_rowcol(i0, i1, rows, cols)
        if not (0 <= row < rows and 0 <= col < cols):
            raise ValueError(
                f"layout {self.name!r} mapped ({i0},{i1}) outside the physical array"
            )
        return row, col

    def linear(self, i0: int, i1: int, rows: int, cols: int) -> int:
        """Linear (word) address of logical element ``[i0][i1]``.

        The linear address follows the physical placement:
        ``row * cols + col``, matching the paper's ``LA = I0*img_width + I1``
        for the row-major layout.
        """
        row, col = self.rowcol(i0, i1, rows, cols)
        return row * cols + col

    def linear_to_rowcol(self, address: int, rows: int, cols: int) -> Tuple[int, int]:
        """Split a linear address into its physical (row, column)."""
        if not (0 <= address < rows * cols):
            raise IndexError(f"linear address {address} outside {rows}x{cols} array")
        return divmod(address, cols)


def _column_major(i0: int, i1: int, rows: int, cols: int) -> Tuple[int, int]:
    """Place element [i0][i1] at linear address ``i1*rows + i0``."""
    return divmod(i1 * rows + i0, cols)


ROW_MAJOR = DataLayout("row_major", lambda i0, i1, rows, cols: (i0, i1))
COLUMN_MAJOR = DataLayout("column_major", _column_major)


class BlockedLayout(DataLayout):
    """A block (tiled) layout.

    The array is divided into ``block_rows x block_cols`` tiles laid out in
    raster order; elements inside a tile stay in raster order.  Blocked
    layouts turn block-based access patterns (such as the macroblock reads of
    the motion-estimation kernel) into *incremental* linear sequences, which
    is one of the data-organisation optimisations the paper's future-work
    section anticipates.
    """

    def __init__(self, block_rows: int, block_cols: int):
        if block_rows < 1 or block_cols < 1:
            raise ValueError("block dimensions must be positive")
        self.block_rows = block_rows
        self.block_cols = block_cols

        def to_rowcol(i0: int, i1: int, rows: int, cols: int) -> Tuple[int, int]:
            if rows % block_rows or cols % block_cols:
                raise ValueError(
                    f"{rows}x{cols} array is not divisible into "
                    f"{block_rows}x{block_cols} blocks"
                )
            blocks_per_row = cols // block_cols
            block_index = (i0 // block_rows) * blocks_per_row + (i1 // block_cols)
            within = (i0 % block_rows) * block_cols + (i1 % block_cols)
            linear = block_index * (block_rows * block_cols) + within
            return divmod(linear, cols)

        super().__init__(name=f"blocked_{block_rows}x{block_cols}", to_rowcol=to_rowcol)
