"""Area accounting.

Sums standard-cell areas over a netlist and breaks the total down by cell
type and by sequential/combinational contribution, mirroring the "area in
cell units" figures of the paper (Figures 4 and 10, Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hdl.netlist import Netlist
from repro.synth.cell_library import CellLibrary, STD018

__all__ = ["AreaReport", "area_report"]


@dataclass
class AreaReport:
    """Area breakdown of one netlist.

    Attributes
    ----------
    total:
        Total area in cell units.
    sequential:
        Area contributed by flip-flops.
    combinational:
        Area contributed by all other cells.
    by_cell_type:
        Area per cell type.
    cell_counts:
        Instance count per cell type.
    """

    total: float
    sequential: float
    combinational: float
    by_cell_type: Dict[str, float] = field(default_factory=dict)
    cell_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def flip_flop_count(self) -> int:
        """Number of flip-flop instances."""
        return sum(
            count
            for cell_type, count in self.cell_counts.items()
            if cell_type.startswith("DFF")
        )

    def describe(self) -> str:
        """Multi-line human-readable area report."""
        lines = [
            f"total area: {self.total:.1f} cell units "
            f"(sequential {self.sequential:.1f}, combinational {self.combinational:.1f})"
        ]
        for cell_type in sorted(self.by_cell_type, key=self.by_cell_type.get, reverse=True):
            lines.append(
                f"  {cell_type:<12} x{self.cell_counts[cell_type]:<6d} "
                f"{self.by_cell_type[cell_type]:10.1f}"
            )
        return "\n".join(lines)


def area_report(netlist: Netlist, library: CellLibrary = STD018) -> AreaReport:
    """Compute the :class:`AreaReport` of ``netlist`` against ``library``."""
    by_type: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    sequential = 0.0
    combinational = 0.0
    for cell in netlist.cells.values():
        area = library.area_of(cell.cell_type)
        by_type[cell.cell_type] = by_type.get(cell.cell_type, 0.0) + area
        counts[cell.cell_type] = counts.get(cell.cell_type, 0) + 1
        if cell.spec.sequential:
            sequential += area
        else:
            combinational += area
    return AreaReport(
        total=sequential + combinational,
        sequential=sequential,
        combinational=combinational,
        by_cell_type=by_type,
        cell_counts=counts,
    )
