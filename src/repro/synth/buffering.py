"""High-fanout net buffering.

A synthesis tool never lets one gate drive hundreds of loads directly: it
inserts a buffer tree, trading a little area for a delay that grows with the
*logarithm* of the fanout instead of linearly.  The nets that matter in this
reproduction are exactly the ones the paper's architectures stress --

* the SRAG ``enable``/``pass`` control signals fan out to every shift-register
  flip-flop (hundreds of loads for large arrays),
* the CntAG address-counter bits fan out to the row/column decoders, and the
  pre-decode lines inside those decoders fan out to all the output gates.

Buffering is applied by :func:`repro.synth.flow.run_synthesis_flow` before
timing and area analysis, so every reported figure already includes the
buffer-tree cost, just as Design Compiler's numbers would.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hdl.netlist import Cell, Net, Netlist

__all__ = ["insert_buffer_trees"]


def insert_buffer_trees(netlist: Netlist, max_fanout: int = 8) -> int:
    """Insert balanced buffer trees on every net whose fanout exceeds ``max_fanout``.

    Loads are re-distributed so that no driver (original or inserted buffer)
    drives more than ``max_fanout`` pins.  Flip-flop clock pins are not
    counted or rebuffered (an ideal clock tree is assumed, as is conventional
    for pre-layout synthesis numbers).

    Returns the number of buffers inserted.
    """
    if max_fanout < 2:
        raise ValueError(f"max_fanout must be >= 2, got {max_fanout}")

    inserted = 0
    # Snapshot the net list up front: buffering adds new nets that never need
    # re-buffering themselves beyond what the loop below already guarantees.
    for net in list(netlist.nets.values()):
        inserted += _buffer_net(netlist, net, max_fanout)
    return inserted


def _is_clock_load(load: Tuple[Cell, str]) -> bool:
    cell, pin = load
    return cell.spec.sequential and pin == "CLK"


def _buffer_net(netlist: Netlist, net: Net, max_fanout: int) -> int:
    """Recursively buffer one net; returns the number of buffers inserted."""
    data_loads = [load for load in net.loads if not _is_clock_load(load)]
    clock_loads = [load for load in net.loads if _is_clock_load(load)]
    if len(data_loads) <= max_fanout:
        return 0

    inserted = 0
    # Split the loads into groups, each driven by a new buffer.
    groups: List[List[Tuple[Cell, str]]] = []
    group_count = (len(data_loads) + max_fanout - 1) // max_fanout
    for g in range(group_count):
        groups.append(data_loads[g::group_count])

    new_loads: List[Tuple[Cell, str]] = list(clock_loads)
    for group in groups:
        if len(group) == 1:
            # No point in buffering a single load; keep it on the original net.
            new_loads.append(group[0])
            continue
        buffered = netlist.new_net(f"{net.name}_buf")
        buf_cell = netlist.add_cell("BUF", A=net, Y=buffered)
        inserted += 1
        # add_cell() appended (buf_cell, "A") to net.loads; remember it.
        new_loads.append((buf_cell, "A"))
        # Re-point the grouped loads at the buffered net through the
        # netlist's structural-mutation primitive, so the cached topological
        # order is invalidated and rewrite listeners see the move.
        netlist.move_loads(net, buffered, group)
        # Recurse in case a single buffer still exceeds the limit.
        inserted += _buffer_net(netlist, buffered, max_fanout)

    # Pure permutation (same load set move_loads left behind): the legacy
    # clock-loads-first, one-entry-per-group order is restored so that load
    # iteration order -- and with it the float summation order inside
    # cell_library.net_load, hence every reported delay -- stays
    # byte-identical to the pre-move_loads implementation.
    net.loads = new_loads
    # The original net now drives one pin per group, which can itself exceed
    # the fanout limit for very wide nets (e.g. an enable driving hundreds of
    # flip-flops); keep buffering until the tree is balanced.
    inserted += _buffer_net(netlist, net, max_fanout)
    return inserted
