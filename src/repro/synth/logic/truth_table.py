"""Single-output truth tables with don't-cares."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, Set

__all__ = ["TruthTable"]


@dataclass(frozen=True)
class TruthTable:
    """A single-output Boolean function of ``num_inputs`` variables.

    The function is described by its on-set (input combinations producing 1)
    and don't-care set (combinations whose output is unconstrained); every
    other combination is in the off-set.  Input combinations are encoded as
    integers with bit ``i`` holding the value of input variable ``i``.
    """

    num_inputs: int
    on_set: FrozenSet[int] = field(default_factory=frozenset)
    dc_set: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.num_inputs < 0:
            raise ValueError(f"num_inputs must be >= 0, got {self.num_inputs}")
        limit = 1 << self.num_inputs
        for name, minterms in (("on_set", self.on_set), ("dc_set", self.dc_set)):
            for m in minterms:
                if not (0 <= m < limit):
                    raise ValueError(
                        f"{name} minterm {m} out of range for {self.num_inputs} inputs"
                    )
        overlap = self.on_set & self.dc_set
        if overlap:
            raise ValueError(f"minterms in both on-set and dc-set: {sorted(overlap)[:5]}")

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_minterms(
        cls,
        num_inputs: int,
        on_set: Iterable[int],
        dc_set: Iterable[int] = (),
    ) -> "TruthTable":
        """Build a truth table from explicit minterm lists."""
        return cls(
            num_inputs=num_inputs,
            on_set=frozenset(on_set),
            dc_set=frozenset(dc_set),
        )

    @classmethod
    def from_function(
        cls, num_inputs: int, fn: Callable[[int], int]
    ) -> "TruthTable":
        """Build a truth table by evaluating ``fn`` over all input combinations.

        ``fn`` may return 0, 1, or ``None`` for don't-care.
        """
        on: Set[int] = set()
        dc: Set[int] = set()
        for minterm in range(1 << num_inputs):
            value = fn(minterm)
            if value is None:
                dc.add(minterm)
            elif value:
                on.add(minterm)
        return cls(num_inputs=num_inputs, on_set=frozenset(on), dc_set=frozenset(dc))

    # ------------------------------------------------------------ queries
    @property
    def off_set(self) -> FrozenSet[int]:
        """Input combinations forced to 0."""
        universe = set(range(1 << self.num_inputs))
        return frozenset(universe - set(self.on_set) - set(self.dc_set))

    def evaluate(self, minterm: int) -> int:
        """Value of the function for a fully-specified input combination.

        Don't-care entries evaluate to 0 (the value a minimiser may or may
        not preserve; callers that care should check membership directly).
        """
        return 1 if minterm in self.on_set else 0

    def is_constant(self) -> bool:
        """True when the cared-for outputs are all 0 or all 1."""
        care = (1 << self.num_inputs) - len(self.dc_set)
        return len(self.on_set) in (0, care)

    def complement(self) -> "TruthTable":
        """Return the complement function (don't-cares preserved)."""
        return TruthTable(
            num_inputs=self.num_inputs,
            on_set=self.off_set,
            dc_set=self.dc_set,
        )
