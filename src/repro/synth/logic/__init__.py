"""Two-level logic synthesis.

The symbolic-FSM baseline of the paper's Section 3 relies on a logic
optimiser turning state-transition tables into gates.  This package provides
that machinery:

* :class:`~repro.synth.logic.truth_table.TruthTable` -- on-set / don't-care
  description of a single-output Boolean function.
* :func:`~repro.synth.logic.minimize.minimize` -- exact Quine-McCluskey prime
  implicant generation with an essential-plus-greedy cover (falling back to a
  direct cube list for very wide functions).
* :func:`~repro.synth.logic.synthesize.sop_to_netlist` -- map a sum-of-products
  cover onto AND/OR gate trees inside a netlist.
"""

from repro.synth.logic.minimize import Implicant, MinimizationStats, minimize
from repro.synth.logic.synthesize import sop_to_netlist
from repro.synth.logic.truth_table import TruthTable

__all__ = ["TruthTable", "Implicant", "MinimizationStats", "minimize", "sop_to_netlist"]
