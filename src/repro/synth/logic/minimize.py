"""Two-level logic minimisation.

Implements the classic Quine-McCluskey procedure (prime-implicant generation
followed by essential-prime selection and a greedy cover of the remainder)
with a size guard that falls back to merging adjacent minterm pairs for very
wide functions.  This is the work a logic optimiser performs when handed the
symbolic state machine of the paper's Section 3, and it is deliberately kept
"generic": the minimiser does not recognise counters or decoders as special
structures, which is exactly why the FSM baseline scales poorly compared to
the structured shift-register solution.

The module also records effort statistics (minterms, implicant-merge
operations, primes examined) so the reproduction can report a synthesis-effort
comparison mirroring the paper's observation that FSM synthesis for N=256
took over six hours while the shift-register solution took 36 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.obs import metrics, span
from repro.synth.logic.truth_table import TruthTable

__all__ = ["Implicant", "MinimizationStats", "minimize"]

try:  # Python >= 3.10
    _popcount: Callable[[int], int] = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - exercised only on Python 3.9
    def _popcount(x: int) -> int:
        return bin(x).count("1")


@dataclass(frozen=True)
class Implicant:
    """A product term (cube) over ``num_inputs`` variables.

    ``care_mask`` has bit ``i`` set when variable ``i`` appears in the term;
    ``values`` holds the required polarity of those variables (bits outside
    the care mask are zero).  An implicant with an empty care mask is the
    constant-1 term.
    """

    values: int
    care_mask: int
    num_inputs: int

    def covers(self, minterm: int) -> bool:
        """True when this cube contains ``minterm``."""
        return (minterm & self.care_mask) == self.values

    @property
    def literal_count(self) -> int:
        """Number of literals in the product term."""
        return _popcount(self.care_mask)

    def literals(self) -> List[Tuple[int, bool]]:
        """Return ``(variable index, is_positive)`` pairs for each literal."""
        result = []
        for i in range(self.num_inputs):
            if (self.care_mask >> i) & 1:
                result.append((i, bool((self.values >> i) & 1)))
        return result

    def to_string(self) -> str:
        """Render as a cube string, LSB variable first (e.g. ``"1-0"``)."""
        chars = []
        for i in range(self.num_inputs):
            if not (self.care_mask >> i) & 1:
                chars.append("-")
            else:
                chars.append("1" if (self.values >> i) & 1 else "0")
        return "".join(chars)

    @classmethod
    def from_string(cls, cube: str) -> "Implicant":
        """Parse a cube string produced by :meth:`to_string`."""
        values = 0
        mask = 0
        for i, ch in enumerate(cube):
            if ch == "1":
                values |= 1 << i
                mask |= 1 << i
            elif ch == "0":
                mask |= 1 << i
            elif ch != "-":
                raise ValueError(f"invalid cube character {ch!r} in {cube!r}")
        return cls(values=values, care_mask=mask, num_inputs=len(cube))


@dataclass
class MinimizationStats:
    """Effort counters recorded while minimising one function."""

    minterms: int = 0
    merge_operations: int = 0
    prime_implicants: int = 0
    cover_size: int = 0
    exact: bool = True

    def __add__(self, other: "MinimizationStats") -> "MinimizationStats":
        return MinimizationStats(
            minterms=self.minterms + other.minterms,
            merge_operations=self.merge_operations + other.merge_operations,
            prime_implicants=self.prime_implicants + other.prime_implicants,
            cover_size=self.cover_size + other.cover_size,
            exact=self.exact and other.exact,
        )


def minimize(
    table: TruthTable,
    *,
    max_exact_inputs: int = 12,
) -> Tuple[List[Implicant], MinimizationStats]:
    """Return a sum-of-products cover of ``table`` and the effort statistics.

    Functions of up to ``max_exact_inputs`` variables are minimised with the
    exact Quine-McCluskey procedure; wider functions fall back to a greedy
    pairwise-merge heuristic (still correct, possibly sub-optimal), which is
    marked by ``stats.exact = False``.

    Results are memoised on the (hashable, frozen) truth table: identical
    functions recur constantly -- the same FSM evaluated at several opt
    levels or encodings, symmetric output columns within one machine -- and
    a repeat costs a dict lookup instead of a fresh minimisation.  Each call
    still returns fresh ``cover``/``stats`` objects carrying exactly the
    values a cold run would produce, so effort accounting is unchanged.

    Every call folds its :class:`MinimizationStats` into the process metrics
    registry (``qm.*`` counters) and runs under a ``qm.minimize`` span, so
    minimisation effort is attributable after the fact.
    """
    with span("qm.minimize", detail=f"{table.num_inputs} input(s)") as qm_span:
        cover, stats = _minimize_cached(table, max_exact_inputs)
        qm_span.add("merge_operations", stats.merge_operations)
        qm_span.add("prime_implicants", stats.prime_implicants)
    metrics.incr("qm.calls")
    metrics.incr("qm.minterms", stats.minterms)
    metrics.incr("qm.merge_operations", stats.merge_operations)
    metrics.incr("qm.prime_implicants", stats.prime_implicants)
    metrics.incr("qm.cover_size", stats.cover_size)
    return list(cover), replace(stats)


@lru_cache(maxsize=128)
def _minimize_cached(
    table: TruthTable, max_exact_inputs: int
) -> Tuple[Tuple[Implicant, ...], MinimizationStats]:
    stats = MinimizationStats(minterms=len(table.on_set))
    if not table.on_set:
        return (), stats
    universe = 1 << table.num_inputs
    if len(table.on_set) + len(table.dc_set) == universe:
        # Constant 1 over the care set.
        stats.cover_size = 1
        return (Implicant(values=0, care_mask=0, num_inputs=table.num_inputs),), stats

    if table.num_inputs <= max_exact_inputs:
        primes = _prime_implicants(table, stats)
        cover = _select_cover(primes, table.on_set, stats)
    else:
        stats.exact = False
        cover = _greedy_merge(table, stats)
    stats.cover_size = len(cover)
    return tuple(cover), stats


# ---------------------------------------------------------------------------
# Quine-McCluskey
# ---------------------------------------------------------------------------

def _prime_implicants(table: TruthTable, stats: MinimizationStats) -> List[Implicant]:
    """Generate all prime implicants of the on-set plus don't-cares.

    Cubes are bucketed by care mask (only cubes with the same mask can
    merge) and each bucket is a plain integer set of cube values.  A cube
    ``a`` merges with exactly the values ``a | bit`` for unset care bits
    ``bit``, so partners are found by O(width) set lookups per cube instead
    of comparing every pair of cubes of adjacent popcounts, and all the set
    bookkeeping hashes small ints rather than tuples.  The resulting prime
    set (and the merge-operation count -- one per mergeable adjacent pair)
    is identical to the classic formulation's.
    """
    n = table.num_inputs
    full_mask = (1 << n) - 1
    current: Dict[int, Set[int]] = {
        full_mask: set(table.on_set) | set(table.dc_set)
    }
    primes: Set[Tuple[int, int]] = set()

    merge_operations = 0
    while current:
        merged: Dict[int, Set[int]] = {}
        for mask, values_set in current.items():
            used: Set[int] = set()
            for a in values_set:
                free = mask & ~a
                while free:
                    bit = free & -free
                    free ^= bit
                    b = a | bit
                    if b not in values_set:
                        continue
                    # The merged cube drops ``bit`` from the care mask; its
                    # value is ``a`` itself (the partner with the bit clear).
                    merge_operations += 1
                    merged.setdefault(mask & ~bit, set()).add(a)
                    used.add(a)
                    used.add(b)
            for values in values_set - used:
                primes.add((values, mask))
        current = merged
    stats.merge_operations += merge_operations
    stats.prime_implicants = len(primes)
    return [
        Implicant(values=v, care_mask=m, num_inputs=n) for v, m in sorted(primes)
    ]


def _coverage_masks(
    primes: Sequence[Implicant],
    minterms: Sequence[int],
    bit_of: Dict[int, int],
) -> List[int]:
    """Per-prime bitset over ``minterms``: bit ``i`` set when the prime covers
    ``minterms[i]``.

    Small cubes are expanded directly (enumerating the subsets of their free
    variables and looking each minterm up), so the cost is proportional to
    the cube size rather than to ``|minterms|``; wide cubes fall back to one
    scan over the minterm list.
    """
    masks: List[int] = []
    n_minterms = len(minterms)
    for prime in primes:
        values, care = prime.values, prime.care_mask
        free_mask = ((1 << prime.num_inputs) - 1) & ~care
        coverage = 0
        if (1 << _popcount(free_mask)) <= n_minterms:
            subset = free_mask
            while True:
                bit = bit_of.get(values | subset)
                if bit is not None:
                    coverage |= 1 << bit
                if subset == 0:
                    break
                subset = (subset - 1) & free_mask
        else:
            for i, m in enumerate(minterms):
                if (m & care) == values:
                    coverage |= 1 << i
        masks.append(coverage)
    return masks


def _select_cover(
    primes: Sequence[Implicant],
    on_set: FrozenSet[int],
    stats: MinimizationStats,
) -> List[Implicant]:
    """Pick essential primes, then greedily cover the remaining minterms.

    Coverage is represented as integer bitsets (one bit per on-set minterm),
    so essential-prime detection is a single pass over the coverage masks and
    each greedy iteration is AND/popcount work instead of per-minterm
    ``covers()`` rescans.  The selected cover is element-for-element
    identical to :func:`_select_cover_reference` (the pre-bitset
    implementation, kept for the regression tests): minterms are visited in
    the same order and the greedy tie-breaking is unchanged.
    """
    minterms = list(set(on_set))
    bit_of = {m: i for i, m in enumerate(minterms)}
    masks = _coverage_masks(primes, minterms, bit_of)

    # Essential primes: sole cover of some minterm.  ``counts``/``first``
    # reproduce the reference's per-minterm covering lists without building
    # them: only the length and the head of each list were ever used.
    counts = [0] * len(minterms)
    first = [0] * len(minterms)
    for index, coverage in enumerate(masks):
        while coverage:
            low = coverage & -coverage
            coverage ^= low
            bit = low.bit_length() - 1
            if counts[bit] == 0:
                first[bit] = index
            counts[bit] += 1

    cover_indices: List[int] = []
    chosen: Set[int] = set()
    covered = 0
    for bit in range(len(minterms)):
        if counts[bit] == 1 and first[bit] not in chosen:
            chosen.add(first[bit])
            cover_indices.append(first[bit])
            covered |= masks[first[bit]]

    # Greedy set cover for what's left.
    remaining = ((1 << len(minterms)) - 1) & ~covered
    literal_counts = [p.literal_count for p in primes]
    candidates = [i for i in range(len(primes)) if i not in chosen]
    while remaining:
        best = max(
            candidates,
            key=lambda i: (_popcount(masks[i] & remaining), -literal_counts[i]),
        )
        if not masks[best] & remaining:
            # Should not happen (primes cover the whole on-set), but guard
            # against an infinite loop.
            raise RuntimeError("prime implicants do not cover the on-set")
        cover_indices.append(best)
        candidates.remove(best)
        remaining &= ~masks[best]
    return [primes[i] for i in cover_indices]


def _prime_implicants_reference(
    table: TruthTable, stats: MinimizationStats
) -> List[Implicant]:
    """Pre-bitset prime generation, kept verbatim as the test oracle.

    Groups cubes by care mask and ones-count and compares every pair of
    adjacent groups; :func:`_prime_implicants` must produce the identical
    prime list and merge-operation count.
    """
    n = table.num_inputs
    full_mask = (1 << n) - 1
    current: Set[Tuple[int, int]] = {
        (m, full_mask) for m in (set(table.on_set) | set(table.dc_set))
    }
    primes: Set[Tuple[int, int]] = set()

    while current:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        # Group cubes by care mask so only compatible cubes are compared.
        by_mask: Dict[int, List[Tuple[int, int]]] = {}
        for cube in current:
            by_mask.setdefault(cube[1], []).append(cube)
        for mask, cubes in by_mask.items():
            by_ones: Dict[int, List[int]] = {}
            for values, _ in cubes:
                by_ones.setdefault(bin(values).count("1"), []).append(values)
            for ones, group in by_ones.items():
                partners = by_ones.get(ones + 1, [])
                for a in group:
                    for b in partners:
                        diff = a ^ b
                        if bin(diff).count("1") != 1:
                            continue
                        stats.merge_operations += 1
                        new_mask = mask & ~diff
                        merged.add((a & new_mask, new_mask))
                        used.add((a, mask))
                        used.add((b, mask))
        primes |= current - used
        current = merged
    stats.prime_implicants = len(primes)
    return [
        Implicant(values=v, care_mask=m, num_inputs=n) for v, m in sorted(primes)
    ]


def _select_cover_reference(
    primes: Sequence[Implicant],
    on_set: FrozenSet[int],
    stats: MinimizationStats,
) -> List[Implicant]:
    """Pre-bitset cover selection, kept verbatim as the test oracle.

    The bitset :func:`_select_cover` must return an element-for-element
    identical cover; the regression and property tests (and the speedup
    floor benchmark) compare against this implementation.
    """
    remaining = set(on_set)
    coverage: Dict[int, List[Implicant]] = {m: [] for m in remaining}
    for prime in primes:
        for m in remaining:
            if prime.covers(m):
                coverage[m].append(prime)

    cover: List[Implicant] = []
    # Essential primes: sole cover of some minterm.
    for m, covering in coverage.items():
        if len(covering) == 1 and covering[0] not in cover:
            cover.append(covering[0])
    for prime in cover:
        remaining -= {m for m in remaining if prime.covers(m)}

    # Greedy set cover for what's left.
    candidates = [p for p in primes if p not in cover]
    while remaining:
        best = max(
            candidates,
            key=lambda p: (sum(1 for m in remaining if p.covers(m)), -p.literal_count),
        )
        gained = {m for m in remaining if best.covers(m)}
        if not gained:
            # Should not happen (primes cover the whole on-set), but guard
            # against an infinite loop.
            raise RuntimeError("prime implicants do not cover the on-set")
        cover.append(best)
        candidates.remove(best)
        remaining -= gained
    return cover


def _minimize_reference(
    table: TruthTable,
    *,
    max_exact_inputs: int = 12,
) -> Tuple[List[Implicant], MinimizationStats]:
    """:func:`minimize` with the pre-bitset cover selection (test oracle)."""
    stats = MinimizationStats(minterms=len(table.on_set))
    if not table.on_set:
        return [], stats
    universe = 1 << table.num_inputs
    if len(table.on_set) + len(table.dc_set) == universe:
        stats.cover_size = 1
        return [Implicant(values=0, care_mask=0, num_inputs=table.num_inputs)], stats
    if table.num_inputs <= max_exact_inputs:
        primes = _prime_implicants_reference(table, stats)
        cover = _select_cover_reference(primes, table.on_set, stats)
    else:
        stats.exact = False
        cover = _greedy_merge(table, stats)
    stats.cover_size = len(cover)
    return cover, stats


# ---------------------------------------------------------------------------
# Heuristic fallback for wide functions
# ---------------------------------------------------------------------------

def _greedy_merge(table: TruthTable, stats: MinimizationStats) -> List[Implicant]:
    """Greedy pairwise merging of minterms into wider cubes.

    Repeatedly expands each on-set cube one variable at a time as long as the
    expansion stays inside the on-set plus don't-care set.  Produces a valid
    (if not necessarily minimal) cover in time roughly linear in the number
    of minterms times the number of inputs.
    """
    n = table.num_inputs
    allowed = set(table.on_set) | set(table.dc_set)
    covered: Set[int] = set()
    cover: List[Implicant] = []
    for minterm in sorted(table.on_set):
        if minterm in covered:
            continue
        values, mask = minterm, (1 << n) - 1
        for bit in range(n):
            candidate_mask = mask & ~(1 << bit)
            candidate_values = values & candidate_mask
            if _cube_inside(candidate_values, candidate_mask, n, allowed):
                values, mask = candidate_values, candidate_mask
                stats.merge_operations += 1
        cube = Implicant(values=values, care_mask=mask, num_inputs=n)
        cover.append(cube)
        covered |= {m for m in table.on_set if cube.covers(m)}
    stats.prime_implicants = len(cover)
    return cover


def _cube_inside(values: int, mask: int, num_inputs: int, allowed: Set[int]) -> bool:
    """Check whether every minterm of the cube lies in ``allowed``.

    The free variables of the cube are enumerated; cubes wider than 2^20
    minterms are rejected outright to bound the work.
    """
    free_bits = [i for i in range(num_inputs) if not (mask >> i) & 1]
    if len(free_bits) > 20:
        return False
    for combo in range(1 << len(free_bits)):
        minterm = values
        for j, bit in enumerate(free_bits):
            if (combo >> j) & 1:
                minterm |= 1 << bit
        if minterm not in allowed:
            return False
    return True
