"""Sum-of-products to netlist mapping.

Turns a minimised cover (a list of :class:`~repro.synth.logic.minimize.Implicant`)
into AND/OR gate trees inside an existing netlist.  Literal inverters are
shared across product terms, matching what a technology mapper would do.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hdl.components.gates import build_and_tree, build_or_tree
from repro.hdl.netlist import Net, Netlist, NetlistError
from repro.synth.logic.minimize import Implicant

__all__ = ["sop_to_netlist"]


def sop_to_netlist(
    netlist: Netlist,
    cover: Sequence[Implicant],
    inputs: Sequence[Net],
    *,
    prefix: str = "sop",
    inverter_cache: Dict[str, Net] = None,
) -> Net:
    """Instantiate the sum-of-products ``cover`` over ``inputs``.

    Parameters
    ----------
    cover:
        Product terms; an empty cover yields constant 0, and a cover
        containing the universal cube yields constant 1.
    inputs:
        Input nets; ``inputs[i]`` corresponds to truth-table variable ``i``.
    inverter_cache:
        Optional dict shared across calls so each input is inverted at most
        once even when several outputs are synthesised over the same inputs.

    Returns
    -------
    Net
        The net carrying the function's output.
    """
    if not cover:
        return netlist.const(0)
    if inverter_cache is None:
        inverter_cache = {}

    product_nets: List[Net] = []
    for index, cube in enumerate(cover):
        if cube.num_inputs != len(inputs):
            raise NetlistError(
                f"cube width {cube.num_inputs} does not match {len(inputs)} inputs"
            )
        literal_nets: List[Net] = []
        for var, positive in cube.literals():
            if positive:
                literal_nets.append(inputs[var])
            else:
                key = inputs[var].name
                if key not in inverter_cache:
                    inverted = netlist.new_net(f"{prefix}_inv{var}_")
                    netlist.add_cell("INV", A=inputs[var], Y=inverted)
                    inverter_cache[key] = inverted
                literal_nets.append(inverter_cache[key])
        if not literal_nets:
            # Universal cube: the function is constant 1.
            return netlist.const(1)
        product_nets.append(
            build_and_tree(netlist, literal_nets, prefix=f"{prefix}_p{index}")
        )
    return build_or_tree(netlist, product_nets, prefix=f"{prefix}_or")
