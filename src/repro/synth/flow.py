"""Top-level synthesis flow.

``run_synthesis_flow`` is the stand-in for "synthesise this design with
Design Compiler and read area/delay off the report": it validates the
netlist, optionally runs logic optimization (``spec.opt_level``), inserts
buffer trees on high-fanout nets, and runs static timing analysis and area
accounting against the chosen standard-cell library.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.flow import FlowSpec, resolve_spec
from repro.hdl.netlist import Netlist
from repro.obs import phase, tracing_enabled
from repro.synth.area import area_report
from repro.synth.buffering import insert_buffer_trees
from repro.synth.opt import optimize_netlist
from repro.synth.report import SynthesisResult
from repro.synth.timing import timing_report

__all__ = ["run_synthesis_flow"]


def run_synthesis_flow(
    netlist: Netlist,
    *,
    spec: Optional[FlowSpec] = None,
    library=None,
    max_fanout: Optional[int] = None,
    opt_level: Optional[int] = None,
    name: Optional[str] = None,
    metadata: Optional[Dict[str, object]] = None,
    lint_context: Optional[Dict[str, object]] = None,
) -> SynthesisResult:
    """Optimize, buffer, time and measure ``netlist``; return a :class:`SynthesisResult`.

    Parameters
    ----------
    netlist:
        The design to evaluate.  Optimization and buffer insertion run on a
        private clone (the synthesis tool's working copy), so the caller's
        netlist is left untouched and can be re-synthesised -- under another
        library or opt level, say -- without accumulating rewrites.
    spec:
        The flow configuration (:class:`repro.flow.FlowSpec`); defaults to
        an all-defaults spec.  ``spec.library`` picks the standard-cell
        characterisation, ``spec.max_fanout`` the buffering threshold and
        ``spec.opt_level`` the logic-optimization effort (0 reports on the
        raw generated netlist, exactly as before optimization existed; 1
        runs the full :mod:`repro.synth.opt` pipeline before buffering and
        timing, the way a real synthesis tool always would).
    library, max_fanout, opt_level:
        Deprecated loose-keyword forms of the corresponding spec fields.
    name:
        Report name; defaults to the netlist name.
    metadata:
        Extra key/value pairs propagated into the result.
    lint_context:
        Extra inputs for the design-rule checker when ``spec.lint`` is set
        (generators pass ``{"fsm": <FiniteStateMachine>}`` so reachability
        can be checked).  Ignored when linting is off.
    """
    spec = resolve_spec(
        spec,
        caller="run_synthesis_flow",
        library=library,
        max_fanout=max_fanout,
        opt_level=opt_level,
    )
    cell_library = spec.resolve_library()
    # Per-stage profiling rides the tracing switch: every stage always runs
    # under a (free when disabled) span, and the wall-clock breakdown is
    # collected only when tracing is on.
    timings: Optional[Dict[str, float]] = {} if tracing_enabled() else None
    with phase("flow.validate", timings):
        netlist.validate()
        working_copy = netlist.clone()
    opt_report = None
    if spec.opt_level:
        with phase("flow.opt", timings):
            opt_report = optimize_netlist(working_copy, opt_level=spec.opt_level)
            # Cheap invariant check: optimization must hand buffering/timing
            # a structurally sound netlist or every figure downstream is
            # garbage.
            working_copy.validate()
    with phase("flow.buffer", timings):
        buffers = insert_buffer_trees(working_copy, max_fanout=spec.max_fanout)
    with phase("flow.timing", timings):
        timing = timing_report(working_copy, cell_library)
    with phase("flow.area", timings):
        area = area_report(working_copy, cell_library)
    # Lint is a pure diagnostic over the measured netlist: default-off, and
    # when off the cost is one falsy attribute test (floor-tested), so every
    # pre-existing flow is bit-identical in output *and* time.
    lint_report = None
    if spec.lint:
        from repro.lint.design import lint_netlist, rules_for_level

        with phase("flow.lint", timings):
            lint_report = lint_netlist(
                working_copy,
                library=cell_library,
                max_fanout=spec.max_fanout,
                fsm=(lint_context or {}).get("fsm"),
                rules=rules_for_level(spec.lint),
            )
    # Verification shares the lint contract: a default-off diagnostic that
    # proves (SAT-based CEC) the measured netlist still implements the
    # caller's netlist, without perturbing any measured figure.
    verify_report = None
    if spec.verify:
        from repro.verify.cec import check_equivalence

        with phase("flow.verify", timings):
            verify_report = check_equivalence(netlist, working_copy)
    return SynthesisResult(
        name=name or netlist.name,
        area=area,
        timing=timing,
        buffers_inserted=buffers,
        netlist=working_copy,
        opt_report=opt_report,
        lint_report=lint_report,
        verify_report=verify_report,
        metadata=dict(metadata or {}),
        stage_timings=timings or {},
    )
