"""Synthesis result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hdl.netlist import Netlist
from repro.lint.core import LintReport
from repro.synth.area import AreaReport
from repro.synth.opt import OptReport
from repro.synth.timing import TimingReport
from repro.verify.cec import CecResult

__all__ = ["SynthesisResult"]


@dataclass
class SynthesisResult:
    """Area/delay result for one synthesised design.

    This is the unit of comparison everywhere in the reproduction: every
    paper figure or table row reduces to comparing ``delay_ns`` and
    ``area_cells`` of two or more :class:`SynthesisResult` objects.

    Attributes
    ----------
    name:
        Design name (for example ``"srag_read_64x64"``).
    area:
        Detailed area report.
    timing:
        Detailed timing report.
    buffers_inserted:
        Number of buffers added by high-fanout buffering.
    netlist:
        The synthesis tool's working copy -- the optimized and buffered
        clone the area and timing numbers were measured on.  Downstream
        analyses (the power study) must run on this netlist so all metrics
        in one result describe the same structure.
    opt_report:
        Per-pass logic-optimization statistics (``None`` when the flow ran
        at ``opt_level=0``).
    lint_report:
        Design-rule findings over ``netlist`` (``None`` unless the flow ran
        with ``spec.lint`` set).  Like ``stage_timings``, purely diagnostic:
        never serialised into cached records.
    verify_report:
        Formal equivalence verdict of ``netlist`` against the pre-flow
        netlist (``None`` unless the flow ran with ``spec.verify`` set).
        Same diagnostic contract as ``lint_report``: never serialised into
        cached records.
    metadata:
        Free-form extra data (sequence length, array shape, generator style,
        mapping parameters) recorded by the experiment harnesses.
    stage_timings:
        Flow-profiling breakdown: stage name (``flow.elaborate``,
        ``flow.opt``, ``flow.timing``, ...) to wall seconds.  Populated only
        while tracing is enabled (:mod:`repro.obs`); empty otherwise.
    """

    name: str
    area: AreaReport
    timing: TimingReport
    buffers_inserted: int = 0
    netlist: Optional[Netlist] = None
    opt_report: Optional[OptReport] = None
    lint_report: Optional[LintReport] = None
    verify_report: Optional[CecResult] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    stage_timings: Dict[str, float] = field(default_factory=dict)

    @property
    def delay_ns(self) -> float:
        """Critical-path delay in nanoseconds."""
        return self.timing.critical_path_delay

    @property
    def area_cells(self) -> float:
        """Total area in cell units."""
        return self.area.total

    def summary(self) -> str:
        """One-line summary used by the benchmark harnesses."""
        return (
            f"{self.name:<28} delay = {self.delay_ns:6.3f} ns   "
            f"area = {self.area_cells:10.1f} cell units   "
            f"FFs = {self.area.flip_flop_count}"
        )
