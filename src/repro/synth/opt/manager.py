"""Pass pipeline orchestration and the ``opt_level`` policy.

The :class:`PassManager` runs an ordered list of passes round-robin until a
full round leaves the netlist unchanged (passes enable each other: constant
folding creates wire-throughs that sharing then merges, sharing strands
cells that dead-cell elimination then removes).  ``opt_level`` is the
knob the synthesis flow, the campaign engine and the CLI all thread
through: level 0 is the identity (and the default everywhere, so existing
cache keys and figures are untouched), level 1 and above run the full
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.hdl.netlist import Netlist
from repro.obs import metrics, span
from repro.synth.opt.passes import (
    BufferCollapsePass,
    ConstantFoldPass,
    DeadCellPass,
    InvPairPass,
    PassStats,
    SharePass,
)

__all__ = [
    "DEFAULT_MAX_ROUNDS",
    "OptReport",
    "PassManager",
    "optimize_netlist",
    "passes_for_level",
]

#: Upper bound on pipeline rounds; real netlists converge in 2-3 rounds and
#: every pass is individually monotone (cells only disappear), so this is a
#: safety net against a pass bug, not a tuning knob.
DEFAULT_MAX_ROUNDS = 16


@dataclass
class OptReport:
    """Aggregate outcome of one optimization run.

    ``passes`` holds one accumulated :class:`PassStats` per pipeline pass in
    pipeline order; ``cells_removed`` is the *net* reduction, so
    ``cells_removed + final_cells == original_cells`` always holds (passes
    that add helper cells, e.g. tie sources, are accounted for).
    """

    original_cells: int
    final_cells: int = 0
    rounds: int = 0
    passes: List[PassStats] = field(default_factory=list)

    @property
    def cells_removed(self) -> int:
        """Net number of cells the pipeline eliminated."""
        return self.original_cells - self.final_cells

    @property
    def changed(self) -> bool:
        """True when any pass modified the netlist."""
        return any(stats.changed for stats in self.passes)

    def describe(self) -> str:
        """Multi-line per-pass summary."""
        lines = [
            f"logic optimization: {self.original_cells} -> {self.final_cells} cells "
            f"(-{self.cells_removed}) in {self.rounds} round(s)"
        ]
        for stats in self.passes:
            detail = f"removed {stats.removed}"
            if stats.added:
                detail += f", added {stats.added}"
            if stats.merged:
                detail += f", merged {stats.merged}"
            lines.append(
                f"  {stats.name:<12} {detail} ({stats.iterations} sweep(s))"
            )
        return "\n".join(lines)


class PassManager:
    """Run an ordered pass pipeline to fixpoint over a netlist."""

    def __init__(self, passes: Sequence[object], *,
                 max_rounds: int = DEFAULT_MAX_ROUNDS):
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.passes = list(passes)
        self.max_rounds = max_rounds

    def run(self, netlist: Netlist) -> OptReport:
        """Optimize ``netlist`` in place and return the per-pass report."""
        report = OptReport(original_cells=len(netlist.cells))
        aggregate = [PassStats(p.name) for p in self.passes]
        with span("opt.pipeline", detail=netlist.name) as pipeline_span:
            for _ in range(self.max_rounds):
                round_changed = False
                for opt_pass, total in zip(self.passes, aggregate):
                    with span(f"opt.{opt_pass.name}"):
                        stats = opt_pass.run(netlist)
                    total.absorb(stats)
                    round_changed = round_changed or stats.changed
                report.rounds += 1
                if not round_changed:
                    break
            report.passes = aggregate
            report.final_cells = len(netlist.cells)
            pipeline_span.add("rounds", report.rounds)
            pipeline_span.add("cells_removed", report.cells_removed)
        # Per-pass PassStats fold into the metrics registry once per run
        # (aggregate, never per-sweep), so campaign-wide optimization effort
        # is visible without touching the hot inner loops.
        metrics.incr("opt.runs")
        metrics.incr("opt.rounds", report.rounds)
        metrics.incr("opt.cells_removed", report.cells_removed)
        for stats in aggregate:
            metrics.incr(f"opt.pass.{stats.name}.removed", stats.removed)
            metrics.incr(f"opt.pass.{stats.name}.iterations", stats.iterations)
        return report


def passes_for_level(opt_level: int) -> List[object]:
    """The pass pipeline ``opt_level`` selects (empty for level 0).

    Order matters: constant folding first (it creates wire-throughs and
    inverters), then sharing (decoder subtree merging), then the chain
    collapses, and dead-cell elimination last to sweep whatever the earlier
    passes stranded.
    """
    if opt_level < 0:
        raise ValueError(f"opt_level must be >= 0, got {opt_level}")
    if opt_level == 0:
        return []
    return [
        ConstantFoldPass(),
        SharePass(),
        InvPairPass(),
        BufferCollapsePass(),
        DeadCellPass(),
    ]


def optimize_netlist(
    netlist: Netlist,
    *,
    opt_level: int = 1,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    passes: Optional[Sequence[object]] = None,
) -> OptReport:
    """Optimize ``netlist`` in place at ``opt_level``; return the report.

    ``passes`` overrides the level-selected pipeline (useful for testing a
    single pass in isolation).  At level 0 (with no override) the netlist is
    untouched and the report shows zero rounds.
    """
    chosen = list(passes) if passes is not None else passes_for_level(opt_level)
    if not chosen:
        size = len(netlist.cells)
        return OptReport(original_cells=size, final_cells=size, rounds=0)
    return PassManager(chosen, max_rounds=max_rounds).run(netlist)
