"""Netlist logic optimization.

A real synthesis flow (the paper's numbers come out of Design Compiler)
always runs logic optimization between elaboration and reporting, so raw
generated netlists -- especially the decoder-heavy CntAG points, whose AND
trees share subterms and whose counters tie enables to constants -- carry
dead and duplicated logic that no reported figure should include.  This
package is that stage for the reproduction: a :class:`PassManager` running
an ordered pipeline of equivalence-preserving rewrites over a
:class:`~repro.hdl.netlist.Netlist`:

* :class:`ConstantFoldPass` -- constant propagation and tie-cell folding
  (cells with controlling constant inputs become ties, wires or inverters);
* :class:`SharePass` -- structural common-subexpression sharing (identical
  cell type + input nets collapse to one cell, with commutative inputs
  canonicalised);
* :class:`InvPairPass` -- back-to-back inverter collapsing;
* :class:`BufferCollapsePass` -- buffer(-chain) removal (high-fanout
  buffering is re-inserted *after* optimization by the synthesis flow);
* :class:`DeadCellPass` -- mark-and-sweep removal of cells that cannot
  reach a top-level output.

Every pass preserves cycle-accurate behaviour at the output ports: the
optimized netlist produces a bit-identical address stream on both the
reference and the compiled simulator (pinned by ``tests/test_synth_opt.py``
for every built-in workload x applicable style).
"""

from repro.synth.opt.manager import (
    DEFAULT_MAX_ROUNDS,
    OptReport,
    PassManager,
    optimize_netlist,
    passes_for_level,
)
from repro.synth.opt.passes import (
    BufferCollapsePass,
    ConstantFoldPass,
    DeadCellPass,
    InvPairPass,
    PassStats,
    SharePass,
)

__all__ = [
    "BufferCollapsePass",
    "ConstantFoldPass",
    "DEFAULT_MAX_ROUNDS",
    "DeadCellPass",
    "InvPairPass",
    "OptReport",
    "PassManager",
    "PassStats",
    "SharePass",
    "optimize_netlist",
    "passes_for_level",
]
