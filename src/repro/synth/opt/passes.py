"""Individual logic-optimization passes.

Each pass is a small equivalence-preserving rewrite over a
:class:`~repro.hdl.netlist.Netlist` built from three primitives the netlist
itself provides: :meth:`~repro.hdl.netlist.Netlist.replace_net` (re-point
loads and output-port aliases at an equivalent net),
:meth:`~repro.hdl.netlist.Netlist.remove_cell` and
:meth:`~repro.hdl.netlist.Netlist.prune_dangling_nets`.  A pass runs to its
own fixpoint and returns a :class:`PassStats`; the
:class:`~repro.synth.opt.manager.PassManager` iterates the whole pipeline
until a full round changes nothing.

Soundness notes
---------------

* Both simulators initialise every net and every flip-flop to 0, so a flop
  whose next-state function is identically 0 under its constant inputs is a
  constant-0 net, and two flops of the same type with identical input nets
  hold identical state on every cycle.  Both facts are exploited below and
  pinned by the equivalence suite.
* Rewrites only ever touch cell output nets: top-level input nets are never
  replaced, and output-port aliases are moved (never dropped), so the port
  interface of the netlist is exactly preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.hdl.netlist import Cell, Net, Netlist

__all__ = [
    "BufferCollapsePass",
    "ConstantFoldPass",
    "DeadCellPass",
    "InvPairPass",
    "PassStats",
    "SharePass",
]


@dataclass
class PassStats:
    """What one pass did to the netlist.

    Attributes
    ----------
    name:
        Pass name (stable identifier used in reports).
    removed:
        Cell instances deleted.
    added:
        Cell instances created (tie sources, NAND-to-INV rewrites), so
        ``original + added - removed == remaining`` always holds.
    merged:
        Duplicate cells folded into a surviving equivalent (a subset of
        ``removed``).
    iterations:
        Sweeps the pass needed to reach its local fixpoint.
    """

    name: str
    removed: int = 0
    added: int = 0
    merged: int = 0
    iterations: int = 0

    @property
    def changed(self) -> bool:
        """True when the pass modified the netlist."""
        return bool(self.removed or self.added)

    def absorb(self, other: "PassStats") -> None:
        """Accumulate another run of the same pass into this record."""
        self.removed += other.removed
        self.added += other.added
        self.merged += other.merged
        self.iterations += other.iterations


# ---------------------------------------------------------------------------
# Constant propagation / tie-cell folding
# ---------------------------------------------------------------------------

#: Bounded partial evaluation: cells with more than this many distinct
#: non-constant input nets are left alone (every primitive has <= 4 inputs,
#: so only fully-free 4-input gates are skipped).
_MAX_FREE_NETS = 3


class ConstantFoldPass:
    """Propagate TIE0/TIE1 values and fold cells they make redundant.

    For every combinational cell the pass partially evaluates the cell's
    functional model over its non-constant inputs (at most ``2**3``
    evaluations).  Cells whose output is constant become ties, cells whose
    output equals one free input become wires, and cells whose output is
    the complement of one free input become inverters (e.g. a NAND2 with a
    tied-high input).  Flip-flops whose next state is identically 0 under
    their constant inputs (a DFF fed from TIE0, say) are constant-0 nets,
    because every flop starts in state 0.

    The first sweep analyses every cell; later sweeps only revisit the
    dirty worklist seeded by the netlist's rewrite hooks -- a cell can only
    become foldable when one of its input pins was re-pointed (or it was
    just created), so restricting the re-analysis to those cells loses
    nothing and the sweep order (topological, then flops) is unchanged.
    """

    name = "const_fold"

    def run(self, netlist: Netlist) -> PassStats:
        stats = PassStats(self.name)
        const_of: Dict[int, int] = {}
        tie_nets: Dict[int, Net] = {}
        for cell in netlist.cells.values():
            if cell.cell_type in ("TIE0", "TIE1"):
                value = 1 if cell.cell_type == "TIE1" else 0
                const_of[id(cell.pins["Y"])] = value
                tie_nets.setdefault(value, cell.pins["Y"])

        dirty: Set[str] = set()

        def listener(event: str, *payload) -> None:
            if event == "replace_net":
                for cell, _pin in payload[2]:
                    dirty.add(cell.name)
            elif event == "add_cell":
                dirty.add(payload[0].name)

        unsubscribe = netlist.add_rewrite_listener(listener)
        try:
            scope: Optional[Set[str]] = None  # None: first sweep visits all
            while True:
                stats.iterations += 1
                dirty.clear()
                changed = False
                for cell in netlist.topological_combinational_order():
                    if scope is not None and cell.name not in scope:
                        continue
                    if not netlist.has_cell(cell.name):
                        continue  # removed earlier in this sweep
                    if self._fold_comb(netlist, cell, const_of, tie_nets, stats):
                        changed = True
                for cell in netlist.sequential_cells():
                    if scope is not None and cell.name not in scope:
                        continue
                    if self._fold_flop(netlist, cell, const_of, tie_nets, stats):
                        changed = True
                netlist.prune_dangling_nets()
                if not changed:
                    break
                scope = set(dirty)
        finally:
            unsubscribe()
        return stats

    # ------------------------------------------------------------- internals
    @staticmethod
    def _tie_net(netlist: Netlist, value: int, const_of: Dict[int, int],
                 tie_nets: Dict[int, Net], stats: PassStats) -> Net:
        """Return a net carrying ``value``, creating one tie source on demand."""
        net = tie_nets.get(value)
        if net is not None:
            return net
        net = netlist.new_net("opt_tie")
        netlist.add_cell("TIE1" if value else "TIE0", Y=net)
        stats.added += 1
        const_of[id(net)] = value
        tie_nets[value] = net
        return net

    @staticmethod
    def _analyse(cell: Cell, const_of: Dict[int, int],
                 sequential: bool) -> Optional[Tuple[str, object]]:
        """Classify a cell's output under its constant inputs.

        Returns ``("const", value)``, ``("wire", net)``, ``("inv", net)`` or
        ``None``.  For flip-flops the next-state function is evaluated with
        the current state pinned to 0 (the reset state both simulators start
        from), so only the ``("const", 0)`` outcome is sound and reported.
        """
        spec = cell.spec
        out_pin = spec.outputs[0]
        pin_net = {p: cell.pins[p] for p in spec.inputs}
        free_nets: List[Net] = []
        for pin in spec.inputs:
            if sequential and pin == "CLK":
                continue  # functionally ignored by every flop model
            net = pin_net[pin]
            if id(net) in const_of:
                continue
            if not any(net is seen for seen in free_nets):
                free_nets.append(net)
        if len(free_nets) > _MAX_FREE_NETS:
            return None
        slot = {id(net): i for i, net in enumerate(free_nets)}
        outputs: List[int] = []
        for combo in range(1 << len(free_nets)):
            pins = {}
            for pin in spec.inputs:
                net = pin_net[pin]
                if sequential and pin == "CLK":
                    pins[pin] = 0
                elif id(net) in const_of:
                    pins[pin] = const_of[id(net)]
                else:
                    pins[pin] = (combo >> slot[id(net)]) & 1
            if sequential:
                pins["Q"] = 0
            outputs.append(1 if spec.eval_fn(pins)[out_pin] else 0)
        if all(v == outputs[0] for v in outputs):
            return ("const", outputs[0])
        if sequential:
            return None
        for i, net in enumerate(free_nets):
            bits = [(combo >> i) & 1 for combo in range(len(outputs))]
            if outputs == bits:
                return ("wire", net)
            if outputs == [1 - b for b in bits]:
                return ("inv", net)
        return None

    def _fold_comb(self, netlist: Netlist, cell: Cell,
                   const_of: Dict[int, int], tie_nets: Dict[int, Net],
                   stats: PassStats) -> bool:
        # Ties are the constant sources; buffers trivially wire-fold, but
        # that rewrite belongs to BufferCollapsePass so per-pass stats say
        # where buffer removal actually happens.
        if cell.cell_type in ("TIE0", "TIE1", "BUF") or len(cell.spec.outputs) != 1:
            return False
        verdict = self._analyse(cell, const_of, sequential=False)
        if verdict is None:
            return False
        kind, payload = verdict
        out_net = cell.pins[cell.spec.outputs[0]]
        if kind == "const":
            target = self._tie_net(netlist, payload, const_of, tie_nets, stats)
            if target is out_net:
                return False  # the canonical tie itself feeds through here
            netlist.replace_net(out_net, target)
            netlist.remove_cell(cell.name)
            stats.removed += 1
            return True
        if kind == "wire":
            netlist.replace_net(out_net, payload)
            netlist.remove_cell(cell.name)
            stats.removed += 1
            return True
        # kind == "inv": rewrite the gate as a plain inverter, keeping the
        # output net so downstream pins are untouched.  An INV already is
        # the complement of its input; rewriting it would loop forever.
        if cell.cell_type == "INV":
            return False
        netlist.remove_cell(cell.name)
        netlist.add_cell("INV", A=payload, Y=out_net)
        stats.removed += 1
        stats.added += 1
        return True

    def _fold_flop(self, netlist: Netlist, cell: Cell,
                   const_of: Dict[int, int], tie_nets: Dict[int, Net],
                   stats: PassStats) -> bool:
        verdict = self._analyse(cell, const_of, sequential=True)
        if verdict != ("const", 0):
            return False
        out_net = cell.pins[cell.spec.outputs[0]]
        target = self._tie_net(netlist, 0, const_of, tie_nets, stats)
        netlist.replace_net(out_net, target)
        netlist.remove_cell(cell.name)
        stats.removed += 1
        return True


# ---------------------------------------------------------------------------
# Structural common-subexpression sharing
# ---------------------------------------------------------------------------

#: Cell types whose inputs are fully interchangeable.
_COMMUTATIVE = frozenset(
    ["AND2", "AND3", "AND4", "NAND2", "NAND3", "NAND4",
     "OR2", "OR3", "OR4", "NOR2", "NOR3", "NOR4", "XOR2", "XNOR2"]
)

#: Cell types where only the (A, B) pair commutes.
_AB_COMMUTATIVE = frozenset(["AOI21", "OAI21"])


def _signature(cell: Cell) -> Tuple[str, tuple]:
    """Canonical (type, inputs) key: equal signatures compute equal outputs."""
    names = tuple(cell.pins[p].name for p in cell.spec.inputs)
    if cell.cell_type in _COMMUTATIVE:
        return (cell.cell_type, tuple(sorted(names)))
    if cell.cell_type in _AB_COMMUTATIVE:
        a, b, c = names
        return (cell.cell_type, (*sorted((a, b)), c))
    return (cell.cell_type, names)


class SharePass:
    """Merge structurally identical cells (same type, same input nets).

    Inputs of commutative gates are canonicalised by sorting, so
    ``AND2(a, b)`` and ``AND2(b, a)`` share.  Flip-flops participate too:
    two flops of the same type with identical input nets hold identical
    state on every cycle (both start at 0), so one can drive all loads.
    The decoder AND trees are the big winner -- every pair of output lines
    shares its common prefix terms after this pass.
    """

    name = "share"

    def run(self, netlist: Netlist) -> PassStats:
        stats = PassStats(self.name)
        # Signatures only change when a cell's input pins are re-pointed, so
        # they are cached per cell and invalidated through the netlist's
        # rewrite hooks; each sweep then costs one dict pass over the cells
        # instead of recanonicalising every cell's pin tuple.
        sig_cache: Dict[str, Tuple[str, tuple]] = {}

        def listener(event: str, *payload) -> None:
            if event == "replace_net":
                for cell, _pin in payload[2]:
                    sig_cache.pop(cell.name, None)
            elif event == "remove_cell":
                sig_cache.pop(payload[0].name, None)

        unsubscribe = netlist.add_rewrite_listener(listener)
        try:
            changed = True
            while changed:
                changed = False
                stats.iterations += 1
                keeper_for: Dict[Tuple[str, tuple], Cell] = {}
                for cell in list(netlist.cells.values()):
                    if not netlist.has_cell(cell.name):
                        continue
                    key = sig_cache.get(cell.name)
                    if key is None:
                        key = _signature(cell)
                        sig_cache[cell.name] = key
                    keeper = keeper_for.get(key)
                    if keeper is None:
                        keeper_for[key] = cell
                        continue
                    for pin in cell.spec.outputs:
                        netlist.replace_net(cell.pins[pin], keeper.pins[pin])
                    netlist.remove_cell(cell.name)
                    stats.removed += 1
                    stats.merged += 1
                    changed = True
                netlist.prune_dangling_nets()
        finally:
            unsubscribe()
        return stats


# ---------------------------------------------------------------------------
# Inverter-pair and buffer-chain collapsing
# ---------------------------------------------------------------------------

class InvPairPass:
    """Collapse INV->INV chains: the second inverter's output is the first's input.

    A cell only becomes collapsible when its ``A`` pin is re-pointed at an
    inverter output, so sweeps after the first one revisit just the dirty
    worklist seeded by the netlist's rewrite hooks.
    """

    name = "inv_pairs"

    def run(self, netlist: Netlist) -> PassStats:
        stats = PassStats(self.name)
        dirty: Set[str] = set()

        def listener(event: str, *payload) -> None:
            if event == "replace_net":
                for cell, _pin in payload[2]:
                    dirty.add(cell.name)

        unsubscribe = netlist.add_rewrite_listener(listener)
        try:
            scope: Optional[Set[str]] = None  # None: first sweep visits all
            while True:
                stats.iterations += 1
                dirty.clear()
                changed = False
                for cell in list(netlist.cells.values()):
                    if scope is not None and cell.name not in scope:
                        continue
                    if cell.cell_type != "INV" or not netlist.has_cell(cell.name):
                        continue
                    driver = cell.pins["A"].driver
                    if driver is None or driver[0].cell_type != "INV":
                        continue
                    netlist.replace_net(cell.pins["Y"], driver[0].pins["A"])
                    netlist.remove_cell(cell.name)
                    stats.removed += 1
                    changed = True
                netlist.prune_dangling_nets()
                if not changed:
                    break
                scope = set(dirty)
        finally:
            unsubscribe()
        return stats


class BufferCollapsePass:
    """Remove BUF cells by wiring their loads straight to their inputs.

    Buffer *trees* for high-fanout nets are a physical necessity, but they
    are re-inserted by the synthesis flow after optimization; any buffer
    present before that stage is pure area.
    """

    name = "buffers"

    def run(self, netlist: Netlist) -> PassStats:
        stats = PassStats(self.name)
        stats.iterations = 1
        for cell in list(netlist.cells.values()):
            if cell.cell_type != "BUF" or not netlist.has_cell(cell.name):
                continue
            netlist.replace_net(cell.pins["Y"], cell.pins["A"])
            netlist.remove_cell(cell.name)
            stats.removed += 1
        netlist.prune_dangling_nets()
        return stats


# ---------------------------------------------------------------------------
# Dead- and unreachable-cell elimination
# ---------------------------------------------------------------------------

class DeadCellPass:
    """Mark-and-sweep: delete every cell that cannot reach an output port.

    Liveness starts at the nets aliased by top-level output ports and walks
    backwards through cell inputs (flip-flops included, so a live flop keeps
    its feedback cone alive).  Everything unmarked -- including whole dead
    registers and the cones that only fed them -- is removed, and dangling
    nets are pruned.
    """

    name = "dead_cells"

    def run(self, netlist: Netlist) -> PassStats:
        stats = PassStats(self.name)
        stats.iterations = 1
        live_cells: set = set()
        worklist: List[Net] = list(netlist.outputs.values())
        seen = {id(net) for net in worklist}
        while worklist:
            net = worklist.pop()
            if net.driver is None:
                continue
            cell = net.driver[0]
            if cell.name in live_cells:
                continue
            live_cells.add(cell.name)
            for upstream in cell.input_nets().values():
                if id(upstream) not in seen:
                    seen.add(id(upstream))
                    worklist.append(upstream)
        for cell in list(netlist.cells.values()):
            if cell.name not in live_cells:
                netlist.remove_cell(cell.name)
                stats.removed += 1
        netlist.prune_dangling_nets()
        return stats
