"""Static timing analysis.

Computes the critical path of a netlist under the logical-effort delay model
of :mod:`repro.synth.cell_library`.  The reported quantity matches what the
paper reports for its address generators: the worst register-to-register or
register-to-output path *excluding* the memory cell array (the paper
explicitly excludes array access time from all delay figures).

Path model
----------
* Primary inputs arrive at time 0.
* A flip-flop output becomes valid ``clk_to_q`` plus a load-dependent term
  after the clock edge.
* A combinational cell's output becomes valid when its latest input is valid
  plus the cell's logical-effort delay into its actual load (the sum of the
  input capacitances of its fanout pins plus a per-fanout wire capacitance).
* Endpoints are flip-flop data/enable/reset pins (which add the setup time)
  and primary outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hdl.netlist import Cell, Netlist
from repro.synth.cell_library import CellLibrary, STD018, net_load

__all__ = ["PathSegment", "TimingReport", "timing_report"]


@dataclass(frozen=True)
class PathSegment:
    """One cell traversal on a timing path."""

    cell_name: str
    cell_type: str
    output_net: str
    delay: float
    arrival: float


@dataclass
class TimingReport:
    """Result of static timing analysis on one netlist.

    Attributes
    ----------
    critical_path_delay:
        Worst endpoint arrival time in nanoseconds (including flip-flop setup
        at register endpoints).
    critical_path:
        Cell-by-cell breakdown of the worst path, source first.
    endpoint:
        Human-readable description of the worst endpoint.
    arrival_times:
        Final arrival time of every net, by net name.
    """

    critical_path_delay: float
    critical_path: List[PathSegment] = field(default_factory=list)
    endpoint: str = ""
    arrival_times: Dict[str, float] = field(default_factory=dict)

    @property
    def levels(self) -> int:
        """Number of cells on the critical path."""
        return len(self.critical_path)

    def describe(self) -> str:
        """Multi-line human-readable critical-path report."""
        lines = [
            f"critical path delay: {self.critical_path_delay:.3f} ns "
            f"({self.levels} levels) -> {self.endpoint}"
        ]
        for seg in self.critical_path:
            lines.append(
                f"  {seg.arrival:7.3f} ns  +{seg.delay:6.3f}  "
                f"{seg.cell_type:<12} {seg.cell_name} -> {seg.output_net}"
            )
        return "\n".join(lines)


def timing_report(netlist: Netlist, library: CellLibrary = STD018) -> TimingReport:
    """Run static timing analysis and return the :class:`TimingReport`."""
    netlist.validate()
    order = netlist.topological_combinational_order()

    arrival: Dict[str, float] = {}
    # net name -> (producing cell, previous net) for path reconstruction
    predecessor: Dict[str, Tuple[Optional[Cell], Optional[str], float]] = {}

    for name, net in netlist.inputs.items():
        arrival[net.name] = 0.0
        predecessor[net.name] = (None, None, 0.0)

    for flop in netlist.sequential_cells():
        q_net = flop.pins.get("Q")
        if q_net is None:
            continue
        delay = library.gate_delay(flop.cell_type, net_load(q_net, library))
        arrival[q_net.name] = delay
        predecessor[q_net.name] = (flop, None, delay)

    for cell in order:
        # Track the max inline instead of materialising an arrival list per
        # cell; ties keep breaking on the net name, exactly like the tuple
        # max() this replaces.
        latest, latest_net = 0.0, None
        for pin, net in cell.input_nets().items():
            t = arrival.get(net.name, 0.0)
            if (
                latest_net is None
                or t > latest
                or (t == latest and net.name > latest_net)
            ):
                latest, latest_net = t, net.name
        for pin, net in cell.output_nets().items():
            delay = library.gate_delay(cell.cell_type, net_load(net, library))
            arrival[net.name] = latest + delay
            predecessor[net.name] = (cell, latest_net, delay)

    # Evaluate endpoints.
    worst_delay = 0.0
    worst_net: Optional[str] = None
    worst_endpoint = "(no endpoints)"

    for flop in netlist.sequential_cells():
        setup = library.setup(flop.cell_type)
        for pin, net in flop.input_nets().items():
            if pin == "CLK":
                continue
            t = arrival.get(net.name, 0.0) + setup
            if t > worst_delay:
                worst_delay = t
                worst_net = net.name
                worst_endpoint = f"{flop.name}.{pin} (register setup)"

    for port_name, net in netlist.outputs.items():
        t = arrival.get(net.name, 0.0)
        if t > worst_delay:
            worst_delay = t
            worst_net = net.name
            worst_endpoint = f"output port {port_name}"

    path: List[PathSegment] = []
    net_name = worst_net
    while net_name is not None:
        cell, previous_net, delay = predecessor.get(net_name, (None, None, 0.0))
        if cell is None:
            break
        path.append(
            PathSegment(
                cell_name=cell.name,
                cell_type=cell.cell_type,
                output_net=net_name,
                delay=delay,
                arrival=arrival.get(net_name, 0.0),
            )
        )
        if cell.spec.sequential:
            break
        net_name = previous_net
        if net_name is None:
            break
        # Follow the worst input of the previous cell: predecessor already
        # points at the latest-arriving input net, so just continue.
    path.reverse()

    return TimingReport(
        critical_path_delay=worst_delay,
        critical_path=path,
        endpoint=worst_endpoint,
        arrival_times=arrival,
    )
