"""Standard-cell library model.

The paper synthesises every design with Synopsys Design Compiler against a
0.18 um CMOS standard-cell library and reports area in "cell units" and delay
in nanoseconds.  We cannot run a proprietary synthesis flow offline, so this
module provides a calibrated stand-in:

* every primitive cell type used by the netlists gets an **area** in cell
  units, an **input capacitance** (in units of a minimum inverter input
  capacitance), and a **logical-effort style delay model** -- the delay of a
  gate driving a load ``C_load`` is ``tau * (p + g * C_load / C_in)`` where
  ``g`` is the logical effort, ``p`` the parasitic delay, and ``tau`` the
  technology time constant;
* flip-flops additionally have a clock-to-Q delay and a setup time.

The numbers follow standard logical-effort theory (Sutherland/Sproull) and
are calibrated (see DESIGN.md §6) so that the magnitudes of the resulting
area/delay match the ranges the paper reports for its 0.18 um flow; the
*relative* trends come from structure, not from the calibration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict

__all__ = [
    "CellCharacteristics",
    "CellLibrary",
    "LIBRARIES",
    "STD018",
    "get_library",
    "library_fingerprint",
    "net_load",
]


@dataclass(frozen=True)
class CellCharacteristics:
    """Area and timing characteristics of one cell type.

    Attributes
    ----------
    area:
        Cell area in library "cell units".
    input_cap:
        Input pin capacitance in units of a minimum-size inverter input.
    logical_effort:
        Logical effort ``g`` of the cell's worst input.
    parasitic_delay:
        Parasitic (intrinsic) delay ``p`` in units of ``tau``.
    clk_to_q:
        Clock-to-output delay in nanoseconds (sequential cells only).
    setup:
        Setup time in nanoseconds (sequential cells only).
    sequential:
        ``True`` for flip-flops.
    """

    area: float
    input_cap: float
    logical_effort: float
    parasitic_delay: float
    clk_to_q: float = 0.0
    setup: float = 0.0
    sequential: bool = False


@dataclass
class CellLibrary:
    """A named collection of cell characteristics plus global constants.

    Attributes
    ----------
    name:
        Library name used in reports.
    tau:
        Technology time constant in nanoseconds; the delay of a fanout-of-1
        inverter is ``tau * (1 + 1)``.
    wire_cap_per_fanout:
        Extra capacitance (in inverter-input units) added per fan-out
        connection to model local wiring.
    cells:
        Mapping of primitive cell type name to :class:`CellCharacteristics`.
    """

    name: str
    tau: float
    wire_cap_per_fanout: float
    cells: Dict[str, CellCharacteristics] = field(default_factory=dict)

    def __contains__(self, cell_type: str) -> bool:
        return cell_type in self.cells

    def __getitem__(self, cell_type: str) -> CellCharacteristics:
        try:
            return self.cells[cell_type]
        except KeyError:
            raise KeyError(
                f"cell type {cell_type!r} not characterised in library {self.name!r}"
            ) from None

    # ------------------------------------------------------------------ area
    def area_of(self, cell_type: str) -> float:
        """Area of one instance of ``cell_type`` in cell units."""
        return self[cell_type].area

    # ---------------------------------------------------------------- timing
    def input_cap_of(self, cell_type: str) -> float:
        """Input pin capacitance of ``cell_type``."""
        return self[cell_type].input_cap

    def gate_delay(self, cell_type: str, load_cap: float) -> float:
        """Propagation delay in ns of ``cell_type`` driving ``load_cap``.

        Uses the logical-effort model ``tau * (p + g * h)`` with electrical
        effort ``h = load_cap / input_cap``.
        """
        char = self[cell_type]
        if char.sequential:
            # Clock-to-Q plus a load-dependent term using the same model.
            h = load_cap / char.input_cap if char.input_cap else 0.0
            return char.clk_to_q + self.tau * char.logical_effort * h
        h = load_cap / char.input_cap if char.input_cap else 0.0
        return self.tau * (char.parasitic_delay + char.logical_effort * h)

    def clk_to_q(self, cell_type: str) -> float:
        """Clock-to-Q delay of a sequential cell (0 for combinational cells)."""
        return self[cell_type].clk_to_q

    def setup(self, cell_type: str) -> float:
        """Setup time of a sequential cell (0 for combinational cells)."""
        return self[cell_type].setup

    def scaled(self, name: str, *, area_scale: float = 1.0, delay_scale: float = 1.0) -> "CellLibrary":
        """Return a derived library with every area/delay figure scaled.

        Useful for sensitivity studies (e.g. "what if flip-flops were 20 %
        smaller") without editing the base characterisation.
        """
        cells = {
            cell_type: CellCharacteristics(
                area=char.area * area_scale,
                input_cap=char.input_cap,
                logical_effort=char.logical_effort,
                parasitic_delay=char.parasitic_delay,
                clk_to_q=char.clk_to_q * delay_scale,
                setup=char.setup * delay_scale,
                sequential=char.sequential,
            )
            for cell_type, char in self.cells.items()
        }
        return CellLibrary(
            name=name,
            tau=self.tau * delay_scale,
            wire_cap_per_fanout=self.wire_cap_per_fanout,
            cells=cells,
        )


def net_load(net, library: "CellLibrary") -> float:
    """Capacitive load on ``net``: fanout pin caps plus wire capacitance.

    This is the single load model shared by static timing analysis and the
    power estimator.  Flip-flop ``CLK`` pins are excluded consistently from
    *both* the pin-capacitance sum and the per-fanout wire term (the clock
    network is not part of the signal wiring; see
    :meth:`repro.hdl.netlist.Net.data_loads`).
    """
    loads = net.data_loads()
    cap = sum(library.input_cap_of(cell.cell_type) for cell, _ in loads)
    return cap + library.wire_cap_per_fanout * len(loads)


def _comb(area: float, cap: float, g: float, p: float) -> CellCharacteristics:
    return CellCharacteristics(
        area=area, input_cap=cap, logical_effort=g, parasitic_delay=p
    )


def _flop(area: float, cap: float, clk_to_q: float, setup: float) -> CellCharacteristics:
    return CellCharacteristics(
        area=area,
        input_cap=cap,
        logical_effort=1.0,
        parasitic_delay=0.0,
        clk_to_q=clk_to_q,
        setup=setup,
        sequential=True,
    )


def _build_std018() -> CellLibrary:
    """Build the default 0.18 um-class characterisation."""
    cells: Dict[str, CellCharacteristics] = {
        # Constants and buffers.  The buffer is characterised as a mid-drive
        # cell (larger input capacitance, same logical effort) because the
        # buffering pass stands in for a sizing-aware buffer-tree synthesis.
        "TIE0": _comb(area=3.0, cap=0.0, g=0.0, p=0.0),
        "TIE1": _comb(area=3.0, cap=0.0, g=0.0, p=0.0),
        "BUF": _comb(area=9.0, cap=1.5, g=1.0, p=2.0),
        "INV": _comb(area=5.0, cap=1.0, g=1.0, p=1.0),
        # NAND / NOR (logical efforts from standard logical-effort theory).
        "NAND2": _comb(area=8.0, cap=1.2, g=4.0 / 3.0, p=2.0),
        "NAND3": _comb(area=11.0, cap=1.4, g=5.0 / 3.0, p=3.0),
        "NAND4": _comb(area=14.0, cap=1.6, g=6.0 / 3.0, p=4.0),
        "NOR2": _comb(area=8.0, cap=1.2, g=5.0 / 3.0, p=2.0),
        "NOR3": _comb(area=11.0, cap=1.4, g=7.0 / 3.0, p=3.0),
        "NOR4": _comb(area=14.0, cap=1.6, g=3.0, p=4.0),
        # AND / OR are NAND/NOR followed by an inverter internally.
        "AND2": _comb(area=10.0, cap=1.2, g=4.0 / 3.0, p=3.0),
        "AND3": _comb(area=13.0, cap=1.4, g=5.0 / 3.0, p=4.0),
        "AND4": _comb(area=16.0, cap=1.6, g=2.0, p=5.0),
        "OR2": _comb(area=10.0, cap=1.2, g=5.0 / 3.0, p=3.0),
        "OR3": _comb(area=13.0, cap=1.4, g=7.0 / 3.0, p=4.0),
        "OR4": _comb(area=16.0, cap=1.6, g=3.0, p=5.0),
        # XOR family and multiplexor.
        "XOR2": _comb(area=14.0, cap=1.8, g=4.0, p=4.0),
        "XNOR2": _comb(area=14.0, cap=1.8, g=4.0, p=4.0),
        "MUX2": _comb(area=14.0, cap=1.5, g=2.0, p=3.5),
        "AOI21": _comb(area=10.0, cap=1.4, g=2.0, p=2.5),
        "OAI21": _comb(area=10.0, cap=1.4, g=2.0, p=2.5),
        # Flip-flop family.  Enable/reset variants are larger and slightly
        # slower, as in any real library.
        "DFF": _flop(area=40.0, cap=1.5, clk_to_q=0.18, setup=0.10),
        "DFF_RST": _flop(area=45.0, cap=1.5, clk_to_q=0.19, setup=0.10),
        "DFF_SET": _flop(area=45.0, cap=1.5, clk_to_q=0.19, setup=0.10),
        "DFF_EN": _flop(area=50.0, cap=1.5, clk_to_q=0.20, setup=0.12),
        "DFF_EN_RST": _flop(area=55.0, cap=1.5, clk_to_q=0.21, setup=0.12),
        "DFF_EN_SET": _flop(area=55.0, cap=1.5, clk_to_q=0.21, setup=0.12),
    }
    # tau is chosen so a fanout-of-4 inverter delay is ~0.1 ns, the usual
    # figure quoted for a 0.18 um process at the slow corner.
    return CellLibrary(
        name="std018",
        tau=0.02,
        wire_cap_per_fanout=0.12,
        cells=cells,
    )


#: Default 0.18 um-class standard-cell library used throughout the
#: reproduction.
STD018: CellLibrary = _build_std018()

#: Named library registry used by campaign specs (which refer to libraries by
#: name so that jobs stay serialisable).  ``std018_fast`` models a
#: high-performance corner (faster, cells up-sized); ``std018_lp`` a low-power
#: corner (slower, denser).
LIBRARIES: Dict[str, CellLibrary] = {
    "std018": STD018,
    "std018_fast": STD018.scaled("std018_fast", area_scale=1.15, delay_scale=0.8),
    "std018_lp": STD018.scaled("std018_lp", area_scale=0.9, delay_scale=1.3),
}


def get_library(name: str) -> CellLibrary:
    """Look up a registered library by name."""
    try:
        return LIBRARIES[name]
    except KeyError:
        raise KeyError(
            f"unknown cell library {name!r}; available: {', '.join(sorted(LIBRARIES))}"
        ) from None


def library_fingerprint(library: CellLibrary) -> str:
    """Short content digest of a library's characterisation.

    Campaign job keys embed this fingerprint so that recalibrating a library
    invalidates cached results evaluated against the old numbers.
    """
    payload = {
        "name": library.name,
        "tau": library.tau,
        "wire_cap_per_fanout": library.wire_cap_per_fanout,
        "cells": {
            cell_type: [
                char.area,
                char.input_cap,
                char.logical_effort,
                char.parasitic_delay,
                char.clk_to_q,
                char.setup,
                char.sequential,
            ]
            for cell_type, char in sorted(library.cells.items())
        },
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]
