"""Symbolic FSM synthesis.

Elaborates a :class:`~repro.synth.fsm.fsm.FiniteStateMachine` into a netlist:
a state register (with clock-enable on the ``next`` input and synchronous
reset to the initial state), two-level minimised next-state logic, and
two-level minimised Moore output logic.  This reproduces the "symbolic state
machine" baseline the paper hands to Design Compiler in Section 3, including
the effort blow-up: the minimiser is generic and treats every next-state and
output bit as an arbitrary Boolean function of the state bits.

For one-hot encodings (where truth-table enumeration over the state bits is
impossible) a structural path is used instead: each state flip-flop's next
value is the OR of its predecessors, and each output is the OR of the states
that assert it.  This is the construction a human designer would write down,
and is essentially what the paper's shift register implements for cyclic
sequences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hdl.components.gates import build_or_tree
from repro.hdl.netlist import Net, Netlist
from repro.synth.fsm.encoding import encoding_by_name
from repro.synth.fsm.fsm import FiniteStateMachine
from repro.synth.logic.minimize import MinimizationStats, minimize
from repro.synth.logic.synthesize import sop_to_netlist
from repro.synth.logic.truth_table import TruthTable

__all__ = ["FsmSynthesisResult", "next_state_tables", "synthesize_fsm"]

#: Widest state register for which truth-table based synthesis is attempted.
MAX_TABLE_WIDTH = 16


@dataclass
class FsmSynthesisResult:
    """Outcome of synthesising one FSM.

    Attributes
    ----------
    netlist:
        The elaborated netlist (inputs ``clk``, ``next``, ``reset``; one
        output port per FSM output bit).
    fsm:
        The machine that was synthesised.
    encoding_name:
        State encoding used.
    state_width:
        Number of state flip-flops.
    stats:
        Aggregated logic-minimisation effort over all next-state and output
        functions (zeroed for the structural one-hot path).
    synthesis_seconds:
        Wall-clock time spent elaborating, a proxy for the paper's
        synthesis-runtime comparison.
    structural:
        ``True`` when the structural (non-minimised) one-hot path was used.
    """

    netlist: Netlist
    fsm: FiniteStateMachine
    encoding_name: str
    state_width: int
    stats: MinimizationStats = field(default_factory=MinimizationStats)
    synthesis_seconds: float = 0.0
    structural: bool = False


def next_state_tables(
    fsm: FiniteStateMachine, encoding: str = "binary"
) -> List[TruthTable]:
    """The per-state-bit next-state truth tables synthesis minimises.

    One table per state bit: the on-set holds the codes of the states whose
    successor asserts that bit, and every unused code is a don't-care.  This
    is the exact workload :func:`synthesize_fsm` hands to the minimiser, and
    the single definition the regression tests and ``tools/bench.py`` use.
    """
    enc = encoding_by_name(encoding)
    width = enc.width(fsm.num_states)
    codes = enc.codes(fsm.num_states)
    code_of = {s: codes[s] for s in range(fsm.num_states)}
    dc_set = frozenset(c for c in range(1 << width) if c not in set(codes))
    return [
        TruthTable(
            num_inputs=width,
            on_set=frozenset(
                code_of[s]
                for s in range(fsm.num_states)
                if (code_of[fsm.next_state[s]] >> bit) & 1
            ),
            dc_set=dc_set,
        )
        for bit in range(width)
    ]


def synthesize_fsm(
    fsm: FiniteStateMachine,
    *,
    encoding: str = "binary",
    name: Optional[str] = None,
    max_exact_inputs: int = 12,
) -> FsmSynthesisResult:
    """Synthesise ``fsm`` with the given state ``encoding``.

    Parameters
    ----------
    encoding:
        One of ``"binary"``, ``"gray"``, ``"onehot"``, ``"johnson"``.
    max_exact_inputs:
        Passed to the two-level minimiser; wider functions fall back to a
        heuristic cover.
    """
    start = time.perf_counter()
    enc = encoding_by_name(encoding)
    width = enc.width(fsm.num_states)
    codes = enc.codes(fsm.num_states)
    if len(set(codes)) != len(codes):
        raise ValueError(
            f"encoding {encoding!r} does not give distinct codes for "
            f"{fsm.num_states} states"
        )

    netlist = Netlist(name or f"{fsm.name}_{encoding}")
    clk = netlist.add_input("clk")
    advance = netlist.add_input("next")
    reset = netlist.add_input("reset")

    if width > MAX_TABLE_WIDTH or encoding == "onehot":
        result = _synthesize_structural_onehot(netlist, fsm, clk, advance, reset)
        elapsed = time.perf_counter() - start
        return FsmSynthesisResult(
            netlist=netlist,
            fsm=fsm,
            encoding_name=encoding,
            state_width=fsm.num_states if encoding == "onehot" else width,
            stats=result,
            synthesis_seconds=elapsed,
            structural=True,
        )

    # State register output nets.
    state_bits = [netlist.new_net(f"state_{b}_") for b in range(width)]

    used_codes = set(codes)
    dc_codes = frozenset(
        c for c in range(1 << width) if c not in used_codes
    )
    code_of = {s: codes[s] for s in range(fsm.num_states)}

    total_stats = MinimizationStats()
    inverter_cache: Dict[str, Net] = {}

    # Next-state logic: one Boolean function of the state bits per state bit.
    next_nets: List[Net] = []
    for bit, table in enumerate(next_state_tables(fsm, encoding)):
        cover, stats = minimize(table, max_exact_inputs=max_exact_inputs)
        total_stats = total_stats + stats
        next_nets.append(
            sop_to_netlist(
                netlist,
                cover,
                state_bits,
                prefix=f"ns{bit}",
                inverter_cache=inverter_cache,
            )
        )

    # Moore output logic: one Boolean function of the state bits per output.
    for k, out_name in enumerate(fsm.output_names):
        on_set = frozenset(
            code_of[s] for s in range(fsm.num_states) if fsm.outputs[s][k]
        )
        table = TruthTable(num_inputs=width, on_set=on_set, dc_set=dc_codes)
        cover, stats = minimize(table, max_exact_inputs=max_exact_inputs)
        total_stats = total_stats + stats
        out_net = sop_to_netlist(
            netlist,
            cover,
            state_bits,
            prefix=f"out{k}",
            inverter_cache=inverter_cache,
        )
        netlist.add_output(out_name, out_net)

    # State register with enable on `next` and synchronous reset to the
    # initial state's code (set for 1-bits, reset for 0-bits).
    initial_code = code_of[fsm.initial_state]
    for bit in range(width):
        starts_high = bool((initial_code >> bit) & 1)
        netlist.add_cell(
            "DFF_EN_SET" if starts_high else "DFF_EN_RST",
            name=f"state_ff{bit}",
            D=next_nets[bit],
            CLK=clk,
            EN=advance,
            Q=state_bits[bit],
            **{"SET" if starts_high else "RST": reset},
        )

    elapsed = time.perf_counter() - start
    return FsmSynthesisResult(
        netlist=netlist,
        fsm=fsm,
        encoding_name=encoding,
        state_width=width,
        stats=total_stats,
        synthesis_seconds=elapsed,
        structural=False,
    )


def _synthesize_structural_onehot(
    netlist: Netlist,
    fsm: FiniteStateMachine,
    clk: Net,
    advance: Net,
    reset: Net,
) -> MinimizationStats:
    """One-hot structural synthesis (no truth tables).

    State flip-flop ``j`` is set on reset when ``j`` is the initial state and
    loads the OR of its predecessor states' outputs when ``next`` is high.
    """
    n = fsm.num_states
    state_bits = [netlist.new_net(f"state_{j}_") for j in range(n)]

    predecessors: Dict[int, List[int]] = {j: [] for j in range(n)}
    for i, target in enumerate(fsm.next_state):
        predecessors[target].append(i)

    for j in range(n):
        preds = predecessors[j]
        if not preds:
            d_net = netlist.const(0)
        elif len(preds) == 1:
            d_net = state_bits[preds[0]]
        else:
            d_net = build_or_tree(
                netlist, [state_bits[i] for i in preds], prefix=f"ns{j}_or"
            )
        is_initial = j == fsm.initial_state
        netlist.add_cell(
            "DFF_EN_SET" if is_initial else "DFF_EN_RST",
            name=f"state_ff{j}",
            D=d_net,
            CLK=clk,
            EN=advance,
            Q=state_bits[j],
            **{"SET" if is_initial else "RST": reset},
        )

    for k, out_name in enumerate(fsm.output_names):
        asserting = [s for s in range(n) if fsm.outputs[s][k]]
        if not asserting:
            out_net = netlist.const(0)
        elif len(asserting) == 1:
            out_net = state_bits[asserting[0]]
        else:
            out_net = build_or_tree(
                netlist, [state_bits[s] for s in asserting], prefix=f"out{k}_or"
            )
        netlist.add_output(out_name, out_net)
    return MinimizationStats()
