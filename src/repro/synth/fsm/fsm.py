"""Moore finite-state-machine model for address generation.

The machine advances along its transition list whenever the ``next`` input is
asserted and holds its state otherwise; each state carries a Moore output
vector.  For an address generator targeting the address decoder-decoupled
memory the outputs are select lines (one-hot, or two-hot when row and column
dimensions are combined); for a conventional-RAM generator they are the
binary address bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["FiniteStateMachine"]


@dataclass
class FiniteStateMachine:
    """A Moore FSM with a single advance input.

    Attributes
    ----------
    name:
        Machine name, used for netlist and report naming.
    num_states:
        Number of symbolic states.
    next_state:
        ``next_state[i]`` is the state entered from state ``i`` when the
        ``next`` input is asserted.
    outputs:
        ``outputs[i]`` is the Moore output vector (a tuple of 0/1) in state
        ``i``.  All vectors must have the same width.
    output_names:
        Optional names for the output bits (defaults to ``out_<k>``).
    initial_state:
        State entered on reset.
    """

    name: str
    num_states: int
    next_state: List[int]
    outputs: List[Tuple[int, ...]]
    output_names: List[str] = field(default_factory=list)
    initial_state: int = 0

    def __post_init__(self) -> None:
        if self.num_states < 1:
            raise ValueError(f"FSM needs at least one state, got {self.num_states}")
        if len(self.next_state) != self.num_states:
            raise ValueError(
                f"next_state has {len(self.next_state)} entries for "
                f"{self.num_states} states"
            )
        for i, target in enumerate(self.next_state):
            if not (0 <= target < self.num_states):
                raise ValueError(f"state {i} transitions to invalid state {target}")
        if len(self.outputs) != self.num_states:
            raise ValueError(
                f"outputs has {len(self.outputs)} entries for {self.num_states} states"
            )
        widths = {len(v) for v in self.outputs}
        if len(widths) > 1:
            raise ValueError(f"inconsistent output widths: {sorted(widths)}")
        if not (0 <= self.initial_state < self.num_states):
            raise ValueError(f"invalid initial state {self.initial_state}")
        if not self.output_names:
            self.output_names = [f"out_{k}" for k in range(self.output_width)]
        elif len(self.output_names) != self.output_width:
            raise ValueError(
                f"{len(self.output_names)} output names for {self.output_width} outputs"
            )

    # ------------------------------------------------------------ properties
    @property
    def output_width(self) -> int:
        """Number of Moore output bits."""
        return len(self.outputs[0]) if self.outputs else 0

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_select_sequence(
        cls,
        sequence: Sequence[int],
        num_lines: Optional[int] = None,
        name: str = "fsm_select",
    ) -> "FiniteStateMachine":
        """Build the cyclic FSM producing one-hot select lines for ``sequence``.

        One state is created per sequence position (exactly the construction
        the paper describes: "for a repetitive address sequence of length N,
        an FSM with N states is required").
        """
        if not sequence:
            raise ValueError("sequence must be non-empty")
        if num_lines is None:
            num_lines = max(sequence) + 1
        if min(sequence) < 0 or max(sequence) >= num_lines:
            raise ValueError("sequence values outside select-line range")
        n = len(sequence)
        outputs = [
            tuple(1 if line == address else 0 for line in range(num_lines))
            for address in sequence
        ]
        return cls(
            name=name,
            num_states=n,
            next_state=[(i + 1) % n for i in range(n)],
            outputs=outputs,
            output_names=[f"sel_{k}" for k in range(num_lines)],
        )

    @classmethod
    def from_binary_sequence(
        cls,
        sequence: Sequence[int],
        address_width: Optional[int] = None,
        name: str = "fsm_binary",
    ) -> "FiniteStateMachine":
        """Build the cyclic FSM producing binary-coded addresses for ``sequence``."""
        if not sequence:
            raise ValueError("sequence must be non-empty")
        if address_width is None:
            address_width = max(1, max(sequence).bit_length())
        if max(sequence) >= (1 << address_width):
            raise ValueError("sequence values do not fit in the address width")
        n = len(sequence)
        outputs = [
            tuple((address >> bit) & 1 for bit in range(address_width))
            for address in sequence
        ]
        return cls(
            name=name,
            num_states=n,
            next_state=[(i + 1) % n for i in range(n)],
            outputs=outputs,
            output_names=[f"addr_{k}" for k in range(address_width)],
        )

    @classmethod
    def from_two_hot_sequence(
        cls,
        rows: Sequence[int],
        cols: Sequence[int],
        num_rows: int,
        num_cols: int,
        name: str = "fsm_two_hot",
    ) -> "FiniteStateMachine":
        """Build the cyclic FSM producing two-hot (row + column) select lines."""
        if len(rows) != len(cols):
            raise ValueError("row and column sequences must have equal length")
        if not rows:
            raise ValueError("sequence must be non-empty")
        n = len(rows)
        outputs = []
        for r, c in zip(rows, cols):
            if not (0 <= r < num_rows) or not (0 <= c < num_cols):
                raise ValueError(f"address ({r},{c}) outside {num_rows}x{num_cols} array")
            row_vec = tuple(1 if k == r else 0 for k in range(num_rows))
            col_vec = tuple(1 if k == c else 0 for k in range(num_cols))
            outputs.append(row_vec + col_vec)
        names = [f"rs_{k}" for k in range(num_rows)] + [f"cs_{k}" for k in range(num_cols)]
        return cls(
            name=name,
            num_states=n,
            next_state=[(i + 1) % n for i in range(n)],
            outputs=outputs,
            output_names=names,
        )

    # ------------------------------------------------------------- behaviour
    def simulate(self, steps: int, *, advance: bool = True) -> List[Tuple[int, ...]]:
        """Return the output vectors observed over ``steps`` clock cycles."""
        state = self.initial_state
        observed: List[Tuple[int, ...]] = []
        for _ in range(steps):
            observed.append(self.outputs[state])
            if advance:
                state = self.next_state[state]
        return observed

    def output_sequence_as_indices(self, steps: int) -> List[int]:
        """Simulate and decode one-hot output vectors back to indices.

        Raises :class:`ValueError` if an output vector is not one-hot.
        """
        indices = []
        for vector in self.simulate(steps):
            asserted = [i for i, bit in enumerate(vector) if bit]
            if len(asserted) != 1:
                raise ValueError(f"output vector {vector} is not one-hot")
            indices.append(asserted[0])
        return indices
