"""State encodings for symbolic FSM synthesis.

The paper synthesises its Section 3 baseline with the synthesis tool's
default *binary* (minimum-length) encoding, and contrasts it with the
shift-register solution which is effectively a one-hot (or, for the 2-D SRAG,
two-hot) encoding in disguise.  Several classic encodings are provided so the
design space can be explored beyond the paper's single point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

__all__ = ["StateEncoding", "ENCODINGS", "encoding_by_name"]


@dataclass(frozen=True)
class StateEncoding:
    """A state-assignment strategy.

    Attributes
    ----------
    name:
        Encoding name (``"binary"``, ``"gray"``, ``"onehot"``, ``"johnson"``).
    width_fn:
        Maps the number of states to the number of state bits.
    encode_fn:
        Maps ``(state_index, num_states)`` to the code as an integer whose
        bit ``i`` is state bit ``i``.
    """

    name: str
    width_fn: Callable[[int], int]
    encode_fn: Callable[[int, int], int]

    def width(self, num_states: int) -> int:
        """Number of state register bits for ``num_states`` states."""
        if num_states < 1:
            raise ValueError(f"num_states must be >= 1, got {num_states}")
        return self.width_fn(num_states)

    def encode(self, state: int, num_states: int) -> int:
        """Code of ``state`` as an integer."""
        if not (0 <= state < num_states):
            raise ValueError(f"state {state} outside 0..{num_states - 1}")
        return self.encode_fn(state, num_states)

    def codes(self, num_states: int) -> List[int]:
        """Codes of every state, in state order."""
        return [self.encode(s, num_states) for s in range(num_states)]

    def code_bits(self, state: int, num_states: int) -> Tuple[int, ...]:
        """Code of ``state`` as a bit tuple, LSB first."""
        code = self.encode(state, num_states)
        return tuple((code >> i) & 1 for i in range(self.width(num_states)))


def _binary_width(num_states: int) -> int:
    return max(1, (num_states - 1).bit_length())


def _gray_encode(state: int, _num_states: int) -> int:
    return state ^ (state >> 1)


def _onehot_width(num_states: int) -> int:
    return num_states


def _onehot_encode(state: int, _num_states: int) -> int:
    return 1 << state


def _johnson_width(num_states: int) -> int:
    # A Johnson (twisted-ring) counter of w bits cycles through 2w codes.
    return max(1, (num_states + 1) // 2)


def _johnson_encode(state: int, num_states: int) -> int:
    width = _johnson_width(num_states)
    code = 0
    # Walk the twisted ring 'state' steps from the all-zeros code.
    for _ in range(state):
        msb = (code >> (width - 1)) & 1
        code = ((code << 1) | (1 - msb)) & ((1 << width) - 1)
    return code


ENCODINGS: Dict[str, StateEncoding] = {
    "binary": StateEncoding("binary", _binary_width, lambda s, n: s),
    "gray": StateEncoding("gray", _binary_width, _gray_encode),
    "onehot": StateEncoding("onehot", _onehot_width, _onehot_encode),
    "johnson": StateEncoding("johnson", _johnson_width, _johnson_encode),
}


def encoding_by_name(name: str) -> StateEncoding:
    """Look up an encoding by name, raising ``KeyError`` with suggestions."""
    try:
        return ENCODINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown state encoding {name!r}; available: {sorted(ENCODINGS)}"
        ) from None
