"""Symbolic finite state machines and their synthesis.

Section 3 of the paper generalises the address generator for an address
decoder-decoupled memory as an FSM with one state per position in the
address sequence, and shows that handing such a machine to a generic logic
optimiser produces circuits that are both slower and far more expensive to
synthesise than a structured shift-register solution.  This package builds
that baseline:

* :class:`~repro.synth.fsm.fsm.FiniteStateMachine` -- a Moore machine with a
  single ``next`` advance input, defined by its transition list and per-state
  output vectors.
* :mod:`repro.synth.fsm.encoding` -- binary, gray, one-hot and Johnson state
  encodings.
* :func:`~repro.synth.fsm.synthesis.synthesize_fsm` -- elaborate the encoded
  machine into flip-flops plus minimised two-level next-state and output
  logic, returning the netlist together with effort statistics.
"""

from repro.synth.fsm.encoding import ENCODINGS, StateEncoding, encoding_by_name
from repro.synth.fsm.fsm import FiniteStateMachine
from repro.synth.fsm.synthesis import FsmSynthesisResult, synthesize_fsm

__all__ = [
    "FiniteStateMachine",
    "StateEncoding",
    "ENCODINGS",
    "encoding_by_name",
    "FsmSynthesisResult",
    "synthesize_fsm",
]
