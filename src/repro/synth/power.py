"""Dynamic-power estimation from switching activity.

The paper's conclusion states: "Although we expect this decoder decoupling
approach to reduce power dissipation, in this work we have not carried out a
rigorous study of it."  This module carries out that study for the
reproduction's structural models:

* every net's **switching activity** is measured by running the gate-level
  simulator over a representative number of cycles of the design's own
  address sequence,
* each toggle is charged the energy of switching the net's load capacitance
  (fanout pin capacitance plus wire capacitance) at the library's supply
  voltage, plus a per-cell internal energy proportional to the driving cell's
  input capacitance,
* flip-flops are additionally charged a per-clock-edge internal energy
  (clock-pin toggling), which is what makes the SRAG's many flip-flops the
  interesting term of the comparison.

The absolute numbers are indicative (pre-layout, no clock-tree or glitch
modelling); the intended use is the *relative* comparison between address
generator architectures, mirroring how area and delay are treated elsewhere
in the reproduction.

The inner loop runs on :class:`~repro.hdl.compiled.CompiledSimulator`, which
counts toggles inside its levelised event-driven stepping loop; the original
dict-driven measurement survives as ``engine="reference"`` and is the oracle
the compiled path is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hdl.compiled import CompiledSimulator
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.synth.cell_library import CellLibrary, STD018, net_load

__all__ = ["PowerReport", "estimate_power"]

#: Supply voltage assumed for the 0.18 um-class library (volts).
SUPPLY_VOLTAGE = 1.8

#: Capacitance represented by one "input capacitance unit" of the library, in
#: femtofarads.  A minimum inverter input in a 0.18 um process is ~2 fF.
FEMTOFARAD_PER_CAP_UNIT = 2.0

#: Internal energy charged per flip-flop per clock edge, expressed as an
#: equivalent capacitance (in library cap units) switched at the supply.
FLOP_CLOCK_CAP_UNITS = 1.0


@dataclass
class PowerReport:
    """Switching-activity based power estimate for one netlist.

    Attributes
    ----------
    cycles:
        Number of simulated clock cycles the activity was measured over.
    toggle_counts:
        Net-name to number of observed transitions.
    switching_energy_fj:
        Total net-switching energy over the simulated window, femtojoules.
    clock_energy_fj:
        Total flip-flop clock-pin energy over the window, femtojoules.
    frequency_mhz:
        Clock frequency assumed when converting energy to average power.
    """

    cycles: int
    toggle_counts: Dict[str, int] = field(default_factory=dict)
    switching_energy_fj: float = 0.0
    clock_energy_fj: float = 0.0
    frequency_mhz: float = 100.0

    @property
    def total_energy_fj(self) -> float:
        """Total energy over the simulated window, femtojoules."""
        return self.switching_energy_fj + self.clock_energy_fj

    @property
    def energy_per_access_fj(self) -> float:
        """Average energy per clock cycle (one memory access), femtojoules."""
        return self.total_energy_fj / self.cycles if self.cycles else 0.0

    @property
    def average_power_uw(self) -> float:
        """Average dynamic power in microwatts at ``frequency_mhz``."""
        # fJ per cycle * cycles per second = fJ/s; 1 fJ * 1 MHz = 1 nW.
        return self.energy_per_access_fj * self.frequency_mhz * 1e-3

    @property
    def total_toggles(self) -> int:
        """Total observed net transitions."""
        return sum(self.toggle_counts.values())

    def summary(self) -> str:
        """One-line summary used by benchmarks and the explorer."""
        return (
            f"energy/access = {self.energy_per_access_fj:8.1f} fJ   "
            f"avg power @ {self.frequency_mhz:.0f} MHz = {self.average_power_uw:7.2f} uW   "
            f"toggles = {self.total_toggles}"
        )


def _reference_toggles(
    netlist: Netlist, cycles: int, next_port: str, reset_port: str
) -> Dict[str, int]:
    """Measure per-net toggle counts with the reference dict-driven simulator.

    Kept as the oracle the compiled fast path is checked against (and for
    debugging); campaigns always go through the compiled engine.
    """
    simulator = Simulator(netlist)
    if reset_port in netlist.inputs:
        simulator.reset(reset_port)
    if next_port in netlist.inputs:
        simulator.poke(next_port, 1)

    previous = {name: simulator.peek(net) for name, net in netlist.nets.items()}
    toggles: Dict[str, int] = {name: 0 for name in netlist.nets}
    for _ in range(cycles):
        simulator.step()
        for name, net in netlist.nets.items():
            value = simulator.peek(net)
            if value != previous[name]:
                toggles[name] += 1
                previous[name] = value
    return {name: count for name, count in toggles.items() if count}


def _compiled_toggles(
    netlist: Netlist, cycles: int, next_port: str, reset_port: str
) -> Dict[str, int]:
    """Measure per-net toggle counts with the compiled simulator.

    Same protocol and snapshot-per-cycle toggle semantics as the reference
    path, but the settle/count loop is the levelised event-driven program of
    :class:`~repro.hdl.compiled.CompiledSimulator` -- quiescent cones are
    never re-evaluated and untouched nets are never re-scanned.
    """
    simulator = CompiledSimulator(netlist)
    if reset_port in netlist.inputs:
        simulator.reset(reset_port)
    if next_port in netlist.inputs:
        simulator.poke(next_port, 1)
    simulator.reset_toggles()
    simulator.run(cycles)
    return simulator.toggle_counts()


def estimate_power(
    netlist: Netlist,
    *,
    library: CellLibrary = STD018,
    cycles: Optional[int] = None,
    frequency_mhz: float = 100.0,
    next_port: str = "next",
    reset_port: str = "reset",
    engine: str = "compiled",
) -> PowerReport:
    """Estimate dynamic power by simulating ``netlist`` for ``cycles`` cycles.

    The design is reset, its ``next`` input is held high (one address per
    cycle, the paper's usage model), and every net transition is recorded.

    Parameters
    ----------
    cycles:
        Simulation window; defaults to 256 cycles (or fewer for tiny designs
        is fine -- activities are periodic in the address sequence length).
    frequency_mhz:
        Clock frequency used to convert energy per cycle into average power.
    engine:
        ``"compiled"`` (default) runs the levelised event-driven simulator;
        ``"reference"`` runs the original dict-driven simulator.  The two
        produce identical toggle counts -- the reference path exists as the
        oracle for the compiled one.
    """
    if cycles is None:
        cycles = 256
    if cycles < 1:
        raise ValueError(f"cycles must be positive, got {cycles}")
    if engine == "compiled":
        toggles = _compiled_toggles(netlist, cycles, next_port, reset_port)
    elif engine == "reference":
        toggles = _reference_toggles(netlist, cycles, next_port, reset_port)
    else:
        raise ValueError(f"unknown simulation engine {engine!r}")

    # Energy: E = C * V^2 per full toggle (charging + discharging averaged to
    # one CV^2 per transition pair; we charge 0.5 C V^2 per transition).
    volts_squared = SUPPLY_VOLTAGE * SUPPLY_VOLTAGE
    switching_energy = 0.0
    nets = netlist.nets
    for name, count in toggles.items():
        cap_units = net_load(nets[name], library)
        capacitance_ff = cap_units * FEMTOFARAD_PER_CAP_UNIT
        switching_energy += 0.5 * capacitance_ff * volts_squared * count

    flop_count = len(netlist.sequential_cells())
    clock_energy = (
        0.5
        * FLOP_CLOCK_CAP_UNITS
        * FEMTOFARAD_PER_CAP_UNIT
        * volts_squared
        * flop_count
        * cycles
    )

    return PowerReport(
        cycles=cycles,
        toggle_counts=toggles,
        switching_energy_fj=switching_energy,
        clock_energy_fj=clock_energy,
        frequency_mhz=frequency_mhz,
    )
