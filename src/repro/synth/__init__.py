"""Synthesis and estimation layer.

This package plays the role that Synopsys Design Compiler and the 0.18 um
CMOS standard-cell library play in the paper: it assigns area and delay to a
structural netlist and provides the logic-synthesis machinery (two-level
minimisation, FSM state encoding and synthesis) needed to build the symbolic
state machine baseline of Section 3.

Main entry points
-----------------
* :data:`repro.synth.cell_library.STD018` -- the calibrated 0.18 um-class cell
  library (area in "cell units", logical-effort delay parameters).
* :func:`repro.synth.flow.run_synthesis_flow` -- buffer high-fanout nets, run
  static timing analysis and area accounting, and return a
  :class:`~repro.synth.report.SynthesisResult`.
* :mod:`repro.synth.logic` -- truth tables, Quine-McCluskey / heuristic
  two-level minimisation and SOP-to-netlist synthesis.
* :mod:`repro.synth.fsm` -- symbolic FSM model, state encodings and FSM
  synthesis (the paper's "symbolic state machine" baseline).
"""

from repro.synth.area import AreaReport, area_report
from repro.synth.buffering import insert_buffer_trees
from repro.synth.cell_library import CellCharacteristics, CellLibrary, STD018
from repro.synth.flow import run_synthesis_flow
from repro.synth.report import SynthesisResult
from repro.synth.timing import TimingReport, timing_report

__all__ = [
    "AreaReport",
    "area_report",
    "insert_buffer_trees",
    "CellCharacteristics",
    "CellLibrary",
    "STD018",
    "run_synthesis_flow",
    "SynthesisResult",
    "TimingReport",
    "timing_report",
]
