"""Shared rule-engine core for both lint targets.

One vocabulary serves the design-rule checker over the :class:`Netlist` IR
(:mod:`repro.lint.design`) and the repo-invariant AST linter
(:mod:`repro.lint.ast_rules`): a *rule* has a stable dotted id, a severity
and a description; running rules produces :class:`Finding` objects
(severity, human message, location); a :class:`LintReport` collects the
findings that survived suppression, knows whether any are errors, and
serialises to JSON for machine consumers (CI artifacts, ``--output``).

Severities are ordered ``error > warning > info``.  Only error-severity
findings fail builds: warnings are advisory (a fanout the library tolerates,
an unreachable FSM state that costs area but not correctness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "Finding",
    "LintReport",
    "Rule",
    "severity_rank",
]

#: Severity levels, most severe first.
ERROR, WARNING, INFO = "error", "warning", "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


def severity_rank(severity: str) -> int:
    """Sort key for severities (``error`` sorts first); unknown sorts last."""
    return _SEVERITY_ORDER.get(severity, len(_SEVERITY_ORDER))


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    rule:
        Stable dotted rule id (``design.comb-loop``, ``ast.print-call``).
        Suppressions name this id, and reports group by it, so ids never
        change once shipped.
    severity:
        ``error`` / ``warning`` / ``info``.
    message:
        Human-readable description of the specific violation.
    location:
        Where it was found: ``<netlist>.<cell or net>`` for design findings,
        ``<path>:<line>`` for AST findings.
    line:
        Source line for AST findings (0 when not applicable); kept separate
        from ``location`` so suppression matching and JSON consumers do not
        have to parse strings.
    """

    rule: str
    severity: str
    message: str
    location: str = ""
    line: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary form (stable field names)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "line": self.line,
        }

    def render(self) -> str:
        """One-line text form: ``location: severity [rule] message``."""
        prefix = f"{self.location}: " if self.location else ""
        return f"{prefix}{self.severity} [{self.rule}] {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement a target-specific
    ``check`` method (the two engines have different signatures, so the base
    class only standardises identity and finding construction).
    """

    #: Stable dotted id; suppressions and reports refer to rules by this.
    id: str = ""
    #: Default severity of this rule's findings.
    severity: str = ERROR
    #: One-line "what it catches" used by rule catalogues and ``--list-rules``.
    description: str = ""

    def finding(
        self, message: str, *, location: str = "", line: int = 0,
        severity: Optional[str] = None,
    ) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            message=message,
            location=location,
            line=line,
        )


@dataclass
class LintReport:
    """The outcome of one lint run.

    Attributes
    ----------
    target:
        What was linted (a netlist name, a path list summary).
    findings:
        Findings that survived suppression, most severe first.
    suppressed:
        Count of findings dropped by per-rule suppressions.
    checked:
        How many units (nets+cells, or files) the run examined.
    """

    target: str = ""
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    checked: int = 0

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def error_count(self) -> int:
        """Number of error-severity findings."""
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def warning_count(self) -> int:
        """Number of warning-severity findings."""
        return sum(1 for f in self.findings if f.severity == WARNING)

    @property
    def has_errors(self) -> bool:
        """True when any finding is error-severity (build-failing)."""
        return self.error_count > 0

    def by_rule(self) -> Dict[str, List[Finding]]:
        """Findings grouped by rule id."""
        grouped: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule, []).append(finding)
        return grouped

    def extend(self, findings: Iterable[Finding]) -> None:
        """Append findings (callers re-sort via :meth:`sort` when done)."""
        self.findings.extend(findings)

    def sort(self) -> None:
        """Order findings most-severe first, then by location and rule."""
        self.findings.sort(
            key=lambda f: (severity_rank(f.severity), f.location, f.line, f.rule)
        )

    def summary(self) -> str:
        """One-line totals: ``3 finding(s) (1 error, 2 warnings) ...``."""
        suppressed = f", {self.suppressed} suppressed" if self.suppressed else ""
        return (
            f"{len(self.findings)} finding(s) "
            f"({self.error_count} error(s), {self.warning_count} warning(s)"
            f"{suppressed}) in {self.target or 'target'}"
        )

    def render(self) -> str:
        """Multi-line text report: one line per finding plus the summary."""
        lines = [finding.render() for finding in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary form (what ``sradlint --output`` writes)."""
        return {
            "target": self.target,
            "findings": [finding.to_dict() for finding in self.findings],
            "errors": self.error_count,
            "warnings": self.warning_count,
            "suppressed": self.suppressed,
            "checked": self.checked,
        }


def filter_suppressed(
    findings: Sequence[Finding], suppress: Iterable[str]
) -> tuple:
    """Split findings into (kept, dropped_count) under per-rule suppression.

    ``suppress`` holds rule ids; ``"all"`` suppresses everything.  The AST
    engine does finer (per-line) suppression itself; this is the coarse
    API-level form the design linter offers.
    """
    names = set(suppress)
    if not names:
        return list(findings), 0
    kept = [
        f for f in findings if f.rule not in names and "all" not in names
    ]
    return kept, len(findings) - len(kept)
