"""Repo-invariant linter over Python source (stdlib :mod:`ast` only).

The second lint target: where :mod:`repro.lint.design` checks what the code
*produces* (netlists), this module checks the code itself for the invariants
PR 4--7 established and prose alone cannot defend:

========================  ========  ==================================================
id                        severity  catches
========================  ========  ==================================================
``ast.async-blocking``    error     blocking calls (``time.sleep``, ``subprocess.run``,
                                    sync socket/file waits) inside ``async def`` bodies
                                    in library code -- they stall the whole event loop
``ast.print-call``        error     bare ``print()`` in library code; diagnostics must
                                    go through ``repro.obs.log`` (stderr, structured)
``ast.nondeterministic-key``  error  ``time.time``/``random``/``uuid``/``datetime.now``
                                    inside key/hash/fingerprint/digest functions --
                                    cache keys must be pure functions of their inputs
``ast.mutable-default``   error     mutable default arguments (shared across calls)
``ast.dead-import``       error     imports never referenced in the module
``ast.silent-except``     error     ``except`` handlers whose whole body is ``pass``/
                                    ``...`` in library code -- swallowed errors hide
                                    real faults; log, re-raise or justify per line
``ast.bare-retry-loop``   error     ``while True`` loops that catch an exception and
                                    ``continue`` without any backoff/budget call --
                                    hand-rolled retry storms; go through
                                    ``repro.resilience.retry.RetryPolicy``
========================  ========  ==================================================

Suppression is per line: append ``# sradlint: disable=<rule-id>`` (or
``disable=all``) with a comment justifying it.  Scoped rules only fire on
library code (paths under ``src/repro/``); the CLI front end is
:mod:`tools.sradlint`.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import ERROR, Finding, LintReport, Rule

__all__ = [
    "AST_RULES",
    "AstRule",
    "ast_rule_catalogue",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Pseudo rule id attached to unparseable files (not suppressible).
SYNTAX_ERROR_RULE = "ast.syntax-error"

_SUPPRESS_RE = re.compile(r"#\s*sradlint:\s*disable=([A-Za-z0-9_.,\- ]+)")


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_library_code(path: str) -> bool:
    """True for paths inside the installable package (``src/repro/``)."""
    posix = _posix(path)
    return "src/repro/" in posix or posix.startswith("repro/")


def _dotted(func: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` call targets as ``("a", "b", "c")``; empty when not a chain."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function's body, not descending into nested functions.

    A nested ``def`` inside an ``async def`` is its own (synchronous)
    execution context -- the service's reader-pump helpers are exactly that
    pattern -- so async-context rules must stop at function boundaries.
    """
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class AstRule(Rule):
    """A rule over one parsed module."""

    def applies_to(self, path: str) -> bool:
        """Whether this rule is in scope for ``path`` (default: everywhere)."""
        return True

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError


#: Calls that block the thread (and therefore the event loop) when made
#: directly from an ``async def`` body.
_BLOCKING_CALLS: Set[Tuple[str, ...]] = {
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
}


class AsyncBlockingRule(AstRule):
    id = "ast.async-blocking"
    severity = ERROR
    description = (
        "blocking call (time.sleep, subprocess.*, socket waits, open()) "
        "directly inside an async def body"
    )

    def applies_to(self, path: str) -> bool:
        return _is_library_code(path)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for stmt in _own_body(node):
                if not isinstance(stmt, ast.Call):
                    continue
                dotted = _dotted(stmt.func)
                blocking = (
                    dotted[-2:] in _BLOCKING_CALLS
                    or dotted == ("open",)
                )
                if blocking:
                    yield self.finding(
                        f"blocking call {'.'.join(dotted)}() inside "
                        f"async def {node.name}(); use asyncio equivalents "
                        "or asyncio.to_thread",
                        location=f"{path}:{stmt.lineno}",
                        line=stmt.lineno,
                    )


class PrintCallRule(AstRule):
    id = "ast.print-call"
    severity = ERROR
    description = "bare print() in library code (use repro.obs.log)"

    def applies_to(self, path: str) -> bool:
        # The CLI front end's job *is* writing to stdout; everything else in
        # the package must keep stdout clean for piped consumers.
        posix = _posix(path)
        return _is_library_code(path) and not posix.endswith("repro/cli.py")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    "print() in library code; route diagnostics through "
                    "repro.obs.log (structured, stderr)",
                    location=f"{path}:{node.lineno}",
                    line=node.lineno,
                )


_KEY_FUNC_RE = re.compile(r"key|hash|fingerprint|digest|to_spec")


class NondeterministicKeyRule(AstRule):
    id = "ast.nondeterministic-key"
    severity = ERROR
    description = (
        "time/random/uuid/datetime.now inside cache-key/hashing functions"
    )

    def applies_to(self, path: str) -> bool:
        return _is_library_code(path)

    @staticmethod
    def _nondeterministic(dotted: Tuple[str, ...]) -> bool:
        if not dotted:
            return False
        if dotted[0] == "random":
            return True
        if dotted[0] == "time" and dotted[-1] in (
            "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"
        ):
            return True
        if dotted[0] == "uuid" and dotted[-1] in ("uuid1", "uuid4"):
            return True
        if dotted[0] == "datetime" and dotted[-1] in ("now", "utcnow", "today"):
            return True
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _KEY_FUNC_RE.search(node.name):
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Call):
                    continue
                dotted = _dotted(stmt.func)
                if self._nondeterministic(dotted):
                    yield self.finding(
                        f"nondeterministic call {'.'.join(dotted)}() inside "
                        f"{node.name}(); keys and digests must be pure "
                        "functions of their inputs",
                        location=f"{path}:{stmt.lineno}",
                        line=stmt.lineno,
                    )


class MutableDefaultRule(AstRule):
    id = "ast.mutable-default"
    severity = ERROR
    description = "mutable default argument (shared across all calls)"

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
        )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        f"mutable default argument in {name}(); default to "
                        "None and create the object inside the function",
                        location=f"{path}:{default.lineno}",
                        line=default.lineno,
                    )


class DeadImportRule(AstRule):
    id = "ast.dead-import"
    severity = ERROR
    description = "import never referenced in the module (nor via __all__)"

    @staticmethod
    def bindings(tree: ast.AST) -> Dict[str, Tuple[int, str]]:
        """Map bound name -> (line, display) for every import in the module."""
        bindings: Dict[str, Tuple[int, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    bindings[bound] = (node.lineno, f"import {alias.name}")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue  # star imports are opaque; skip them
                    bound = alias.asname or alias.name
                    bindings[bound] = (
                        node.lineno,
                        f"from {'.' * node.level}{node.module or ''}"
                        f" import {alias.name}",
                    )
        return bindings

    @staticmethod
    def used_names(tree: ast.AST) -> Set[str]:
        used: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Assign):
                # Names listed in __all__ count as (re-)exported uses.
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "__all__" in targets:
                    for element in ast.walk(node.value):
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            used.add(element.value)
        return used

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        bindings = self.bindings(tree)
        if not bindings:
            return
        used = self.used_names(tree)
        for bound, (line, display) in sorted(
            bindings.items(), key=lambda kv: kv[1][0]
        ):
            if bound not in used:
                yield self.finding(
                    f"unused import: {display} (as {bound})",
                    location=f"{path}:{line}",
                    line=line,
                )


class SilentExceptRule(AstRule):
    id = "ast.silent-except"
    severity = ERROR
    description = (
        "except handler whose entire body is pass/... in library code "
        "(swallows errors silently; log, narrow, or justify per line)"
    )

    def applies_to(self, path: str) -> bool:
        return _is_library_code(path)

    @staticmethod
    def _is_silent(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ) and stmt.value.value is Ellipsis:
                continue
            return False
        return True

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_silent(node):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "BaseException"
            )
            yield self.finding(
                f"except {caught} handler silently swallows the error; "
                "log it, handle it, or add a justified per-line disable",
                location=f"{path}:{node.lineno}",
                line=node.lineno,
            )


#: Call-name substrings that mark a retry loop as disciplined: it waits
#: (backoff/sleep/poll) or consults a budget/policy before looping again.
_RETRY_DISCIPLINE_RE = re.compile(
    r"backoff|sleep|wait|poll|retry|budget|deadline|attempt"
)


class BareRetryLoopRule(AstRule):
    id = "ast.bare-retry-loop"
    severity = ERROR
    description = (
        "while True loop that catches an exception and continues with no "
        "backoff/budget call (retry storm; use resilience.retry.RetryPolicy)"
    )

    def applies_to(self, path: str) -> bool:
        return _is_library_code(path)

    @classmethod
    def _handler_retries(cls, handler: ast.ExceptHandler) -> bool:
        """Whether the handler loops again (contains a top-loop continue)."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Continue):
                return True
            # A nested loop owns its own continue statements; stop there.
            if isinstance(node, (ast.While, ast.For)) and node is not handler:
                return False
        return False

    @classmethod
    def _is_disciplined(cls, loop: ast.While) -> bool:
        """Whether the loop shows any bound: a wait, a budget, a counter."""
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted and _RETRY_DISCIPLINE_RE.search(".".join(dotted).lower()):
                    return True
            # An attempt counter compared or raised on is a budget too.
            if isinstance(node, (ast.Name, ast.Attribute)):
                text = getattr(node, "attr", None) or getattr(node, "id", "")
                if _RETRY_DISCIPLINE_RE.search(text.lower()):
                    return True
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            infinite = isinstance(test, ast.Constant) and test.value is True
            if not infinite:
                continue
            handlers = [
                handler
                for stmt in node.body
                if isinstance(stmt, ast.Try)
                for handler in stmt.handlers
            ]
            retrying = [h for h in handlers if self._handler_retries(h)]
            if not retrying:
                continue
            if self._is_disciplined(node):
                continue
            yield self.finding(
                "while True retry loop with no backoff or budget; route "
                "retries through repro.resilience.retry (RetryPolicy / "
                "call_with_retry)",
                location=f"{path}:{node.lineno}",
                line=node.lineno,
            )


#: All AST rules, in reporting order.
AST_RULES: Tuple[AstRule, ...] = (
    AsyncBlockingRule(),
    PrintCallRule(),
    NondeterministicKeyRule(),
    MutableDefaultRule(),
    DeadImportRule(),
    SilentExceptRule(),
    BareRetryLoopRule(),
)


def ast_rule_catalogue() -> List[Tuple[str, str, str]]:
    """``(id, severity, description)`` for every AST rule."""
    return [(r.id, r.severity, r.description) for r in AST_RULES]


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line ``# sradlint: disable=<rule>[,<rule>]`` directives."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            # Take the first token of each comma-separated entry, so trailing
            # justification text ("disable=<rule> -- why") does not leak in.
            names = set()
            for entry in match.group(1).split(","):
                tokens = entry.split()
                if tokens:
                    names.add(tokens[0])
            table[lineno] = names
    return table


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    rules: Optional[Sequence[AstRule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one module's source; return ``(findings, suppressed_count)``.

    ``path`` drives rule scoping and finding locations -- tests lint string
    fixtures under virtual paths like ``src/repro/service/x.py`` to exercise
    scoped rules without touching the tree.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        finding = Finding(
            rule=SYNTAX_ERROR_RULE,
            severity=ERROR,
            message=f"syntax error: {error.msg}",
            location=f"{path}:{error.lineno or 0}",
            line=error.lineno or 0,
        )
        return [finding], 0
    findings: List[Finding] = []
    for rule in rules if rules is not None else AST_RULES:
        if rule.applies_to(path):
            findings.extend(rule.check(tree, path))
    disabled = _suppressions(source)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        names = disabled.get(finding.line, ())
        if finding.rule in names or "all" in names:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_file(
    path: str, *, rules: Optional[Sequence[AstRule]] = None
) -> Tuple[List[Finding], int]:
    """Lint one file on disk; return ``(findings, suppressed_count)``."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``*.py`` under the given files/directories, sorted."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [
                d for d in dirnames if not d.startswith((".", "__pycache__"))
            ]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(
    paths: Sequence[str], *, rules: Optional[Sequence[AstRule]] = None
) -> LintReport:
    """Lint every Python file under ``paths`` into one :class:`LintReport`."""
    report = LintReport(target=" ".join(paths))
    for path in iter_python_files(paths):
        report.checked += 1
        findings, suppressed = lint_file(path, rules=rules)
        report.extend(findings)
        report.suppressed += suppressed
    report.sort()
    return report
