"""Design-rule checker over the :class:`~repro.hdl.netlist.Netlist` IR.

``Netlist.validate()`` raises on the first missing driver; this module is the
reporting counterpart: it walks the whole structure, collects *every*
violation as a :class:`~repro.lint.core.Finding` and never mutates or raises.
That makes it safe to run on the flow's working copy after optimization and
buffering -- the netlists whose area/delay numbers the paper figures quote --
and on raw generated netlists in tests.

Rule catalogue (ids are stable; see README "Static analysis"):

========================  ========  ==================================================
id                        severity  catches
========================  ========  ==================================================
``design.comb-loop``      error     combinational cycles (simulation order undefined)
``design.undriven-net``   error     cell input or output port fed by an undriven net
``design.multi-driven``   error     net driven by >1 output pin (or pin + input port)
``design.floating-input`` error     unconnected declared pin / pin bound to a stale
                                    net object no longer in the netlist's tables
``design.dangling-net``   warning   net with no driver, no loads and no port role
                                    (rewrite debris ``prune_dangling_nets`` removes)
``design.unknown-cell``   error     cell type the active library cannot characterise
``design.fanout-limit``   warning   net whose data fanout exceeds the buffering limit
``design.missing-clock``  error     flip-flop whose CLK pin is absent or undriven
``design.data-on-clk``    error     cell-driven (data) net loading a flop's CLK pin
``design.fsm-unreachable``  warning   FSM states BFS cannot reach from reset
========================  ========  ==================================================

At lint level >= 2 two SAT-backed semantic rules join in (they prove
properties with the :mod:`repro.verify` solver, so they cost real time):

==============================  ========  ========================================
id                              severity  catches
==============================  ========  ========================================
``design.sat-const-net``        warning   non-tie cell output provably constant
``design.sat-redundant-logic``  info      cells provably computing equal functions
==============================  ========  ========================================

Raw generated netlists routinely carry *driven-but-unused* nets (carry-outs
of the MSB adder stage, spare constants); those are dead logic for the DCE
pass, not structural faults, so no rule flags them -- the clean-sweep
invariant (zero findings on every registered style x workload) holds at O0
and O1 alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.hdl.netlist import Cell, Net, Netlist
from repro.hdl.primitives import PRIMITIVES
from repro.lint.core import (
    ERROR,
    INFO,
    WARNING,
    Finding,
    LintReport,
    Rule,
    filter_suppressed,
)
from repro.obs import metrics, span

__all__ = [
    "DESIGN_RULES",
    "SAT_DESIGN_RULES",
    "DesignContext",
    "DesignRule",
    "design_rule_catalogue",
    "lint_netlist",
    "lint_netlist_if_enabled",
    "rules_for_level",
]


@dataclass
class DesignContext:
    """Everything a design rule may inspect.

    ``library``/``max_fanout`` gate the rules that need them (no library ->
    no characterisation check); ``fsm`` is supplied only by FSM-style
    generators via ``AddressGeneratorDesign.lint_context()``.
    """

    netlist: Netlist
    library: Optional[object] = None
    max_fanout: Optional[int] = None
    fsm: Optional[object] = None

    def location(self, element: str) -> str:
        """Finding location string ``<netlist>.<element>``."""
        return f"{self.netlist.name}.{element}"


class DesignRule(Rule):
    """A rule over one :class:`DesignContext`."""

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        raise NotImplementedError


def _known_spec(cell: Cell):
    """``cell.spec`` or ``None`` for cell types outside ``PRIMITIVES``.

    Broken-fixture cells (and hypothetical future imports) may carry types
    the primitive table does not know; rules that need the pin declaration
    skip those and leave the reporting to :class:`UnknownCellRule`.
    """
    return PRIMITIVES.get(cell.cell_type)


def _is_clk_load(cell: Cell, pin: str) -> bool:
    spec = _known_spec(cell)
    return pin == "CLK" and spec is not None and spec.sequential


class CombLoopRule(DesignRule):
    id = "design.comb-loop"
    severity = ERROR
    description = "combinational cycle (no valid evaluation order exists)"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        # Same Kahn levelisation as topological_combinational_order, but
        # reporting the leftover (cyclic) cells instead of raising.
        comb = [
            c for c in ctx.netlist.cells.values()
            if (spec := _known_spec(c)) is not None and not spec.sequential
        ]
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[Cell]] = {}
        for cell in comb:
            count = 0
            for net in cell.input_nets().values():
                driver = net.driver
                if driver is None:
                    continue
                driver_cell, _ = driver
                driver_spec = _known_spec(driver_cell)
                if driver_spec is not None and not driver_spec.sequential:
                    count += 1
                    dependents.setdefault(driver_cell.name, []).append(cell)
            indegree[cell.name] = count
        ready = [c for c in comb if indegree[c.name] == 0]
        ordered = 0
        while ready:
            cell = ready.pop()
            ordered += 1
            for dep in dependents.get(cell.name, []):
                indegree[dep.name] -= 1
                if indegree[dep.name] == 0:
                    ready.append(dep)
        if ordered == len(comb):
            return
        cyclic = sorted(
            name for name, cell in ((c.name, c) for c in comb)
            if indegree[name] > 0
        )
        yield self.finding(
            f"combinational loop through {len(cyclic)} cell(s): "
            f"{', '.join(cyclic[:6])}{'...' if len(cyclic) > 6 else ''}",
            location=ctx.location(cyclic[0]),
        )


class UndrivenNetRule(DesignRule):
    id = "design.undriven-net"
    severity = ERROR
    description = "cell input or output port fed by a net with no driver"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        for cell in ctx.netlist.cells.values():
            if _known_spec(cell) is None:
                continue  # reported by design.unknown-cell
            for pin, net in cell.input_nets().items():
                if not net.has_driver:
                    yield self.finding(
                        f"net {net.name!r} feeding {cell.name}.{pin} has no driver",
                        location=ctx.location(net.name),
                    )
        for port, net in ctx.netlist.outputs.items():
            if not net.has_driver:
                yield self.finding(
                    f"output port {port!r} net {net.name!r} has no driver",
                    location=ctx.location(net.name),
                )


class MultiDrivenRule(DesignRule):
    id = "design.multi-driven"
    severity = ERROR
    description = "net driven by more than one output pin (or pin + input port)"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        drivers: Dict[int, List[str]] = {}
        nets_by_id: Dict[int, Net] = {}
        for cell in ctx.netlist.cells.values():
            if _known_spec(cell) is None:
                continue  # reported by design.unknown-cell
            for pin, net in cell.output_nets().items():
                drivers.setdefault(id(net), []).append(f"{cell.name}.{pin}")
                nets_by_id[id(net)] = net
        for net_id, pins in sorted(drivers.items(), key=lambda kv: nets_by_id[kv[0]].name):
            net = nets_by_id[net_id]
            if net.is_input:
                yield self.finding(
                    f"input port net {net.name!r} also driven by {pins[0]}",
                    location=ctx.location(net.name),
                )
            if len(pins) > 1:
                yield self.finding(
                    f"net {net.name!r} driven by {len(pins)} pins: {', '.join(sorted(pins))}",
                    location=ctx.location(net.name),
                )


class FloatingInputRule(DesignRule):
    id = "design.floating-input"
    severity = ERROR
    description = "unconnected declared pin, or pin bound to a stale net object"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        table = ctx.netlist.nets
        for cell in ctx.netlist.cells.values():
            spec = _known_spec(cell)
            if spec is not None:
                for pin in (*spec.inputs, *spec.outputs):
                    if pin not in cell.pins:
                        yield self.finding(
                            f"{cell.name}.{pin} ({cell.cell_type}) is unconnected",
                            location=ctx.location(cell.name),
                        )
            for pin, net in cell.pins.items():
                if table.get(net.name) is not net:
                    yield self.finding(
                        f"{cell.name}.{pin} bound to net {net.name!r} that is "
                        "no longer in the netlist (stale after a rewrite)",
                        location=ctx.location(cell.name),
                    )


class DanglingNetRule(DesignRule):
    id = "design.dangling-net"
    severity = WARNING
    description = "net with no driver, no loads and no port role (rewrite debris)"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        # Exactly the prune_dangling_nets criterion: driven-but-unused nets
        # are dead *logic* (DCE's business), not structural debris.
        aliased = {id(net) for net in ctx.netlist.outputs.values()}
        for name, net in ctx.netlist.nets.items():
            if (
                net.driver is None
                and not net.loads
                and not net.is_input
                and id(net) not in aliased
            ):
                yield self.finding(
                    f"net {name!r} has no driver, no loads and no port role; "
                    "prune_dangling_nets() would remove it",
                    location=ctx.location(name),
                )


class UnknownCellRule(DesignRule):
    id = "design.unknown-cell"
    severity = ERROR
    description = "cell type the active cell library cannot characterise"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        for cell in ctx.netlist.cells.values():
            if _known_spec(cell) is None:
                yield self.finding(
                    f"cell {cell.name!r} has unknown primitive type {cell.cell_type!r}",
                    location=ctx.location(cell.name),
                )
            elif ctx.library is not None and cell.cell_type not in ctx.library:
                yield self.finding(
                    f"cell {cell.name!r} type {cell.cell_type!r} is not "
                    f"characterised by library {getattr(ctx.library, 'name', '?')!r}",
                    location=ctx.location(cell.name),
                )


class FanoutLimitRule(DesignRule):
    id = "design.fanout-limit"
    severity = WARNING
    description = "net whose data fanout exceeds the active buffering limit"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        if ctx.max_fanout is None:
            return
        for name, net in ctx.netlist.nets.items():
            fanout = len(net.data_loads())
            if fanout > ctx.max_fanout:
                yield self.finding(
                    f"net {name!r} has data fanout {fanout} > limit {ctx.max_fanout}",
                    location=ctx.location(name),
                )


class MissingClockRule(DesignRule):
    id = "design.missing-clock"
    severity = ERROR
    description = "flip-flop whose CLK pin is absent or fed by an undriven net"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        for cell in ctx.netlist.cells.values():
            spec = _known_spec(cell)
            if spec is None or not spec.sequential:
                continue
            clk = cell.pins.get("CLK")
            if clk is None:
                yield self.finding(
                    f"flip-flop {cell.name!r} has no CLK connection",
                    location=ctx.location(cell.name),
                )
            elif not clk.has_driver:
                yield self.finding(
                    f"flip-flop {cell.name!r} CLK net {clk.name!r} has no driver",
                    location=ctx.location(cell.name),
                )


class DataOnClkRule(DesignRule):
    id = "design.data-on-clk"
    severity = ERROR
    description = "cell-driven (data) net loading a flip-flop's CLK pin"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        # The clock network must come straight from a top-level clock input:
        # timing and power deliberately ignore CLK loads (Net.data_loads), so
        # a gated/derived clock would be silently mis-modelled.
        seen: set = set()
        for cell in ctx.netlist.cells.values():
            for pin, net in cell.pins.items():
                if not _is_clk_load(cell, pin) or net.driver is None:
                    continue
                if id(net) in seen:
                    continue
                seen.add(id(net))
                driver_cell, driver_pin = net.driver
                yield self.finding(
                    f"net {net.name!r} drives CLK of {cell.name!r} but is "
                    f"itself driven by {driver_cell.name}.{driver_pin}; "
                    "clocks must be top-level inputs",
                    location=ctx.location(net.name),
                )


class FsmUnreachableRule(DesignRule):
    id = "design.fsm-unreachable"
    severity = WARNING
    description = "FSM states unreachable from the reset state"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        fsm = ctx.fsm
        if fsm is None:
            return
        reached = {fsm.initial_state}
        frontier = [fsm.initial_state]
        while frontier:
            nxt = fsm.next_state[frontier.pop()]
            if nxt not in reached:
                reached.add(nxt)
                frontier.append(nxt)
        unreachable = sorted(set(range(fsm.num_states)) - reached)
        if unreachable:
            shown = ", ".join(str(s) for s in unreachable[:8])
            yield self.finding(
                f"{len(unreachable)} FSM state(s) unreachable from reset "
                f"state {fsm.initial_state}: {shown}"
                f"{'...' if len(unreachable) > 8 else ''}",
                location=ctx.location(getattr(fsm, 'name', 'fsm')),
            )


# ---------------------------------------------------------------------------
# SAT-backed semantic rules (lint level >= 2)
# ---------------------------------------------------------------------------

#: Per-query effort bound: an inconclusive query silently produces no
#: finding, so the rules stay sound (never wrong) and bounded (never slow).
_SAT_CONFLICT_LIMIT = 1_000
#: Cap on equality proofs attempted per netlist by the redundancy rule.
_SAT_PAIR_BUDGET = 32
_SIG_WORD = (1 << 64) - 1


def _signature_patterns(names: Sequence[str]) -> Dict[str, int]:
    """Deterministic 64-bit stimulus words for the free variables.

    A fixed-seed LCG keyed on sorted name order -- no ``random`` -- so the
    signature buckets (and therefore the findings) are reproducible.
    """
    state = 0x243F6A8885A308D3  # pi digits; any fixed odd-ish seed works
    patterns: Dict[str, int] = {}
    for name in sorted(names):
        state = (state * 6364136223846793005 + 1442695040888963407) & _SIG_WORD
        patterns[name] = state
    return patterns


def _simulate_signatures(netlist: Netlist) -> Dict[str, int]:
    """Bit-parallel 64-sample simulation: net name -> 64-bit signature."""
    from repro.verify.cnf import comb_rows

    free = {net.name for net in netlist.inputs.values()}
    free.update(flop.pins["Q"].name for flop in netlist.sequential_cells())
    free.update(
        cell.pins[cell.spec.outputs[0]].name
        for cell in netlist.combinational_cells()
        if cell.cell_type in ("TIE0", "TIE1")
    )
    signatures = dict(_signature_patterns(free))
    for cell in netlist.topological_combinational_order():
        if cell.cell_type in ("TIE0", "TIE1"):
            continue
        spec = cell.spec
        words = [signatures.get(cell.pins[p].name, 0) for p in spec.inputs]
        out = 0
        for bits, value in comb_rows(cell.cell_type):
            if not value:
                continue
            term = _SIG_WORD
            for word, bit in zip(words, bits):
                term &= word if bit else ~word & _SIG_WORD
            out |= term
        signatures[cell.pins[spec.outputs[0]].name] = out
    return signatures


def _comb_cone_cells(netlist: Netlist) -> Dict[str, frozenset]:
    """Net name -> names of combinational cells in its transitive fanin."""
    cones: Dict[str, frozenset] = {}
    for cell in netlist.topological_combinational_order():
        spec = cell.spec
        cone = {cell.name}
        for pin in spec.inputs:
            cone.update(cones.get(cell.pins[pin].name, ()))
        cones[cell.pins[spec.outputs[0]].name] = frozenset(cone)
    return cones


class SatConstNetRule(DesignRule):
    id = "design.sat-const-net"
    severity = WARNING
    description = "non-tie cell output provably constant (SAT; foldable logic)"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        from repro.verify.cnf import CnfBuilder, encode_netlist

        netlist = ctx.netlist
        try:
            order = netlist.topological_combinational_order()
        except Exception:
            return  # comb loop etc.; structural rules already report it
        builder = CnfBuilder()
        # Tie outputs stay free variables: a net is only "provably constant"
        # when its *logic* forces the value, not when it is deliberately
        # tied off (const strides, tied EN/SET/RST pins are a feature).
        lits = encode_netlist(builder, netlist, free_ties=True)
        solver = builder.solver
        constants: Dict[str, int] = {}
        for cell in order:
            if cell.cell_type in ("TIE0", "TIE1"):
                continue
            net_name = cell.pins[cell.spec.outputs[0]].name
            lit = lits[net_name]
            can_be_1 = solver.solve([lit], conflict_limit=_SAT_CONFLICT_LIMIT)
            if can_be_1 is False:
                constants[net_name] = 0
                continue
            if can_be_1 is None:
                continue
            can_be_0 = solver.solve([-lit], conflict_limit=_SAT_CONFLICT_LIMIT)
            if can_be_0 is False:
                constants[net_name] = 1
        # Report only the *roots* of each constant cone: a cell whose output
        # is constant while none of its inputs are, so one redundancy does
        # not cascade into a finding per downstream cell.
        for cell in order:
            spec = cell.spec
            if cell.cell_type in ("TIE0", "TIE1"):
                continue
            net_name = cell.pins[spec.outputs[0]].name
            if net_name not in constants:
                continue
            if any(cell.pins[p].name in constants for p in spec.inputs):
                continue
            yield self.finding(
                f"net {net_name!r} (driven by {cell.cell_type} {cell.name!r}) "
                f"is provably constant {constants[net_name]}",
                location=ctx.location(net_name),
            )


class SatRedundantLogicRule(DesignRule):
    id = "design.sat-redundant-logic"
    severity = INFO
    description = "two cells provably compute the same function (beyond structural CSE)"

    def check(self, ctx: DesignContext) -> Iterator[Finding]:
        from repro.verify.cnf import CnfBuilder, encode_netlist

        netlist = ctx.netlist
        try:
            order = netlist.topological_combinational_order()
        except Exception:
            return
        # Candidates: real logic only.  BUF outputs equal their input by
        # construction (buffer trees are deliberate), ties are constants.
        candidates = [
            c for c in order if c.cell_type not in ("TIE0", "TIE1", "BUF")
        ]
        if len(candidates) < 2:
            return
        signatures = _simulate_signatures(netlist)
        buckets: Dict[int, List[Cell]] = {}
        for cell in candidates:
            net_name = cell.pins[cell.spec.outputs[0]].name
            buckets.setdefault(signatures[net_name], []).append(cell)
        pairs = []
        for signature in sorted(buckets):
            group = sorted(buckets[signature], key=lambda c: c.name)
            anchor = group[0]
            for other in group[1:]:
                pairs.append((anchor, other))
        if not pairs:
            return
        cones = _comb_cone_cells(netlist)
        builder = CnfBuilder()
        lits = encode_netlist(builder, netlist, free_ties=True)
        budget = _SAT_PAIR_BUDGET
        for anchor, other in pairs:
            if budget <= 0:
                break
            # Structural duplicates (same type, same input nets) are the
            # sharing pass's territory; only semantic redundancy is news.
            if anchor.cell_type == other.cell_type and {
                p: anchor.pins[p].name for p in anchor.spec.inputs
            } == {p: other.pins[p].name for p in other.spec.inputs}:
                continue
            net_a = anchor.pins[anchor.spec.outputs[0]].name
            net_b = other.pins[other.spec.outputs[0]].name
            # A cell feeding the other (buffer/inverter chains) is expected
            # structure, not redundancy.
            if anchor.name in cones.get(net_b, ()) or other.name in cones.get(
                net_a, ()
            ):
                continue
            budget -= 1
            diff = builder.xor_lit(lits[net_a], lits[net_b])
            verdict = builder.solver.solve(
                [diff], conflict_limit=_SAT_CONFLICT_LIMIT
            )
            if verdict is False:
                yield self.finding(
                    f"{anchor.cell_type} {anchor.name!r} and "
                    f"{other.cell_type} {other.name!r} provably compute the "
                    f"same function (nets {net_a!r}, {net_b!r})",
                    location=ctx.location(net_a),
                )


#: All design rules, in reporting order.  The id -> rule mapping is the
#: stable public surface: tests pin it, suppressions name it.
DESIGN_RULES: Tuple[DesignRule, ...] = (
    CombLoopRule(),
    UndrivenNetRule(),
    MultiDrivenRule(),
    FloatingInputRule(),
    DanglingNetRule(),
    UnknownCellRule(),
    FanoutLimitRule(),
    MissingClockRule(),
    DataOnClkRule(),
    FsmUnreachableRule(),
)

#: SAT-backed semantic rules, active at lint level >= 2 only: they prove
#: properties with the :mod:`repro.verify` solver, which is orders of
#: magnitude costlier than the structural walk, and raw O0 netlists
#: legitimately carry foldable logic that O1 removes -- so the clean-sweep
#: invariant above is pinned at level 1.
SAT_DESIGN_RULES: Tuple[DesignRule, ...] = (
    SatConstNetRule(),
    SatRedundantLogicRule(),
)


def rules_for_level(level: int) -> Tuple[DesignRule, ...]:
    """The rule set a given ``spec.lint`` level activates."""
    if level >= 2:
        return DESIGN_RULES + SAT_DESIGN_RULES
    return DESIGN_RULES


def design_rule_catalogue() -> List[Tuple[str, str, str]]:
    """``(id, severity, description)`` for every design rule."""
    return [
        (r.id, r.severity, r.description)
        for r in DESIGN_RULES + SAT_DESIGN_RULES
    ]


def lint_netlist(
    netlist: Netlist,
    *,
    library: Optional[object] = None,
    max_fanout: Optional[int] = None,
    fsm: Optional[object] = None,
    suppress: Sequence[str] = (),
    rules: Optional[Iterable[DesignRule]] = None,
) -> LintReport:
    """Run the design rules over ``netlist`` and return a :class:`LintReport`.

    Never mutates the netlist and never raises on structural problems --
    every violation becomes a finding.  ``suppress`` drops findings by rule
    id (report-level; the count lands in ``report.suppressed``).
    """
    ctx = DesignContext(
        netlist=netlist, library=library, max_fanout=max_fanout, fsm=fsm
    )
    with span("lint.design"):
        findings: List[Finding] = []
        for rule in rules if rules is not None else DESIGN_RULES:
            findings.extend(rule.check(ctx))
        kept, dropped = filter_suppressed(findings, suppress)
        report = LintReport(
            target=netlist.name,
            findings=kept,
            suppressed=dropped,
            checked=len(netlist.cells) + len(netlist.nets),
        )
        report.sort()
    if report.findings:
        metrics.incr("lint.findings", len(report.findings))
        if report.error_count:
            metrics.incr("lint.errors", report.error_count)
    return report


def lint_netlist_if_enabled(netlist, spec, *, fsm=None, suppress=()):
    """Flow-facing gate: lint only when ``spec.lint`` is set, else ``None``.

    The disabled branch is a single attribute test -- the floor test in
    ``tests/test_lint_flow.py`` pins that it stays immeasurable, mirroring
    the NULL_SPAN contract in :mod:`repro.obs`.
    """
    if not spec.lint:
        return None
    return lint_netlist(
        netlist,
        library=spec.resolve_library(),
        max_fanout=spec.max_fanout,
        fsm=fsm,
        suppress=suppress,
        rules=rules_for_level(spec.lint),
    )
