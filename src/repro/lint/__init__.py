"""Static analysis: design-rule checking and repo-invariant linting.

Two targets share one rule-engine core (:mod:`repro.lint.core`):

* :mod:`repro.lint.design` -- structural design rules over the
  :class:`~repro.hdl.netlist.Netlist` IR (combinational loops, undriven or
  multiply-driven nets, clock-network discipline, FSM reachability), run as
  an optional post-synthesis flow stage (``FlowSpec(lint=1)`` /
  ``sradgen --lint``).
* :mod:`repro.lint.ast_rules` -- stdlib-AST rules enforcing repo invariants
  (no blocking calls in async bodies, no prints in library code, no
  nondeterminism in cache-key paths, no mutable defaults, no dead imports),
  driven by ``tools/sradlint.py`` in CI.
"""

from repro.lint.ast_rules import (
    AST_RULES,
    AstRule,
    ast_rule_catalogue,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.core import (
    ERROR,
    INFO,
    WARNING,
    Finding,
    LintReport,
    Rule,
    severity_rank,
)
from repro.lint.design import (
    DESIGN_RULES,
    DesignContext,
    DesignRule,
    design_rule_catalogue,
    lint_netlist,
    lint_netlist_if_enabled,
)

__all__ = [
    "AST_RULES",
    "AstRule",
    "DESIGN_RULES",
    "DesignContext",
    "DesignRule",
    "ERROR",
    "Finding",
    "INFO",
    "LintReport",
    "Rule",
    "WARNING",
    "ast_rule_catalogue",
    "design_rule_catalogue",
    "lint_file",
    "lint_netlist",
    "lint_netlist_if_enabled",
    "lint_paths",
    "lint_source",
    "severity_rank",
]
