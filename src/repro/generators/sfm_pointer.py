"""SFM-style pointer address generator (Aloqeely's architecture).

The Sequential FIFO Memory replaces the address decoder with two one-hot
shift registers: a head pointer selecting the next cell to read and a tail
pointer selecting the next cell to write.  This module elaborates that
pointer pair structurally so the ``fifo`` row of Table 3 has a faithful prior
-art data point and so its one-dimensional, one-hot cost can be compared with
the SRAG's two-hot cost.

The design only supports incremental (FIFO) access -- asking it to implement
anything else raises immediately, demonstrating the limitation the paper
lists as the motivation for the SRAG.
"""

from __future__ import annotations

from typing import List, Optional

from repro.generators.base import AddressGeneratorDesign
from repro.hdl.components.shift_register import build_token_shift_register
from repro.hdl.netlist import Bus, Netlist, NetlistError
from repro.hdl.simulator import Simulator
from repro.workloads.sequences import AddressSequence

__all__ = ["SfmPointerGenerator"]


class SfmPointerGenerator(AddressGeneratorDesign):
    """Head/tail one-hot pointer registers of a Sequential FIFO Memory."""

    style = "SFM"

    def __init__(self, sequence: AddressSequence, *, name: Optional[str] = None):
        if not sequence.is_incremental():
            raise NetlistError(
                "the SFM is a FIFO memory and only supports incremental "
                f"access; sequence {sequence.name!r} is not incremental"
            )
        super().__init__(sequence, name=name or f"sfm_{sequence.name}")
        self.depth = sequence.length

    def elaborate(self) -> Netlist:
        netlist = Netlist(_sanitise(self.name))
        clk = netlist.add_input("clk")
        next_read = netlist.add_input("next")
        next_write = netlist.add_input("next_write")
        reset = netlist.add_input("reset")

        pointers = []
        for role, advance in (("head", next_read), ("tail", next_write)):
            serial_in = netlist.new_net(f"{role}_in")
            register = build_token_shift_register(
                netlist,
                self.depth,
                clk,
                serial_in,
                enable=advance,
                reset=reset,
                token_at=0,
                prefix=role,
            )
            netlist.add_cell("BUF", A=register.serial_out, Y=serial_in)
            netlist.add_output_bus(f"{role}_sel", register.outputs)
            pointers.append(register)
        return netlist

    def simulate(self, cycles: Optional[int] = None) -> List[int]:
        """Cell indices selected by the head (read) pointer over time."""
        steps = cycles if cycles is not None else self.sequence.length
        netlist = self.netlist
        sim = Simulator(netlist)
        sim.reset()
        sim.poke("next", 1)
        sim.poke("next_write", 0)
        head_lines = Bus([netlist.outputs[f"head_sel_{i}"] for i in range(self.depth)])
        addresses: List[int] = []
        for _ in range(steps):
            sim.settle()
            index = sim.peek_onehot(head_lines)
            if index is None:
                raise RuntimeError("head pointer lost its token")
            addresses.append(index)
            sim.step()
        return addresses


def _sanitise(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"n_{cleaned}"
    return cleaned
