"""Arithmetic-based address generator.

The second conventional style the paper mentions (via the ADOPT work of
Miranda et al.): instead of decoding loop counters, an *accumulator* register
holds the current binary address and an adder applies the stride to reach the
next one.  For sequences with a single constant stride (raster scans, FIFOs)
this is extremely cheap; for sequences whose stride changes with position a
stride-selection function of a position counter is needed, and that is where
the style loses to counter-based generation for regular block patterns --
the reason the paper benchmarks against CntAG rather than this generator.

The implementation keeps the full generality: a position counter (modulo the
sequence length) indexes a two-level-minimised stride table feeding the
adder.  When every stride is identical the position counter and table
disappear and the design collapses to the classic accumulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.generators.base import AddressGeneratorDesign
from repro.hdl.components.adder import build_ripple_adder
from repro.hdl.components.counter import build_binary_counter
from repro.hdl.components.decoder import build_decoder
from repro.hdl.netlist import Bus, Net, Netlist, NetlistError
from repro.hdl.simulator import Simulator
from repro.synth.logic.minimize import minimize
from repro.synth.logic.synthesize import sop_to_netlist
from repro.synth.logic.truth_table import TruthTable
from repro.workloads.sequences import AddressSequence

__all__ = ["ArithmeticAddressGenerator"]


class ArithmeticAddressGenerator(AddressGeneratorDesign):
    """Accumulator-plus-stride-table address generator."""

    style = "ArithAG"

    def __init__(
        self,
        sequence: AddressSequence,
        *,
        include_decoders: bool = False,
        name: Optional[str] = None,
    ):
        size = sequence.rows * sequence.cols
        if size & (size - 1):
            raise NetlistError(
                "the arithmetic generator requires a power-of-two array so the "
                f"accumulator can wrap naturally, got {sequence.rows}x{sequence.cols}"
            )
        super().__init__(sequence, name=name or f"arith_{sequence.name}")
        self.include_decoders = include_decoders
        self.address_width = max(1, (size - 1).bit_length())
        self._strides = self._compute_strides()

    def _compute_strides(self) -> List[int]:
        """Stride from each position to the next, modulo the array size."""
        size = self.sequence.rows * self.sequence.cols
        linear = self.sequence.linear
        strides = []
        for position, address in enumerate(linear):
            following = linear[(position + 1) % len(linear)]
            strides.append((following - address) % size)
        return strides

    @property
    def distinct_strides(self) -> List[int]:
        """The set of strides the sequence uses, in first-use order."""
        seen = []
        for stride in self._strides:
            if stride not in seen:
                seen.append(stride)
        return seen

    # -------------------------------------------------------------- elaborate
    def elaborate(self) -> Netlist:
        netlist = Netlist(_sanitise(self.name))
        clk = netlist.add_input("clk")
        next_signal = netlist.add_input("next")
        reset = netlist.add_input("reset")

        stride_bus = self._build_stride_source(netlist, clk, next_signal, reset)

        # Accumulator register holding the current linear address; it resets
        # to the first address of the sequence.
        first_address = self.sequence.linear[0]
        state: List[Net] = [
            netlist.new_net(f"acc_q{i}_") for i in range(self.address_width)
        ]
        summed, _carry = build_ripple_adder(netlist, Bus(state), stride_bus, prefix="acc_add")
        for i in range(self.address_width):
            starts_high = bool((first_address >> i) & 1)
            netlist.add_cell(
                "DFF_EN_SET" if starts_high else "DFF_EN_RST",
                name=f"acc_ff{i}",
                D=summed[i],
                CLK=clk,
                EN=next_signal,
                Q=state[i],
                **{"SET" if starts_high else "RST": reset},
            )
        address_bus = Bus(state, name="address")
        netlist.add_output_bus("addr", address_bus)

        if self.include_decoders:
            col_width = max(1, (self.sequence.cols - 1).bit_length())
            row_bus = Bus(list(address_bus)[col_width:], name="row")
            col_bus = Bus(list(address_bus)[:col_width], name="col")
            row_decoder = build_decoder(
                netlist, row_bus, num_outputs=self.sequence.rows, prefix="rowdec"
            )
            col_decoder = build_decoder(
                netlist, col_bus, num_outputs=self.sequence.cols, prefix="coldec"
            )
            netlist.add_output_bus("rs", row_decoder.outputs)
            netlist.add_output_bus("cs", col_decoder.outputs)
        return netlist

    def _build_stride_source(
        self, netlist: Netlist, clk: Net, next_signal: Net, reset: Net
    ) -> Bus:
        """Constant stride, or a position-indexed stride table."""
        distinct = self.distinct_strides
        if len(distinct) == 1:
            return netlist.const_bus(distinct[0], self.address_width)

        length = len(self._strides)
        position = build_binary_counter(
            netlist, length, clk, enable=next_signal, reset=reset, prefix="poscnt"
        )
        width = position.width
        dc_set = frozenset(v for v in range(1 << width) if v >= length)
        inverter_cache: Dict[str, Net] = {}
        bits: List[Net] = []
        for bit in range(self.address_width):
            on_set = frozenset(
                pos for pos, stride in enumerate(self._strides) if (stride >> bit) & 1
            )
            table = TruthTable(num_inputs=width, on_set=on_set, dc_set=dc_set)
            cover, _stats = minimize(table)
            bits.append(
                sop_to_netlist(
                    netlist,
                    cover,
                    list(position.count),
                    prefix=f"stride_b{bit}",
                    inverter_cache=inverter_cache,
                )
            )
        return Bus(bits, name="stride")

    # -------------------------------------------------------------- simulate
    def simulate(self, cycles: Optional[int] = None) -> List[int]:
        steps = cycles if cycles is not None else self.sequence.length
        netlist = self.netlist
        sim = Simulator(netlist)
        sim.reset()
        sim.poke("next", 1)
        address_bus = Bus(
            [netlist.outputs[f"addr_{i}"] for i in range(self.address_width)]
        )
        addresses: List[int] = []
        for _ in range(steps):
            sim.settle()
            addresses.append(sim.peek_bus(address_bus))
            sim.step()
        return addresses


def _sanitise(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"n_{cleaned}"
    return cleaned
