"""Counter-based address generator with address decoders (CntAG).

This is the baseline the paper compares the SRAG against (Section 6): "for
regular access patterns, it performs better than arithmetic-based address
generators".  The architecture is the classic counter-based style:

* one cascaded binary counter per loop of the affine nest that produced the
  access pattern (the innermost counter advances on every ``next``; an outer
  counter advances when every counter inside it is at its terminal count),
* shift-and-add logic computing the binary row and column addresses from the
  counter values according to the affine index expressions, and
* -- because the generator drives a *conventional* memory interface -- a row
  decoder and a column decoder turning those binary addresses into select
  lines.  The decoders are the part the ADDM/SRAG approach eliminates, and
  their growth with the array size is what produces the delay trend of
  Figures 8 and 9.

``include_decoders=False`` builds the same generator without the decoders,
which is used both for the "counter" component of Figure 9 and for driving a
conventional RAM whose decoders are internal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.flow import FlowSpec
from repro.generators.base import AddressGeneratorDesign
from repro.hdl.components.adder import build_ripple_adder
from repro.hdl.components.counter import BinaryCounter, build_binary_counter
from repro.hdl.components.decoder import build_decoder
from repro.hdl.components.gates import build_and_tree
from repro.hdl.netlist import Bus, Net, Netlist, NetlistError
from repro.hdl.simulator import Simulator
from repro.synth.cell_library import CellLibrary, STD018
from repro.synth.report import SynthesisResult
from repro.synth.flow import run_synthesis_flow
from repro.workloads.loopnest import AffineAccessPattern, AffineExpression

__all__ = [
    "CounterBasedAddressGenerator",
    "build_standalone_decoder",
    "standalone_decoder_report",
]


def _address_width(extent: int) -> int:
    """Bits needed to represent addresses ``0 .. extent - 1``."""
    return max(1, (extent - 1).bit_length())


class CounterBasedAddressGenerator(AddressGeneratorDesign):
    """CntAG: cascaded loop counters + affine address computation + decoders."""

    style = "CntAG"

    def __init__(
        self,
        pattern: AffineAccessPattern,
        *,
        include_decoders: bool = True,
        use_concatenation: bool = True,
        name: Optional[str] = None,
    ):
        self.use_concatenation = use_concatenation
        for loop in pattern.loops:
            if loop.step != 1:
                raise NetlistError(
                    f"CntAG requires unit-stride loops, loop {loop.var!r} has "
                    f"step {loop.step}"
                )
            if loop.trip_count < 1:
                raise NetlistError(f"loop {loop.var!r} has zero iterations")
        self.pattern = pattern
        self.include_decoders = include_decoders
        sequence = pattern.to_sequence()
        label = name or (
            f"cntag_{pattern.name}" if include_decoders else f"cntag_nodec_{pattern.name}"
        )
        super().__init__(sequence, name=label)
        self.row_width = _address_width(pattern.rows)
        self.col_width = _address_width(pattern.cols)

    # -------------------------------------------------------------- elaborate
    def elaborate(self) -> Netlist:
        netlist = Netlist(_sanitise(self.name))
        clk = netlist.add_input("clk")
        next_signal = netlist.add_input("next")
        reset = netlist.add_input("reset")

        counters = self._build_loop_counters(netlist, clk, next_signal, reset)
        row_bus = self._build_affine_address(
            netlist, counters, self.pattern.row_expr, self.row_width, prefix="ra"
        )
        col_bus = self._build_affine_address(
            netlist, counters, self.pattern.col_expr, self.col_width, prefix="ca"
        )
        netlist.add_output_bus("ra", row_bus)
        netlist.add_output_bus("ca", col_bus)

        if self.include_decoders:
            row_decoder = build_decoder(
                netlist, row_bus, num_outputs=self.pattern.rows, prefix="rowdec"
            )
            col_decoder = build_decoder(
                netlist, col_bus, num_outputs=self.pattern.cols, prefix="coldec"
            )
            netlist.add_output_bus("rs", row_decoder.outputs)
            netlist.add_output_bus("cs", col_decoder.outputs)
        return netlist

    def _build_loop_counters(
        self, netlist: Netlist, clk: Net, next_signal: Net, reset: Net
    ) -> Dict[str, BinaryCounter]:
        """Cascaded counters, innermost enabled by ``next``."""
        counters: Dict[str, BinaryCounter] = {}
        loops = self.pattern.loops
        # Build innermost-first so each counter's enable can AND the terminal
        # counts of every loop nested inside it.
        inner_terminal_counts: List[Net] = []
        for loop in reversed(loops):
            if inner_terminal_counts:
                enable = build_and_tree(
                    netlist,
                    [next_signal] + inner_terminal_counts,
                    prefix=f"en_{loop.var}",
                )
            else:
                enable = next_signal
            counter = build_binary_counter(
                netlist,
                loop.trip_count,
                clk,
                enable=enable,
                reset=reset,
                prefix=f"cnt_{loop.var}",
            )
            counters[loop.var] = counter
            inner_terminal_counts.append(counter.terminal_count)
        return counters

    def _build_affine_address(
        self,
        netlist: Netlist,
        counters: Dict[str, BinaryCounter],
        expression: AffineExpression,
        width: int,
        *,
        prefix: str,
    ) -> Bus:
        """Shift-and-add evaluation of an affine expression over the counters.

        Each term is a counter bus shifted by a power of two (from the binary
        expansion of its coefficient) plus an optional constant.  When the
        terms occupy pairwise-disjoint bit ranges -- the common case for
        block-based patterns, where e.g. ``row = g*mb_height + k`` with
        ``k < mb_height`` and ``mb_height`` a power of two -- no addition can
        ever carry, so the "sum" is pure wiring (concatenation).  A synthesis
        tool performs the same range analysis; modelling it keeps the CntAG's
        counter section fast and lets the decoders dominate its delay, as in
        the paper's Figure 9.  Terms that do overlap are summed with ripple
        adders.
        """
        loop_starts = {loop.var: loop.start for loop in self.pattern.loops}
        constant = expression.constant
        # Each term: (shift, bus, max_value) with max_value the largest value
        # the shifted bus can take given the counter modulus.
        terms: List[Tuple[int, Bus, int]] = []
        for var, coeff in expression.coefficients:
            if coeff == 0:
                continue
            if coeff < 0:
                raise NetlistError(
                    f"CntAG supports non-negative affine coefficients, "
                    f"got {coeff} for {var!r}"
                )
            if var not in counters:
                raise NetlistError(f"expression references unknown loop {var!r}")
            # Fold the loop start value into the constant so the counter
            # (which counts from zero) can be used directly.
            constant += coeff * loop_starts[var]
            counter = counters[var]
            # Binary expansion of the coefficient: coeff * x is the sum of
            # x << b for every set bit b.
            for shift in range(coeff.bit_length()):
                if not (coeff >> shift) & 1:
                    continue
                terms.append(
                    (shift, counter.count, (counter.modulus - 1) << shift)
                )
        if constant < 0:
            raise NetlistError(f"negative address constant {constant}")
        if not terms:
            return netlist.const_bus(constant, width)

        if self.use_concatenation and constant == 0 and self._bit_ranges_disjoint(terms):
            return self._concatenate_terms(netlist, terms, width)

        summed_terms: List[Bus] = []
        for shift, bus, _max_value in terms:
            shifted = [netlist.const(0)] * shift + list(bus)
            summed_terms.append(Bus(shifted[:width], name=f"{prefix}_t{shift}"))
        if constant:
            summed_terms.append(netlist.const_bus(constant, width))
        total = self._pad(netlist, summed_terms[0], width)
        for index, term in enumerate(summed_terms[1:]):
            padded = self._pad(netlist, term, width)
            total, _carry = build_ripple_adder(
                netlist, total, padded, prefix=f"{prefix}_add{index}"
            )
        return total

    @staticmethod
    def _bit_ranges_disjoint(terms: List[Tuple[int, Bus, int]]) -> bool:
        """True when no two shifted terms can have a set bit in the same position."""
        occupied = 0
        for shift, _bus, max_value in terms:
            if max_value == 0:
                continue
            low = shift
            high = max_value.bit_length() - 1
            mask = ((1 << (high - low + 1)) - 1) << low
            if occupied & mask:
                return False
            occupied |= mask
        return True

    @staticmethod
    def _concatenate_terms(
        netlist: Netlist, terms: List[Tuple[int, Bus, int]], width: int
    ) -> Bus:
        """Wire disjoint terms directly onto the address bus (no adders)."""
        bits: List[Optional[Net]] = [None] * width
        for shift, bus, max_value in terms:
            useful_bits = max(0, max_value.bit_length() - shift)
            for i in range(min(useful_bits, len(bus))):
                position = shift + i
                if position < width and bits[position] is None:
                    bits[position] = bus[i]
        return Bus(
            [bit if bit is not None else netlist.const(0) for bit in bits],
            name="concat_addr",
        )

    @staticmethod
    def _pad(netlist: Netlist, bus: Bus, width: int) -> Bus:
        bits = list(bus)[:width]
        while len(bits) < width:
            bits.append(netlist.const(0))
        return Bus(bits, name=bus.name)

    # -------------------------------------------------------------- simulate
    def simulate(self, cycles: Optional[int] = None) -> List[int]:
        steps = cycles if cycles is not None else self.sequence.length
        netlist = self.netlist
        sim = Simulator(netlist)
        sim.reset()
        sim.poke("next", 1)
        row_bus = Bus([netlist.outputs[f"ra_{i}"] for i in range(self.row_width)])
        col_bus = Bus([netlist.outputs[f"ca_{i}"] for i in range(self.col_width)])
        addresses: List[int] = []
        for _ in range(steps):
            sim.settle()
            row = sim.peek_bus(row_bus)
            col = sim.peek_bus(col_bus)
            addresses.append(row * self.pattern.cols + col)
            sim.step()
        return addresses

    # ------------------------------------------------------------- components
    def counter_section_report(self, library: CellLibrary = STD018) -> SynthesisResult:
        """Area/delay of the counter + address-computation section alone.

        This is the "counter" series of the paper's Figure 9.
        """
        counter_only = CounterBasedAddressGenerator(
            self.pattern,
            include_decoders=False,
            use_concatenation=self.use_concatenation,
            name=f"{self.name}_counter",
        )
        return counter_only.synthesize(spec=FlowSpec(library=library))

    def component_reports(
        self, library: CellLibrary = STD018
    ) -> Dict[str, SynthesisResult]:
        """Per-component reports in the style of the paper's Figure 9.

        Returns the ``counter`` section (loop counters plus address
        computation), the ``row_decoder`` and the ``column_decoder`` as three
        independently synthesised blocks.  The paper computes the total CntAG
        delay as "the sum of the counter delay and the worst of the row or
        the column decoder delay"; :mod:`repro.analysis.tradeoff` follows the
        same methodology.
        """
        return {
            "counter": self.counter_section_report(library),
            "row_decoder": standalone_decoder_report(
                self.row_width, self.pattern.rows, library
            ),
            "column_decoder": standalone_decoder_report(
                self.col_width, self.pattern.cols, library
            ),
        }

    def paper_methodology_delay(self, library: CellLibrary = STD018) -> float:
        """CntAG delay computed the way the paper computes it.

        Figure 9's caption and text define the total as the counter delay
        plus the worst decoder delay (the decoders are fed combinationally by
        the address-computation logic).
        """
        components = self.component_reports(library)
        return components["counter"].delay_ns + max(
            components["row_decoder"].delay_ns,
            components["column_decoder"].delay_ns,
        )


def build_standalone_decoder(address_width: int, num_outputs: int) -> Netlist:
    """A decoder with registered address inputs, for component timing.

    The address register stands in for the counter flip-flops that feed the
    decoder inside the full CntAG, so the reported path (clock-to-Q, decode
    logic, output) matches the decoder contribution of Figure 9.
    """
    netlist = Netlist(f"decoder_{address_width}to{num_outputs}")
    clk = netlist.add_input("clk")
    address_in = netlist.add_input_bus("a", address_width)
    registered: List[Net] = []
    for i, bit in enumerate(address_in):
        q = netlist.new_net(f"areg_{i}_")
        netlist.add_cell("DFF", name=f"areg_ff{i}", D=bit, CLK=clk, Q=q)
        registered.append(q)
    decoder = build_decoder(
        netlist, Bus(registered, name="a_reg"), num_outputs=num_outputs, prefix="dec"
    )
    netlist.add_output_bus("sel", decoder.outputs)
    return netlist


def standalone_decoder_report(
    address_width: int,
    num_outputs: int,
    library: CellLibrary = STD018,
) -> SynthesisResult:
    """Synthesis report for a standalone ``address_width`` -> ``num_outputs`` decoder."""
    netlist = build_standalone_decoder(address_width, num_outputs)
    return run_synthesis_flow(
        netlist,
        spec=FlowSpec(library=library),
        name=netlist.name,
        metadata={"address_width": address_width, "num_outputs": num_outputs},
    )


def _sanitise(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"n_{cleaned}"
    return cleaned
