"""Common interface for address-generator designs.

Every architecture the library can build -- the SRAG, the counter-based
CntAG, the arithmetic-based generator, the symbolic-FSM generator and the
SFM pointer pair -- is wrapped in an :class:`AddressGeneratorDesign` so the
experiment harnesses and the design-space explorer can treat them uniformly:
elaborate, verify by simulation, synthesise, and compare area/delay.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.flow import FlowSpec, resolve_spec
from repro.hdl.netlist import Netlist
from repro.obs import phase, tracing_enabled
from repro.synth.flow import run_synthesis_flow
from repro.synth.report import SynthesisResult
from repro.workloads.sequences import AddressSequence

__all__ = ["AddressGeneratorDesign"]


class AddressGeneratorDesign(abc.ABC):
    """Abstract base for all address-generator architectures.

    Subclasses implement :meth:`elaborate` (build a fresh netlist) and
    :meth:`simulate` (produce the linear address sequence the hardware
    generates).  The base class provides caching, synthesis and verification
    on top of those two primitives.
    """

    #: Short architecture label used in reports (e.g. ``"SRAG"``, ``"CntAG"``).
    style: str = "generic"

    def __init__(self, sequence: AddressSequence, name: Optional[str] = None):
        self.sequence = sequence
        self.name = name or f"{self.style.lower()}_{sequence.name}"
        self._netlist: Optional[Netlist] = None

    # ------------------------------------------------------------- interface
    @abc.abstractmethod
    def elaborate(self) -> Netlist:
        """Build and return a fresh structural netlist for this design."""

    @abc.abstractmethod
    def simulate(self, cycles: Optional[int] = None) -> List[int]:
        """Linear addresses the design produces over ``cycles`` cycles."""

    # ------------------------------------------------------------ conveniences
    @property
    def netlist(self) -> Netlist:
        """The elaborated netlist (cached after the first elaboration)."""
        if self._netlist is None:
            self._netlist = self.elaborate()
        return self._netlist

    def invalidate(self) -> None:
        """Drop the cached netlist so the next access re-elaborates."""
        self._netlist = None

    def verify(self, cycles: Optional[int] = None) -> bool:
        """Check the simulated addresses against the target sequence."""
        steps = cycles if cycles is not None else self.sequence.length
        produced = self.simulate(steps)
        expected = [
            self.sequence.linear[i % self.sequence.length] for i in range(steps)
        ]
        return produced == expected

    def lint_context(self) -> Dict[str, object]:
        """Extra inputs for the design-rule checker (``spec.lint``).

        Architectures with checkable high-level structure override this;
        the FSM generator returns ``{"fsm": <FiniteStateMachine>}`` so the
        reachability rule can run against the symbolic machine.
        """
        return {}

    def synthesize(
        self,
        *args,
        spec: Optional[FlowSpec] = None,
        library=None,
        max_fanout: Optional[int] = None,
        opt_level: Optional[int] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> SynthesisResult:
        """Run the synthesis flow on the design's netlist.

        The flow is configured by ``spec`` (:class:`repro.flow.FlowSpec`;
        defaults to an all-defaults spec).  It optimizes and buffers a
        private clone of the netlist, so repeated synthesis runs (under
        different specs, say) all start from the same raw design.

        ``library`` is keyword-only; the historical positional form -- and
        the loose ``library``/``max_fanout``/``opt_level`` keywords -- keep
        working under a :class:`DeprecationWarning`.
        """
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"synthesize() takes at most 1 positional argument "
                    f"({len(args)} given)"
                )
            if isinstance(args[0], FlowSpec):
                if spec is not None:
                    raise TypeError(
                        "synthesize() got the spec both positionally and by keyword"
                    )
                spec = args[0]
            else:
                # The pre-FlowSpec signature took the library positionally;
                # fold it into the shim so the call warns once like any
                # legacy kwarg.
                if library is not None:
                    raise TypeError(
                        "synthesize() got the library both positionally and "
                        "by keyword"
                    )
                library = args[0]
        spec = resolve_spec(
            spec,
            caller=f"{type(self).__name__}.synthesize",
            library=library,
            max_fanout=max_fanout,
            opt_level=opt_level,
        )
        # Elaboration ("logic synthesis": building the structural netlist,
        # including any FSM minimisation) is attributed as its own flow
        # stage; note the cached-netlist fast path makes repeat synthesis
        # report a near-zero elaborate time, which is itself informative.
        timings = {} if tracing_enabled() else None
        with phase("flow.elaborate", timings):
            netlist = self.netlist
        info: Dict[str, object] = {
            "style": self.style,
            "workload": self.sequence.name,
            "rows": self.sequence.rows,
            "cols": self.sequence.cols,
            "accesses": self.sequence.length,
        }
        info.update(metadata or {})
        result = run_synthesis_flow(
            netlist,
            spec=spec,
            name=self.name,
            metadata=info,
            lint_context=self.lint_context() if spec.lint else None,
        )
        if timings:
            result.stage_timings.update(timings)
        return result
