"""Address-generator architectures.

All architectures share the :class:`~repro.generators.base.AddressGeneratorDesign`
interface (elaborate / simulate / verify / synthesize):

* :class:`~repro.generators.srag_design.SragDesign` -- the paper's SRAG
  (wrapping :mod:`repro.core`).
* :class:`~repro.generators.counter_based.CounterBasedAddressGenerator` --
  the CntAG baseline of Section 6 (loop counters + decoders).
* :class:`~repro.generators.arithmetic.ArithmeticAddressGenerator` -- the
  accumulator/stride style mentioned as the other conventional approach.
* :class:`~repro.generators.fsm_based.FsmAddressGenerator` -- the symbolic
  state machine baseline of Section 3.
* :class:`~repro.generators.sfm_pointer.SfmPointerGenerator` -- Aloqeely's
  Sequential FIFO Memory pointer pair (prior art, FIFO-only).
"""

from repro.generators.arithmetic import ArithmeticAddressGenerator
from repro.generators.base import AddressGeneratorDesign
from repro.generators.counter_based import (
    CounterBasedAddressGenerator,
    build_standalone_decoder,
    standalone_decoder_report,
)
from repro.generators.fsm_based import FsmAddressGenerator
from repro.generators.sfm_pointer import SfmPointerGenerator
from repro.generators.srag_design import SragDesign

__all__ = [
    "AddressGeneratorDesign",
    "ArithmeticAddressGenerator",
    "CounterBasedAddressGenerator",
    "FsmAddressGenerator",
    "SfmPointerGenerator",
    "SragDesign",
    "build_standalone_decoder",
    "standalone_decoder_report",
]
