"""SRAG wrapped in the common address-generator interface.

:class:`SragDesign` adapts :class:`~repro.core.addm_generator.SragAddressGenerator`
to :class:`~repro.generators.base.AddressGeneratorDesign` so the design-space
explorer and the benchmark harnesses can compare the paper's architecture
against the baselines through one interface.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.addm_generator import SragAddressGenerator
from repro.generators.base import AddressGeneratorDesign
from repro.hdl.netlist import Netlist
from repro.workloads.sequences import AddressSequence

__all__ = ["SragDesign"]


class SragDesign(AddressGeneratorDesign):
    """The paper's two-hot SRAG as an :class:`AddressGeneratorDesign`."""

    style = "SRAG"

    def __init__(self, sequence: AddressSequence, *, name: Optional[str] = None):
        super().__init__(sequence, name=name or f"srag_{sequence.name}")
        # Mapping happens eagerly so that unmappable sequences fail fast with
        # a MappingError, mirroring how the SRAdGen tool behaves.
        self._generator = SragAddressGenerator.from_sequence(
            sequence, name=_sanitise(self.name)
        )

    @property
    def generator(self) -> SragAddressGenerator:
        """The underlying mapped generator (mappings, ports, netlist)."""
        return self._generator

    def elaborate(self) -> Netlist:
        # Each elaboration re-runs the (cheap) structural construction so the
        # returned netlist is never one that synthesis has already buffered.
        return SragAddressGenerator.from_sequence(
            self.sequence, name=_sanitise(self.name)
        ).netlist

    def simulate(self, cycles: Optional[int] = None) -> List[int]:
        return SragAddressGenerator.from_sequence(
            self.sequence, name=_sanitise(self.name)
        ).simulate_structural(cycles)


def _sanitise(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"n_{cleaned}"
    return cleaned
