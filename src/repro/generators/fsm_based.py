"""Symbolic-FSM address generator (the Section 3 baseline).

Wraps :mod:`repro.synth.fsm` in the common :class:`AddressGeneratorDesign`
interface: one FSM state per sequence position, synthesised with a chosen
state encoding, producing either one-hot select lines (for a one-dimensional
ADDM row, as in Figures 3-4), two-hot row/column select lines (for a 2-D
ADDM) or binary addresses (for a conventional RAM).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.generators.base import AddressGeneratorDesign
from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import Simulator
from repro.synth.fsm import FiniteStateMachine, FsmSynthesisResult, synthesize_fsm
from repro.workloads.sequences import AddressSequence

__all__ = ["FsmAddressGenerator"]

_OUTPUT_STYLES = ("select_lines", "two_hot", "binary")


class FsmAddressGenerator(AddressGeneratorDesign):
    """Address generator synthesised from a symbolic state machine."""

    style = "FSM"

    def __init__(
        self,
        sequence: AddressSequence,
        *,
        encoding: str = "binary",
        output_style: str = "select_lines",
        name: Optional[str] = None,
    ):
        if output_style not in _OUTPUT_STYLES:
            raise ValueError(
                f"output_style must be one of {_OUTPUT_STYLES}, got {output_style!r}"
            )
        super().__init__(
            sequence, name=name or f"fsm_{encoding}_{sequence.name}"
        )
        self.encoding = encoding
        self.output_style = output_style
        self._synthesis_result: Optional[FsmSynthesisResult] = None

    # ------------------------------------------------------------------- FSM
    def build_fsm(self) -> FiniteStateMachine:
        """Construct the symbolic machine for the target sequence."""
        if self.output_style == "select_lines":
            return FiniteStateMachine.from_select_sequence(
                self.sequence.linear,
                num_lines=self.sequence.rows * self.sequence.cols,
                name=_sanitise(self.name),
            )
        if self.output_style == "two_hot":
            return FiniteStateMachine.from_two_hot_sequence(
                self.sequence.row_sequence,
                self.sequence.col_sequence,
                self.sequence.rows,
                self.sequence.cols,
                name=_sanitise(self.name),
            )
        return FiniteStateMachine.from_binary_sequence(
            self.sequence.linear,
            address_width=max(1, (self.sequence.rows * self.sequence.cols - 1).bit_length()),
            name=_sanitise(self.name),
        )

    def lint_context(self) -> Dict[str, object]:
        """Expose the symbolic machine so ``design.fsm-unreachable`` can run."""
        return {"fsm": self.build_fsm()}

    @property
    def fsm_synthesis(self) -> FsmSynthesisResult:
        """The FSM synthesis result (elaborates on first use)."""
        if self._synthesis_result is None:
            self._synthesis_result = synthesize_fsm(
                self.build_fsm(), encoding=self.encoding, name=_sanitise(self.name)
            )
        return self._synthesis_result

    # -------------------------------------------------------------- interface
    def elaborate(self) -> Netlist:
        # Re-synthesise each time so callers always receive an unmodified
        # netlist (the cached fsm_synthesis keeps its own copy for stats).
        result = synthesize_fsm(
            self.build_fsm(), encoding=self.encoding, name=_sanitise(self.name)
        )
        if self._synthesis_result is None:
            self._synthesis_result = result
        return result.netlist

    def simulate(self, cycles: Optional[int] = None) -> List[int]:
        steps = cycles if cycles is not None else self.sequence.length
        netlist = self.netlist
        sim = Simulator(netlist)
        sim.reset()
        sim.poke("next", 1)
        addresses: List[int] = []
        for _ in range(steps):
            sim.settle()
            addresses.append(self._decode_outputs(sim, netlist))
            sim.step()
        return addresses

    def _decode_outputs(self, sim: Simulator, netlist: Netlist) -> int:
        cols = self.sequence.cols
        if self.output_style == "select_lines":
            lines = Bus(
                [netlist.outputs[f"sel_{k}"] for k in range(self.sequence.rows * cols)]
            )
            index = sim.peek_onehot(lines)
            if index is None:
                raise RuntimeError("no select line asserted")
            return index
        if self.output_style == "two_hot":
            row_lines = Bus([netlist.outputs[f"rs_{k}"] for k in range(self.sequence.rows)])
            col_lines = Bus([netlist.outputs[f"cs_{k}"] for k in range(cols)])
            row = sim.peek_onehot(row_lines)
            col = sim.peek_onehot(col_lines)
            if row is None or col is None:
                raise RuntimeError("select lines are not two-hot")
            return row * cols + col
        width = max(1, (self.sequence.rows * cols - 1).bit_length())
        address_bus = Bus([netlist.outputs[f"addr_{k}"] for k in range(width)])
        return sim.peek_bus(address_bus)


def _sanitise(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = f"n_{cleaned}"
    return cleaned
