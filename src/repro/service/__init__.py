"""Campaign service: a long-running, multi-client front-end for the engine.

The ROADMAP north-star is an exploration *service*, not a CLI that owns a
process pool for the duration of one invocation.  This package provides it
with nothing beyond the stdlib:

* :mod:`repro.service.protocol` -- the JSON-lines wire format: one JSON
  object per line, campaign/explore requests keyed by the same canonical
  :class:`~repro.flow.FlowSpec` dictionaries that make cache keys, records
  streamed back as they complete;
* :mod:`repro.service.server` -- :class:`CampaignService`, an ``asyncio``
  streams server that submits every request to one shared
  :class:`~repro.engine.scheduler.Scheduler` (so concurrent clients dedup
  against each other and share the warmed pool) over a concurrent-writer
  :class:`~repro.engine.cache.ResultCache`;
* :mod:`repro.service.client` -- :class:`ServiceClient` (asyncio) plus the
  synchronous :func:`run_campaign_remote` helper the CLI's ``--connect``
  path uses.

Start a server with ``sradgen --serve`` and point any number of
``sradgen --campaign ... --connect HOST:PORT`` invocations (or the
``tools/bench.py`` load generator) at it.
"""

from repro.service.client import ServiceClient, run_campaign_remote
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServiceError,
    decode_message,
    encode_message,
    job_from_wire,
    job_to_wire,
)
from repro.service.server import CampaignService

__all__ = [
    "CampaignService",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceError",
    "decode_message",
    "encode_message",
    "job_from_wire",
    "job_to_wire",
    "run_campaign_remote",
]
