"""Clients for the campaign service.

:class:`ServiceClient` is the asyncio client (one connection, one request at
a time -- the protocol is request/stream/next-request per connection; open
more clients for concurrency).  :func:`run_campaign_remote` is the
synchronous convenience the CLI's ``--connect`` path and the bench load
generator use: it runs a whole :class:`~repro.engine.jobs.Campaign` against
a remote server and reassembles a :class:`~repro.engine.runner.CampaignResult`
with exactly the semantics of a local
:meth:`CampaignRunner.run <repro.engine.runner.CampaignRunner.run>` --
records in campaign order, duplicates resolved to one evaluation,
``cached`` flags preserved.

Connection trouble surfaces as the typed
:class:`~repro.service.protocol.ServiceUnavailable` (never a raw
``OSError``), and resilience is opt-in via a
:class:`~repro.resilience.retry.RetryPolicy`: :meth:`ServiceClient.connect`
retries with deterministic backoff, and :meth:`ServiceClient.run_campaign`
survives a mid-stream disconnect by reconnecting and re-submitting *only*
the keys it has no record for yet -- records that completed server-side in
the meantime come back as cache hits, so a resumed campaign costs zero
duplicate evaluations.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.jobs import Campaign
from repro.engine.runner import ERROR, CampaignResult, EvalRecord
from repro.obs import log, metrics
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ServiceError,
    ServiceUnavailable,
    decode_message,
    encode_message,
    job_to_wire,
)

__all__ = ["ServiceClient", "ServiceUnavailable", "run_campaign_remote"]

#: Progress callback: ``(record_event_dict)`` for each streamed record.
RecordCallback = Callable[[Dict[str, Any]], None]


class ServiceClient:
    """One JSON-lines connection to a :class:`CampaignService`.

    ``retry_policy`` (optional) arms the self-healing paths: connect
    attempts retry under it, and :meth:`run_campaign` reconnects and
    resumes after a mid-stream disconnect.  Without a policy every
    connection failure is raised (as :class:`ServiceUnavailable`) on first
    occurrence -- the historical behaviour, minus the raw ``OSError``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.retry_policy = retry_policy
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def connect(self) -> None:
        """Open the connection, retrying under the client's policy.

        Raises :class:`ServiceUnavailable` once the attempts (1 without a
        policy; ``1 + max_retries`` with one) are exhausted.
        """
        attempt = 0
        while True:
            try:
                fault_point("client.connect")
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port, limit=MAX_LINE_BYTES
                )
                return
            except OSError as error:
                attempt += 1
                policy = self.retry_policy
                if policy is None or attempt > policy.max_retries:
                    raise ServiceUnavailable(
                        f"cannot connect to campaign service at "
                        f"{self.host}:{self.port}: {error}"
                    ) from error
                metrics.incr("client.connect_retries")
                log.warning(
                    "connect failed; retrying",
                    component="client",
                    host=self.host,
                    port=self.port,
                    attempt=attempt,
                    error=str(error),
                )
                await asyncio.sleep(policy.backoff_s(attempt))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover  # sradlint: disable=ast.silent-except -- closing anyway; peer already gone
                pass
            self._reader = self._writer = None

    # -------------------------------------------------------------- plumbing
    async def _send(self, message: Dict[str, Any]) -> None:
        if self._writer is None:
            raise ServiceError("client is not connected")
        try:
            self._writer.write(encode_message(message))
            await self._writer.drain()
        except OSError as error:
            raise ServiceUnavailable(f"connection lost while sending: {error}") from error

    async def _recv(self) -> Dict[str, Any]:
        if self._reader is None:
            raise ServiceError("client is not connected")
        try:
            # Inside the OSError wrapper on purpose: an injected connection
            # fault surfaces exactly like a real one (ServiceUnavailable).
            fault_point("client.stream")
            line = await self._reader.readline()
        except OSError as error:
            raise ServiceUnavailable(f"connection lost mid-stream: {error}") from error
        if not line:
            raise ServiceUnavailable("server closed the connection")
        return decode_message(line)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one single-response request (``ping``/``metrics``/``shutdown``)."""
        await self._send(message)
        response = await self._recv()
        if response.get("event") == "error":
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    # ------------------------------------------------------------ operations
    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})

    async def metrics(self) -> Dict[str, Any]:
        """The server's ``repro.obs`` counter snapshot."""
        return (await self.request({"op": "metrics"}))["counters"]

    async def shutdown_server(self) -> None:
        await self.request({"op": "shutdown"})

    async def run_jobs(
        self,
        wire_jobs: List[Dict[str, Any]],
        *,
        force: bool = False,
        timeout: Optional[float] = None,
        on_record: Optional[RecordCallback] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Run an explicit job list; returns ``(record_events, end_event)``.

        Each record event carries the server's ``record`` dictionary (the
        exact cached form) plus its ``cached`` flag; the accepted event's
        counters land on the returned end event under ``"accepted"``.
        Server ``heartbeat`` events are consumed silently.  A lost
        connection raises :class:`ServiceUnavailable`; records already
        streamed were delivered through ``on_record`` first, which is what
        lets :meth:`run_campaign` resume without re-requesting them.
        """
        message: Dict[str, Any] = {"op": "jobs", "jobs": wire_jobs, "force": force}
        if timeout is not None:
            message["timeout"] = timeout
        if request_id is not None:
            message["id"] = request_id
        await self._send(message)
        accepted = await self._recv()
        if accepted.get("event") == "error":
            raise ServiceError(accepted.get("error", "request rejected"))
        if accepted.get("event") != "accepted":
            raise ServiceError(f"unexpected server message: {accepted}")
        records: List[Dict[str, Any]] = []
        while True:
            event = await self._recv()
            kind = event.get("event")
            if kind == "record":
                records.append(event)
                if on_record is not None:
                    on_record(event)
            elif kind == "heartbeat":
                continue  # keep-alive during a quiet evaluation stretch
            elif kind == "end":
                event["accepted"] = accepted
                return records, event
            elif kind == "error":
                raise ServiceError(event.get("error", "evaluation failed"))
            else:
                raise ServiceError(f"unexpected server message: {event}")

    async def run_campaign(
        self,
        campaign: Campaign,
        *,
        force: bool = False,
        timeout: Optional[float] = None,
        on_record: Optional[RecordCallback] = None,
    ) -> CampaignResult:
        """Run a local :class:`Campaign` object remotely.

        The grid is shipped job-by-job (the explore path), so anything a
        local runner could evaluate works remotely -- no need for the
        campaign to be registered server-side.

        With a ``retry_policy`` on the client, a dropped connection is
        healed in place: reconnect (with backoff), then re-submit only the
        jobs whose records have not arrived yet.  Keys the server finished
        during the outage are answered from its cache, so the resume is
        idempotent -- one evaluation per unique key, disconnect or not.

        Transient (``error``-status) records are likewise not taken as
        final while the policy has budget: a resume can race the server's
        own cleanup of the connection it lost and be handed that doomed
        submission's synthetic cancellation records, so the client
        re-requests those keys (``client.error_retries``) before accepting
        an error as the campaign's answer.
        """
        by_key: Dict[str, EvalRecord] = {}

        def collect(event: Dict[str, Any]) -> None:
            record = EvalRecord.from_dict(
                event["record"], cached=bool(event.get("cached"))
            )
            by_key[record.key] = record
            if on_record is not None:
                on_record(event)

        reconnects = 0
        error_rounds = 0
        while True:
            policy = self.retry_policy
            retriable: List[str] = []
            if policy is not None and error_rounds < policy.max_retries:
                retriable = [
                    key for key, rec in by_key.items() if rec.status == ERROR
                ]
            pending = [
                job
                for job in campaign.jobs
                if job.key not in by_key or job.key in retriable
            ]
            if not pending:
                break
            if retriable:
                error_rounds += 1
                metrics.incr("client.error_retries")
                log.warning(
                    "re-requesting transient error records",
                    component="client",
                    keys=len(retriable),
                    round=error_rounds,
                )
                for key in retriable:
                    del by_key[key]
                await asyncio.sleep(policy.backoff_s(error_rounds))
            try:
                await self.run_jobs(
                    [job_to_wire(job) for job in pending],
                    force=force,
                    timeout=timeout,
                    on_record=collect,
                )
            except ServiceUnavailable as error:
                reconnects += 1
                policy = self.retry_policy
                if policy is None or reconnects > policy.max_retries:
                    raise
                metrics.incr("client.reconnects")
                log.warning(
                    "connection lost mid-campaign; reconnecting to resume",
                    component="client",
                    received=len(by_key),
                    missing=len(pending),
                    reconnect=reconnects,
                    error=str(error),
                )
                await asyncio.sleep(policy.backoff_s(reconnects))
                with contextlib.suppress(Exception):
                    await self.close()
                await self.connect()
                continue
        missing = [job.key for job in campaign.jobs if job.key not in by_key]
        if missing:
            raise ServiceError(
                f"server returned no record for {len(missing)} job key(s)"
            )
        return CampaignResult(
            campaign=campaign.name,
            records=[by_key[job.key] for job in campaign.jobs],
        )


def run_campaign_remote(
    host: str,
    port: int,
    campaign: Campaign,
    *,
    force: bool = False,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[EvalRecord, int, int], None]] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> CampaignResult:
    """Synchronous remote equivalent of ``CampaignRunner(...).run(campaign)``.

    ``progress`` mirrors the runner's callback signature
    (``progress(record, done, total)``); ``done``/``total`` count *unique*
    server-side records, which for duplicate-free campaigns equals the
    runner's counting.  ``retry_policy`` arms connect-retry and mid-stream
    reconnect-and-resume (see :meth:`ServiceClient.run_campaign`).
    """

    async def _run() -> CampaignResult:
        async with ServiceClient(host, port, retry_policy=retry_policy) as client:
            on_record: Optional[RecordCallback] = None
            if progress is not None:

                def on_record(event: Dict[str, Any]) -> None:
                    progress(
                        EvalRecord.from_dict(
                            event["record"], cached=bool(event.get("cached"))
                        ),
                        event["done"],
                        event["total"],
                    )

            return await client.run_campaign(
                campaign, force=force, timeout=timeout, on_record=on_record
            )

    return asyncio.run(_run())
