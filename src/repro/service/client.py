"""Clients for the campaign service.

:class:`ServiceClient` is the asyncio client (one connection, one request at
a time -- the protocol is request/stream/next-request per connection; open
more clients for concurrency).  :func:`run_campaign_remote` is the
synchronous convenience the CLI's ``--connect`` path and the bench load
generator use: it runs a whole :class:`~repro.engine.jobs.Campaign` against
a remote server and reassembles a :class:`~repro.engine.runner.CampaignResult`
with exactly the semantics of a local
:meth:`CampaignRunner.run <repro.engine.runner.CampaignRunner.run>` --
records in campaign order, duplicates resolved to one evaluation,
``cached`` flags preserved.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.jobs import Campaign
from repro.engine.runner import CampaignResult, EvalRecord
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ServiceError,
    decode_message,
    encode_message,
    job_to_wire,
)

__all__ = ["ServiceClient", "run_campaign_remote"]

#: Progress callback: ``(record_event_dict)`` for each streamed record.
RecordCallback = Callable[[Dict[str, Any]], None]


class ServiceClient:
    """One JSON-lines connection to a :class:`CampaignService`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover  # sradlint: disable=ast.silent-except -- closing anyway; peer already gone
                pass
            self._reader = self._writer = None

    # -------------------------------------------------------------- plumbing
    async def _send(self, message: Dict[str, Any]) -> None:
        if self._writer is None:
            raise ServiceError("client is not connected")
        self._writer.write(encode_message(message))
        await self._writer.drain()

    async def _recv(self) -> Dict[str, Any]:
        if self._reader is None:
            raise ServiceError("client is not connected")
        line = await self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return decode_message(line)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one single-response request (``ping``/``metrics``/``shutdown``)."""
        await self._send(message)
        response = await self._recv()
        if response.get("event") == "error":
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    # ------------------------------------------------------------ operations
    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})

    async def metrics(self) -> Dict[str, Any]:
        """The server's ``repro.obs`` counter snapshot."""
        return (await self.request({"op": "metrics"}))["counters"]

    async def shutdown_server(self) -> None:
        await self.request({"op": "shutdown"})

    async def run_jobs(
        self,
        wire_jobs: List[Dict[str, Any]],
        *,
        force: bool = False,
        timeout: Optional[float] = None,
        on_record: Optional[RecordCallback] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Run an explicit job list; returns ``(record_events, end_event)``.

        Each record event carries the server's ``record`` dictionary (the
        exact cached form) plus its ``cached`` flag; the accepted event's
        counters land on the returned end event under ``"accepted"``.
        """
        message: Dict[str, Any] = {"op": "jobs", "jobs": wire_jobs, "force": force}
        if timeout is not None:
            message["timeout"] = timeout
        if request_id is not None:
            message["id"] = request_id
        await self._send(message)
        accepted = await self._recv()
        if accepted.get("event") == "error":
            raise ServiceError(accepted.get("error", "request rejected"))
        if accepted.get("event") != "accepted":
            raise ServiceError(f"unexpected server message: {accepted}")
        records: List[Dict[str, Any]] = []
        while True:
            event = await self._recv()
            kind = event.get("event")
            if kind == "record":
                records.append(event)
                if on_record is not None:
                    on_record(event)
            elif kind == "end":
                event["accepted"] = accepted
                return records, event
            elif kind == "error":
                raise ServiceError(event.get("error", "evaluation failed"))
            else:
                raise ServiceError(f"unexpected server message: {event}")

    async def run_campaign(
        self,
        campaign: Campaign,
        *,
        force: bool = False,
        timeout: Optional[float] = None,
        on_record: Optional[RecordCallback] = None,
    ) -> CampaignResult:
        """Run a local :class:`Campaign` object remotely.

        The grid is shipped job-by-job (the explore path), so anything a
        local runner could evaluate works remotely -- no need for the
        campaign to be registered server-side.
        """
        record_events, _ = await self.run_jobs(
            [job_to_wire(job) for job in campaign.jobs],
            force=force,
            timeout=timeout,
            on_record=on_record,
        )
        by_key: Dict[str, EvalRecord] = {}
        for event in record_events:
            record = EvalRecord.from_dict(
                event["record"], cached=bool(event.get("cached"))
            )
            by_key[record.key] = record
        missing = [job.key for job in campaign.jobs if job.key not in by_key]
        if missing:
            raise ServiceError(
                f"server returned no record for {len(missing)} job key(s)"
            )
        return CampaignResult(
            campaign=campaign.name,
            records=[by_key[job.key] for job in campaign.jobs],
        )


def run_campaign_remote(
    host: str,
    port: int,
    campaign: Campaign,
    *,
    force: bool = False,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[EvalRecord, int, int], None]] = None,
) -> CampaignResult:
    """Synchronous remote equivalent of ``CampaignRunner(...).run(campaign)``.

    ``progress`` mirrors the runner's callback signature
    (``progress(record, done, total)``); ``done``/``total`` count *unique*
    server-side records, which for duplicate-free campaigns equals the
    runner's counting.
    """

    async def _run() -> CampaignResult:
        async with ServiceClient(host, port) as client:
            on_record: Optional[RecordCallback] = None
            if progress is not None:

                def on_record(event: Dict[str, Any]) -> None:
                    progress(
                        EvalRecord.from_dict(
                            event["record"], cached=bool(event.get("cached"))
                        ),
                        event["done"],
                        event["total"],
                    )

            return await client.run_campaign(
                campaign, force=force, timeout=timeout, on_record=on_record
            )

    return asyncio.run(_run())
