"""JSON-lines wire protocol for the campaign service.

One JSON object per ``\\n``-terminated line, in both directions.  Every
request carries an ``op`` and an optional client-chosen ``id`` that the
server echoes on every message it emits for that request, so one connection
can multiplex responses.

Requests
--------
``{"op": "ping"}``
    Liveness/version probe; answered with one ``{"ok": true, ...}`` line.
``{"op": "metrics"}``
    Snapshot of the server's ``repro.obs`` counters (dedup hits, cache
    hits/misses, batches dispatched, ...).
``{"op": "campaign", "campaign": NAME, "spec": {...}, "force": false}``
    Run a *named* campaign (``sradgen --list-campaigns``), optionally
    overriding :class:`~repro.flow.FlowSpec` knobs for every job with the
    canonical spec-dictionary form (``{"opt_level": 1}``).
``{"op": "jobs", "jobs": [JOB, ...]}``
    Run an explicit grid: each ``JOB`` is :func:`job_to_wire` output --
    the job identity plus its canonical spec dictionary.  This is the
    explore path: clients ship arbitrary design points, not just
    registered campaigns.
``{"op": "shutdown"}``
    Ask the server to drain in-flight requests and exit.

Evaluation responses (``campaign`` / ``jobs``)
----------------------------------------------
One ``{"event": "accepted", "jobs": N, "unique": U, "cached": C,
"pending": P, "deduped": D}`` line, then one
``{"event": "record", "done": i, "total": U, "cached": bool,
"record": {...}}`` line per unique job *as each evaluation completes*
(``record`` is the exact cached dictionary form of
:meth:`~repro.engine.runner.EvalRecord.to_dict`), then one
``{"event": "end", "ok": true, "records": U, "wall_s": ...}`` line.
Failures produce ``{"event": "error", "error": "..."}`` instead of
``end``; the connection stays usable.

During a quiet stretch of an evaluation stream (no record for
``heartbeat_interval`` seconds) the server interleaves
``{"event": "heartbeat", "done": i}`` lines.  They are keep-alives, not
data: clients skip them, and a send failure on one is how the server
detects a vanished client and cancels its orphaned submission.

The formats here are deliberately the canonical dictionaries PR 4
established -- a request round-trips through
:meth:`FlowSpec.to_spec`/:meth:`FlowSpec.from_spec`, so the server-side
``EvalJob.key`` (and therefore the cache identity) is byte-identical to
what the client would compute locally.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.engine.jobs import EvalJob
from repro.flow import FlowSpec

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ServiceError",
    "ServiceUnavailable",
    "decode_message",
    "encode_message",
    "job_from_wire",
    "job_to_wire",
]

#: Bump on incompatible wire changes; ``ping`` reports it.
PROTOCOL_VERSION = 1

#: Hard per-line bound (requests *and* responses).  A whole smoke campaign
#: serialises to a few KiB; 1 MiB leaves two orders of magnitude of headroom
#: while still bounding a malicious or corrupted stream.
MAX_LINE_BYTES = 1 << 20


class ServiceError(Exception):
    """A malformed or unserviceable protocol message."""


class ServiceUnavailable(ServiceError):
    """The service cannot be reached (or the connection was lost).

    The typed wrapper around ``ConnectionRefusedError`` / ``OSError`` /
    mid-stream EOF that clients raise instead of leaking raw socket
    errors: callers can distinguish "the server is down" (retryable,
    actionable, exit code 3 in the CLI) from a protocol-level
    :class:`ServiceError` (a bug or a bad request).
    """


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to its wire line (``\\n`` included)."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    data = line.encode("utf-8")
    if len(data) > MAX_LINE_BYTES:
        raise ServiceError(
            f"message of {len(data)} bytes exceeds the {MAX_LINE_BYTES}-byte line limit"
        )
    return data


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dictionary.

    Raises :class:`ServiceError` for anything that is not a single JSON
    object -- the caller reports it and keeps the connection alive.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"malformed protocol line: {error}") from None
    if not isinstance(message, dict):
        raise ServiceError(
            f"protocol line must be a JSON object, got {type(message).__name__}"
        )
    return message


def job_to_wire(job: EvalJob) -> Dict[str, Any]:
    """The wire form of one job: identity fields + canonical spec dict."""
    return {
        "workload": job.workload,
        "rows": job.rows,
        "cols": job.cols,
        "style": job.style,
        "variant": job.variant,
        "spec": job.spec.to_spec(),
    }


def job_from_wire(data: Dict[str, Any]) -> EvalJob:
    """Rebuild an :class:`EvalJob` from :func:`job_to_wire` output.

    Raises :class:`ServiceError` on missing identity fields or unknown spec
    fields (a newer client talking to an older server should fail loudly,
    not silently evaluate a different design point).
    """
    if not isinstance(data, dict):
        raise ServiceError(f"job must be a JSON object, got {type(data).__name__}")
    missing = [
        name
        for name in ("workload", "rows", "cols", "style", "variant")
        if name not in data
    ]
    if missing:
        raise ServiceError(f"job is missing field(s): {', '.join(missing)}")
    spec_data = data.get("spec", {})
    if not isinstance(spec_data, dict):
        raise ServiceError("job 'spec' must be a JSON object")
    try:
        spec = FlowSpec.from_spec(spec_data)
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad job spec: {error}") from None
    try:
        return EvalJob(
            workload=data["workload"],
            rows=int(data["rows"]),
            cols=int(data["cols"]),
            style=data["style"],
            variant=data["variant"],
            spec=spec,
        )
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad job: {error}") from None
