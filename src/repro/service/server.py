"""The campaign service server: asyncio streams over one shared scheduler.

:class:`CampaignService` accepts any number of concurrent JSON-lines
connections (:mod:`repro.service.protocol`) and funnels every evaluation
request into a single :class:`~repro.engine.scheduler.Scheduler`.  That is
the whole point of the layering: concurrent clients share the warmed
process pool, the result cache *and* the in-flight dedup table, so two
clients sweeping overlapping grids cost one evaluation per overlapping
point, not two.

The scheduler is synchronous (its consumers block on queues); the bridge is
one pump thread per evaluation request that drains
:meth:`Submission.results` and hands each record to the event loop with
``call_soon_threadsafe``.  The loop itself only ever parses lines, writes
lines and waits -- it never blocks on an evaluation.

Observability rides :mod:`repro.obs`: every request runs under a
``service.request`` span, and the registry gains ``service.connections`` /
``service.requests`` / ``service.active_requests`` (queue depth) next to
the scheduler's ``scheduler.dedup_hits`` / ``scheduler.inflight`` --
the ``metrics`` op exposes all of it to remote clients.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.cache import ResultCache
from repro.engine.jobs import EvalJob
from repro.engine.scheduler import Scheduler, SchedulerTimeout
from repro.engine.sweep import build_campaign
from repro.obs import log, metrics, span
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServiceError,
    decode_message,
    encode_message,
    job_from_wire,
)

__all__ = ["CampaignService"]


class CampaignService:
    """A long-running evaluation server over one shared scheduler.

    Parameters
    ----------
    cache / cache_dir / cache_backend:
        Either an existing :class:`ResultCache`, or a directory (plus
        backend name) to open one in.  The default backend is ``sharded``:
        the service is exactly the concurrent-writer scenario the
        sharded-segment backend exists for (another process -- a CLI run, a
        compaction -- may be appending to the same directory).
    workers / chunk_size / retry_policy / rebuild_budget:
        Forwarded to the private :class:`Scheduler` (``retry_policy`` /
        ``rebuild_budget`` are the self-healing knobs from
        :mod:`repro.resilience`).
    request_timeout:
        Default per-request evaluation deadline in seconds (a request may
        lower it with its own ``timeout`` field).
    drain_timeout:
        How long :meth:`shutdown` waits for in-flight requests before
        closing their connections.
    heartbeat_interval:
        Seconds of per-request silence before the server emits a
        ``heartbeat`` event.  Heartbeats keep long evaluations from looking
        like dead connections *and* probe the socket: a client that
        vanished mid-evaluation is detected at the next beat and its
        submission is cancelled instead of pumping into the void.  ``0``
        disables them.
    scheduler:
        Share an existing scheduler instead of constructing one (its cache
        and pool then outlive the service).
    """

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        cache_backend: str = "sharded",
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rebuild_budget: Optional[int] = None,
        request_timeout: float = 600.0,
        drain_timeout: float = 10.0,
        heartbeat_interval: float = 5.0,
        scheduler: Optional[Scheduler] = None,
    ):
        if scheduler is not None:
            if cache is not None or cache_dir is not None:
                raise ValueError("scheduler= is mutually exclusive with cache=/cache_dir=")
            self._scheduler = scheduler
            self._owns_scheduler = False
        else:
            if cache is None:
                cache = ResultCache(cache_dir, backend=cache_backend)
            self._scheduler = Scheduler(
                cache,
                workers=workers,
                chunk_size=chunk_size,
                retry_policy=retry_policy,
                rebuild_budget=2 if rebuild_budget is None else rebuild_budget,
            )
            self._owns_scheduler = True
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.heartbeat_interval = heartbeat_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._requests: "set[asyncio.Task]" = set()
        self._connections: "set[asyncio.Task]" = set()
        self._shutdown_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------ lifecycle
    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` -- port is concrete even if 0 was asked."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the bound address."""
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=MAX_LINE_BYTES
        )
        bound = self.address
        log.info(
            "campaign service listening",
            component="service",
            host=bound[0],
            port=bound[1],
            workers=self._scheduler.workers,
        )
        return bound

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a ``shutdown`` request) fires."""
        if self._server is None or self._shutdown_event is None:
            raise RuntimeError("service is not started")
        await self._shutdown_event.wait()
        await self._drain()

    async def run(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Start, install SIGINT/SIGTERM handlers, serve until shutdown."""
        await self.start(host, port)
        loop = asyncio.get_running_loop()
        installed: List[signal.Signals] = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover  # sradlint: disable=ast.silent-except -- non-main thread / no signal support; serve anyway
                pass
        try:
            await self.serve_forever()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    def request_shutdown(self) -> None:
        """Flip the shutdown event (safe to call from a signal handler)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def _drain(self) -> None:
        """Stop accepting, wait for in-flight requests, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._requests if not task.done()]
        if pending:
            log.info(
                "draining in-flight requests",
                component="service",
                requests=len(pending),
                timeout_s=self.drain_timeout,
            )
            done, still_pending = await asyncio.wait(
                pending, timeout=self.drain_timeout
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
        # Idle connections (blocked in readline) would otherwise be torn
        # down noisily when the event loop closes.
        connections = [task for task in self._connections if not task.done()]
        for task in connections:
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        if self._owns_scheduler:
            self._scheduler.close()
        log.info("campaign service stopped", component="service")

    async def shutdown(self) -> None:
        """Programmatic graceful shutdown (drains, then returns)."""
        self.request_shutdown()

    # ------------------------------------------------------------- protocol
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics.incr("service.connections")
        write_lock = asyncio.Lock()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:  # sradlint: disable=ast.bare-retry-loop -- request read loop: each pass consumes a new protocol line, not a retry
                try:
                    fault_point("service.read")
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line: unrecoverable framing loss
                    await self._send(
                        writer, write_lock, {"event": "error", "error": "line too long"}
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_message(line)
                except ServiceError as error:
                    await self._send(
                        writer, write_lock, {"event": "error", "error": str(error)}
                    )
                    continue
                await self._dispatch_request(request, writer, write_lock)
                if self._shutdown_event is not None and self._shutdown_event.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover  # sradlint: disable=ast.silent-except -- client vanished mid-write; nothing to answer
            pass
        except asyncio.CancelledError:  # sradlint: disable=ast.silent-except -- server drain: close the connection and exit cleanly
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch_request(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        op = request.get("op")
        envelope = {"id": request["id"]} if "id" in request else {}
        metrics.incr("service.requests")
        with span("service.request", detail=str(op)):
            if op == "ping":
                await self._send(
                    writer,
                    write_lock,
                    {**envelope, "ok": True, "op": "ping", "protocol": PROTOCOL_VERSION},
                )
            elif op == "metrics":
                await self._send(
                    writer,
                    write_lock,
                    {**envelope, "ok": True, "op": "metrics", "counters": metrics.counters()},
                )
            elif op == "shutdown":
                await self._send(writer, write_lock, {**envelope, "ok": True, "op": "shutdown"})
                self.request_shutdown()
            elif op in ("campaign", "jobs"):
                task = asyncio.ensure_future(
                    self._run_evaluation(request, envelope, writer, write_lock)
                )
                self._requests.add(task)
                metrics.gauge("service.active_requests", len(self._requests))
                task.add_done_callback(self._retire_request)
                # One request at a time per connection: the protocol is
                # strictly request/stream/next-request, so awaiting here
                # keeps per-connection ordering while other connections
                # proceed concurrently.
                try:
                    await asyncio.shield(task)
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    await self._send(
                        writer,
                        write_lock,
                        {
                            **envelope,
                            "event": "error",
                            "error": f"internal error: {type(error).__name__}: {error}",
                        },
                    )
            else:
                await self._send(
                    writer,
                    write_lock,
                    {**envelope, "event": "error", "error": f"unknown op: {op!r}"},
                )

    def _retire_request(self, task: "asyncio.Task") -> None:
        self._requests.discard(task)
        metrics.gauge("service.active_requests", len(self._requests))
        if not task.cancelled() and task.exception() is not None:  # pragma: no cover
            log.warning(
                "request task died",
                component="service",
                error=str(task.exception()),
            )

    # ----------------------------------------------------------- evaluation
    def _jobs_from_request(self, request: Dict[str, Any]) -> Tuple[List[EvalJob], str]:
        """Materialise the request's job list; raises ServiceError when bad."""
        if request.get("op") == "campaign":
            name = request.get("campaign")
            if not isinstance(name, str):
                raise ServiceError("'campaign' must name a registered campaign")
            try:
                campaign = build_campaign(name)
            except KeyError as error:
                raise ServiceError(f"unknown campaign: {error}") from None
            overrides = request.get("spec") or {}
            if not isinstance(overrides, dict):
                raise ServiceError("'spec' must be a JSON object of FlowSpec overrides")
            if overrides:
                try:
                    jobs = [
                        dataclasses.replace(
                            job, spec=job.spec.with_overrides(**overrides)
                        )
                        for job in campaign.jobs
                    ]
                except TypeError as error:
                    raise ServiceError(f"bad spec override: {error}") from None
            else:
                jobs = list(campaign.jobs)
            return jobs, name
        wire_jobs = request.get("jobs")
        if not isinstance(wire_jobs, list) or not wire_jobs:
            raise ServiceError("'jobs' must be a non-empty list")
        return [job_from_wire(item) for item in wire_jobs], f"{len(wire_jobs)} job(s)"

    async def _run_evaluation(
        self,
        request: Dict[str, Any],
        envelope: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        start = time.perf_counter()
        try:
            jobs, label = self._jobs_from_request(request)
            timeout = float(request.get("timeout") or self.request_timeout)
            force = bool(request.get("force", False))
        except ServiceError as error:
            await self._send(
                writer, write_lock, {**envelope, "event": "error", "error": str(error)}
            )
            return
        # submit() may fault in a cold on-disk cache; keep it off the loop.
        submission = await asyncio.to_thread(
            self._scheduler.submit, jobs, force=force
        )
        await self._send(
            writer,
            write_lock,
            {
                **envelope,
                "event": "accepted",
                "label": label,
                "jobs": len(jobs),
                "unique": submission.expected,
                "cached": len(submission.cached_keys),
                "pending": submission.pending,
                "deduped": submission.deduped,
            },
        )

        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Tuple[str, Any]]" = asyncio.Queue()

        def push(kind: str, payload: Any) -> None:
            try:
                loop.call_soon_threadsafe(events.put_nowait, (kind, payload))
            except RuntimeError:  # pragma: no cover  # sradlint: disable=ast.silent-except -- loop closed mid-drain; events are best-effort
                pass

        def pump() -> None:
            # The scheduler API is synchronous; this thread is the blocking
            # consumer, forwarding records into the loop as they complete.
            try:
                for record in submission.results(timeout=timeout):
                    push("record", record)
                push("end", None)
            except SchedulerTimeout as error:
                push("timeout", str(error))
            except Exception as error:  # pragma: no cover - defensive
                push("fail", f"{type(error).__name__}: {error}")

        thread = threading.Thread(
            target=pump, name="sradgen-service-pump", daemon=True
        )
        thread.start()
        done = 0
        try:
            while True:
                if self.heartbeat_interval > 0:
                    try:
                        kind, payload = await asyncio.wait_for(
                            events.get(), timeout=self.heartbeat_interval
                        )
                    except asyncio.TimeoutError:
                        # Quiet interval: beat.  A failed beat means the
                        # client is gone -- the except below cleans up.
                        metrics.incr("service.heartbeats")
                        await self._send(
                            writer,
                            write_lock,
                            {**envelope, "event": "heartbeat", "done": done},
                        )
                        continue
                else:
                    kind, payload = await events.get()
                if kind == "record":
                    done += 1
                    fault_point("service.handler")
                    await self._send(
                        writer,
                        write_lock,
                        {
                            **envelope,
                            "event": "record",
                            "done": done,
                            "total": submission.expected,
                            "cached": payload.cached,
                            "record": payload.to_dict(),
                        },
                    )
                elif kind == "timeout":
                    submission.cancel()
                    metrics.incr("service.request_timeouts")
                    await self._send(
                        writer, write_lock, {**envelope, "event": "error", "error": payload}
                    )
                    return
                elif kind == "fail":
                    submission.cancel()
                    await self._send(
                        writer, write_lock, {**envelope, "event": "error", "error": payload}
                    )
                    return
                else:  # end
                    await self._send(
                        writer,
                        write_lock,
                        {
                            **envelope,
                            "event": "end",
                            "ok": True,
                            "records": done,
                            "wall_s": round(time.perf_counter() - start, 6),
                        },
                    )
                    return
        except (ConnectionResetError, BrokenPipeError, OSError) as error:
            # The client vanished mid-stream (or a beat found the socket
            # dead).  Cancel the orphaned submission so the pump thread and
            # the scheduler's serial queue unblock; evaluations already on
            # the pool complete and land in the cache regardless, so a
            # reconnecting client resumes from cached records.
            metrics.incr("service.orphaned_submissions")
            log.warning(
                "client lost mid-evaluation; cancelling orphaned submission",
                component="service",
                delivered=done,
                expected=submission.expected,
                error=f"{type(error).__name__}: {error}",
            )
            submission.cancel()
        except asyncio.CancelledError:
            # Drain timeout expired during shutdown: abandon the submission
            # so the pump thread (and any joined clients) unblock.
            submission.cancel()
            raise
        finally:
            thread.join(timeout=1.0)

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        message: Dict[str, Any],
    ) -> None:
        data = encode_message(message)
        async with write_lock:
            fault_point("service.write")
            writer.write(data)
            await writer.drain()
