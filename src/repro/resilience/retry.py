"""Recovery policies: bounded retries with deterministic backoff.

:class:`RetryPolicy` is the single source of truth for "how many times and
how long between" across the stack -- the scheduler's transient-error
retries, the cache's append retries, and the client's reconnect loop all
carry one.  Backoff is a pure function of the attempt number (exponential
with a cap, **no jitter**): two runs of the same plan wait the same
schedule, which is what keeps chaos tests reproducible.

Classification extends the contract :func:`repro.engine.runner.evaluate_job`
already lives by: mapping/netlist/value errors are *deterministic* (retrying
cannot help; the record is SKIPPED and cacheable), everything else is
*transient* (the record is ERROR, never cached, and a candidate for retry).

:func:`call_with_retry` is the one sanctioned retry loop in the tree; the
``ast.bare-retry-loop`` lint rule rejects hand-rolled ``while True`` /
``except`` / ``continue`` loops that bypass it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.obs import metrics

__all__ = [
    "DETERMINISTIC",
    "TRANSIENT",
    "RetryPolicy",
    "call_with_retry",
    "classify_exception",
]

#: Classification labels: a *transient* failure may succeed on retry
#: (crashed worker, dropped socket, torn write); a *deterministic* one
#: will fail identically every time (bad mapping, malformed netlist).
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"


def classify_exception(error: BaseException) -> str:
    """Label ``error`` transient or deterministic for retry decisions.

    Mirrors the :func:`~repro.engine.runner.evaluate_job` status contract:
    the exception types it converts to SKIPPED records are deterministic;
    everything else -- OS-level trouble, pool breakage, injected faults --
    is transient.
    """
    from repro.core.mapping_params import MappingError
    from repro.hdl.netlist import NetlistError

    if isinstance(error, (MappingError, NetlistError, ValueError, TypeError)):
        return DETERMINISTIC
    return TRANSIENT


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with deterministic exponential backoff.

    ``max_retries`` counts *re*-tries: 0 disables retrying, 2 allows three
    total attempts.  The wait before retry ``n`` (1-based) is
    ``base_backoff_s * multiplier ** (n - 1)``, capped at ``max_backoff_s``
    -- deterministic by design (no jitter), so recovery schedules replay
    identically under a seeded fault plan.
    """

    max_retries: int = 2
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def backoff_s(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether retry number ``attempt`` (1-based) is allowed for ``error``."""
        if attempt > self.max_retries:
            return False
        return classify_exception(error) == TRANSIENT


#: A conservative default for infrastructure-level loops (appends,
#: reconnects).  Job-level retry stays opt-in on the Scheduler.
DEFAULT_POLICY = RetryPolicy()

T = TypeVar("T")


def call_with_retry(
    func: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    *,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    metric: Optional[str] = None,
    sleep: Callable[[float], None] = None,
) -> T:
    """Call ``func`` under ``policy``, backing off between attempts.

    Only exceptions matching ``retry_on`` *and* classified transient are
    retried; anything else propagates immediately.  The final attempt's
    exception propagates unchanged.  Each retry increments ``metric`` (when
    given) and ``retries.total``.
    """
    if policy is None:
        policy = DEFAULT_POLICY
    if sleep is None:
        import time

        sleep = time.sleep
    attempt = 0
    while True:
        try:
            return func()
        except retry_on as error:
            attempt += 1
            if not policy.should_retry(error, attempt):
                raise
            metrics.incr("retries.total")
            if metric:
                metrics.incr(metric)
            delay = policy.backoff_s(attempt)
            if delay > 0:
                sleep(delay)
