"""Deterministic fault injection: named sites, seeded triggers, four actions.

The pipeline's hot seams are instrumented with *fault points* -- one
:func:`fault_point` (or :func:`fault_data`, for write payloads) call per
seam, named like metrics counters:

==========================  ====================================================
site                        seam
==========================  ====================================================
``cache.append``            before a base/segment JSONL append
``cache.append.write``      the append payload itself (``torn`` truncates it)
``cache.append.flush``      after write+flush, before the index ack
``cache.lock.acquire``      each :class:`~repro.engine.cache.CacheLock` attempt
``cache.compact.merge``     after reading sources, before writing the temp file
``cache.compact.commit``    temp file written, before the ``os.replace``
``cache.compact.cleanup``   base replaced, before merged segments are removed
``scheduler.submit``        top of :meth:`Scheduler.submit`
``scheduler.dispatch``      before each pool batch submission
``scheduler.worker``        worker-side, top of a pool batch evaluation
``runner.evaluate``         inside :func:`~repro.engine.runner.evaluate_job`
``service.read``            per request line read by the server
``service.write``           per response line written by the server
``service.handler``         per record the server's evaluation handler relays
``client.connect``          :meth:`ServiceClient.connect`
``client.stream``           per protocol line the client reads
==========================  ====================================================

**Free when disarmed.**  With no plan installed every call is one module
global load and a ``None`` compare -- the ``NULL_SPAN`` discipline from
:mod:`repro.obs.trace` -- so the sites stay compiled into production paths
permanently; the floor is pinned by test and by the ``resilience_overhead``
bench scenario.

**Deterministic when armed.**  A :class:`FaultPlan` maps sites to
:class:`FaultRule` triggers: a fixed hit schedule (``on_hits``), every Nth
hit (``every``), or a per-hit probability drawn from a PRNG seeded per
``(plan seed, site)`` -- so a plan replays identically run to run, process
to process.  Actions: ``raise`` a chosen exception type, ``delay``,
``torn`` (truncate a write payload), or ``exit`` (hard ``os._exit``, the
worker-crash / kill -9 simulator).

Arm programmatically with :func:`install_plan`, or for a whole process tree
(pool workers inherit the environment) with ``SRADGEN_FAULTS=plan.json``.
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import log, metrics

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear_plan",
    "fault_data",
    "fault_point",
    "install_plan",
]

#: Environment variable naming a JSON plan file, armed at import time (and
#: therefore inside every pool worker that inherits the environment).
FAULTS_ENV_VAR = "SRADGEN_FAULTS"

_ACTIONS = ("raise", "delay", "torn", "exit")


class FaultInjected(RuntimeError):
    """The default exception a ``raise``/``torn`` fault site produces."""


#: Exception types a ``raise`` rule may name.  Deliberately a closed set:
#: plans are data, and data must not name arbitrary importables.
_EXCEPTIONS: Dict[str, type] = {
    "FaultInjected": FaultInjected,
    "OSError": OSError,
    "ConnectionResetError": ConnectionResetError,
    "ConnectionRefusedError": ConnectionRefusedError,
    "BrokenPipeError": BrokenPipeError,
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}


@dataclass(frozen=True)
class FaultRule:
    """When and how one site misbehaves.

    Trigger precedence: an explicit ``on_hits`` schedule, else ``every`` Nth
    hit, else a seeded ``probability`` coin flip, else every hit.  However
    triggered, ``max_fires`` bounds the total fires per process (``None``
    for unbounded).
    """

    site: str
    action: str = "raise"
    on_hits: Tuple[int, ...] = ()
    every: int = 0
    probability: float = 0.0
    max_fires: Optional[int] = 1
    delay_s: float = 0.01
    exception: str = "FaultInjected"
    keep_chars: Optional[int] = None
    exit_code: int = 86

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from {_ACTIONS}"
            )
        if self.exception not in _EXCEPTIONS:
            raise ValueError(
                f"unknown fault exception {self.exception!r}; "
                f"choose from {sorted(_EXCEPTIONS)}"
            )
        if not self.site:
            raise ValueError("fault rule needs a site name")
        if self.every < 0 or not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"bad trigger on fault rule for {self.site!r}")

    def should_fire(self, hit: int, fires: int, rng: random.Random) -> bool:
        """Whether hit number ``hit`` (1-based) fires, after ``fires`` fires."""
        if self.max_fires is not None and fires >= self.max_fires:
            return False
        if self.on_hits:
            return hit in self.on_hits
        if self.every:
            return hit % self.every == 0
        if self.probability:
            return rng.random() < self.probability
        return True

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"site": self.site, "action": self.action}
        if self.on_hits:
            data["on_hits"] = list(self.on_hits)
        if self.every:
            data["every"] = self.every
        if self.probability:
            data["probability"] = self.probability
        if self.max_fires != 1:
            data["max_fires"] = self.max_fires
        if self.action == "delay":
            data["delay_s"] = self.delay_s
        if self.action == "raise" and self.exception != "FaultInjected":
            data["exception"] = self.exception
        if self.action == "torn" and self.keep_chars is not None:
            data["keep_chars"] = self.keep_chars
        if self.action == "exit" and self.exit_code != 86:
            data["exit_code"] = self.exit_code
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"fault rule must be an object, got {type(data).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault rule field(s): {', '.join(sorted(unknown))}")
        kwargs = dict(data)
        if "on_hits" in kwargs:
            kwargs["on_hits"] = tuple(int(h) for h in kwargs["on_hits"])
        return cls(**kwargs)


@dataclass
class FaultPlan:
    """A reproducible set of armed fault rules.

    ``seed`` drives every probabilistic trigger (per-site PRNGs are seeded
    from ``(seed, site)``), so the same plan over the same hit sequence
    fires identically everywhere.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 2026

    def __post_init__(self):
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}
        self._rules_by_site: Dict[str, List[FaultRule]] = {}
        self._rngs: Dict[str, random.Random] = {}
        for rule in self.rules:
            self._rules_by_site.setdefault(rule.site, []).append(rule)

    # ----------------------------------------------------------------- state
    def hits(self, site: str) -> int:
        """How many times ``site`` was reached in this process."""
        with self._lock:
            return self._hits.get(site, 0)

    def fires(self, site: str) -> int:
        """How many times ``site`` actually fired in this process."""
        with self._lock:
            return self._fires.get(site, 0)

    def _fired_rule(self, site: str) -> Optional[FaultRule]:
        """Count the hit and return the rule to execute, if any fires."""
        rules = self._rules_by_site.get(site)
        if rules is None:
            return None
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            fires = self._fires.get(site, 0)
            rng = self._rngs.get(site)
            if rng is None:
                rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
            for rule in rules:
                if rule.should_fire(hit, fires, rng):
                    self._fires[site] = fires + 1
                    return rule
        return None

    # ------------------------------------------------------------- execution
    def trigger(self, site: str) -> None:
        """Execute the armed action for ``site``, if this hit fires."""
        rule = self._fired_rule(site)
        if rule is None:
            return
        _announce(site, rule)
        if rule.action == "delay":
            import time

            time.sleep(rule.delay_s)
            return
        if rule.action == "exit":
            os._exit(rule.exit_code)
        # "raise" -- and "torn" outside a payload site degrades to raise.
        raise _EXCEPTIONS[rule.exception](f"fault injected at {site}")

    def trigger_data(self, site: str, data: str) -> str:
        """Payload-site variant: a ``torn`` rule returns a truncated payload.

        Any other action behaves exactly like :meth:`trigger`.  Callers must
        treat a result that is not the original object as a write the
        process died in the middle of: write the fragment, then fail the
        operation (never acknowledge it).
        """
        rule = self._fired_rule(site)
        if rule is None:
            return data
        _announce(site, rule)
        if rule.action == "torn":
            keep = rule.keep_chars if rule.keep_chars is not None else len(data) // 2
            return data[: max(0, keep)]
        if rule.action == "delay":
            import time

            time.sleep(rule.delay_s)
            return data
        if rule.action == "exit":
            os._exit(rule.exit_code)
        raise _EXCEPTIONS[rule.exception](f"fault injected at {site}")

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be an object, got {type(data).__name__}")
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise ValueError(f"unknown fault plan field(s): {', '.join(sorted(unknown))}")
        rules_data = data.get("rules", [])
        if not isinstance(rules_data, list):
            raise ValueError("fault plan 'rules' must be a list")
        return cls(
            rules=[FaultRule.from_dict(rule) for rule in rules_data],
            seed=int(data.get("seed", 2026)),
        )

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Parse a plan from a JSON file (the ``SRADGEN_FAULTS`` format)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}: not a JSON fault plan: {error}") from None
        return cls.from_dict(data)


def _announce(site: str, rule: FaultRule) -> None:
    metrics.incr("faults.injected")
    metrics.incr(f"faults.{site}")
    log.warning(
        "fault injected",
        component="faults",
        site=site,
        action=rule.action,
        pid=os.getpid(),
    )


#: The armed plan.  ``None`` (the overwhelmingly common state) makes every
#: fault point a single load-and-compare -- the zero-overhead floor.
_PLAN: Optional[FaultPlan] = None


def fault_point(site: str) -> None:
    """Execute ``site``'s armed action, or do nothing when disarmed."""
    plan = _PLAN
    if plan is None:
        return
    plan.trigger(site)


def fault_data(site: str, data: str) -> str:
    """Payload fault point: may return a torn prefix of ``data``.

    Disarmed, the original object is returned unchanged -- callers can (and
    do) detect injection with an identity check, which costs nothing on the
    disabled path.
    """
    plan = _PLAN
    if plan is None:
        return data
    return plan.trigger_data(site, data)


def install_plan(plan: FaultPlan) -> Optional[FaultPlan]:
    """Arm ``plan`` process-wide; returns the previously armed plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    log.warning(
        "fault plan armed",
        component="faults",
        rules=len(plan.rules),
        seed=plan.seed,
        pid=os.getpid(),
    )
    return previous


def clear_plan() -> None:
    """Disarm fault injection (back to the zero-overhead floor)."""
    global _PLAN
    _PLAN = None


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, or ``None``."""
    return _PLAN


_env_plan = os.environ.get(FAULTS_ENV_VAR)
if _env_plan:  # pragma: no cover - exercised via subprocess tests
    install_plan(FaultPlan.load(_env_plan))
