"""Resilience subsystem: deterministic fault injection + recovery policies.

Two halves, deliberately in one package because each exists to prove the
other works:

* :mod:`repro.resilience.faults` -- named, seeded **fault-injection sites**
  compiled into the pipeline's hot seams (cache appends and compaction,
  scheduler dispatch and worker bodies, service reads/writes, client
  connect/stream).  Disabled sites follow the ``NULL_SPAN`` pattern from
  :mod:`repro.obs`: one module-global check, zero allocation, a pinned
  overhead floor.  A :class:`~repro.resilience.faults.FaultPlan` (JSON,
  force-enabled via ``SRADGEN_FAULTS=plan.json`` or ``sradgen
  --fault-plan``) arms chosen sites with deterministic triggers -- fire on
  the Nth hit, on a seeded coin flip, or on a fixed schedule -- and actions:
  raise, delay, torn (partial) write, or hard ``os._exit``.
* :mod:`repro.resilience.retry` -- the **recovery policies** the rest of
  the stack heals itself with: :class:`~repro.resilience.retry.RetryPolicy`
  (bounded attempts, deterministic exponential backoff) and
  :func:`~repro.resilience.retry.call_with_retry`, the one sanctioned retry
  loop (the ``ast.bare-retry-loop`` lint rule keeps ad-hoc ones out of the
  tree).

The chaos suite (``tests/test_resilience*.py``) runs the multi-client
campaign scenario under injection plans and asserts the production
invariant: no lost records, no duplicate evaluations, and results identical
to a fault-free serial run.
"""

from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    fault_data,
    fault_point,
    install_plan,
)
from repro.resilience.retry import (
    DETERMINISTIC,
    TRANSIENT,
    RetryPolicy,
    call_with_retry,
    classify_exception,
)

__all__ = [
    "DETERMINISTIC",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "TRANSIENT",
    "active_plan",
    "call_with_retry",
    "classify_exception",
    "clear_plan",
    "fault_data",
    "fault_point",
    "install_plan",
]
