"""``FlowSpec`` -- one canonical configuration object for the whole stack.

Every evaluation knob the synthesis/evaluation stack understands lives in
exactly one place: a frozen, validated, serialisable :class:`FlowSpec`.  The
public entry points -- :func:`repro.synth.flow.run_synthesis_flow`,
:meth:`repro.generators.base.AddressGeneratorDesign.synthesize`,
:func:`repro.core.sradgen.generate`, :func:`repro.analysis.explorer.explore`,
:class:`repro.engine.jobs.EvalJob` and
:meth:`repro.engine.jobs.Campaign.from_grid` -- all accept ``spec=FlowSpec(...)``
and hand the same object down, so adding a future knob (a synthesis effort
tier, a buffering strategy, a power-engine selector) is one field here
instead of a six-file threading exercise.

Serialisation is canonical and *default-omitting*: fields that post-date the
seed (``opt_level``, ``power_cycles``, ...) stay out of :meth:`FlowSpec.to_spec`
at their default values, so every cache key and JSONL record minted before
the field existed survives byte-for-byte.  Fields that have been hashed
since the seed (``library``, ``max_fanout``, ``max_fsm_states``) are always
present, for the same reason.

The loose keyword arguments the entry points used to take keep working
through :func:`resolve_spec` -- one shared compatibility shim that assembles
a spec from legacy keywords and emits a single :class:`DeprecationWarning`
per call.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_SPEC",
    "FSM_ENCODINGS",
    "FlowSpec",
    "cli_overrides",
    "opt_label_suffix",
    "resolve_spec",
]

#: Default symbolic-FSM state encodings explored per workload.  (Canonical
#: home of the constant; :mod:`repro.engine.jobs` re-exports it.)
FSM_ENCODINGS: Tuple[str, ...] = ("binary", "gray", "onehot")


def opt_label_suffix(opt_level: int) -> str:
    """Display suffix for an optimization level: ``" O1"``, or ``""`` at O0.

    Shared by :attr:`FlowSpec.label_suffix`, ``EvalJob.label`` and
    ``EvalRecord.label`` so every report styles the opt axis identically.
    """
    return f" O{opt_level}" if opt_level else ""


def _always(default: Any) -> Any:
    """A spec field that is serialised unconditionally (hashed since the seed)."""
    return field(default=default)


def _since_seed(default: Any, **extra_metadata: Any) -> Any:
    """A spec field added after the seed: omitted from the canonical dict at
    its default, so pre-existing cache keys and records are byte-identical."""
    return field(default=default, metadata={"omit_default": True, **extra_metadata})


@dataclass(frozen=True)
class FlowSpec:
    """Single source of truth for every synthesis/evaluation knob.

    Attributes
    ----------
    library:
        Cell-library name (``repro.synth.cell_library.LIBRARIES``).  A
        :class:`~repro.synth.cell_library.CellLibrary` instance is also
        accepted and normalised to its registered name (unregistered
        libraries are registered under a fingerprint-qualified name so the
        spec stays serialisable).
    max_fanout:
        Maximum fanout before the flow inserts a buffer tree (>= 2).
    opt_level:
        Logic-optimization effort (0 = raw netlist, 1 = full
        :mod:`repro.synth.opt` pipeline).
    power_cycles:
        Simulated cycles for the switching-activity power study; 0 disables
        it.  Consumed by the campaign runner, ignored by plain synthesis.
    fsm_encodings:
        Symbolic-FSM state encodings enumerated per workload.  An
        *enumeration* knob: it widens or narrows the candidate list but does
        not change any single evaluation, so it never enters job cache keys.
    max_fsm_states:
        Symbolic-FSM candidates are skipped for sequences longer than this.
    lint:
        Run the design-rule checker (:mod:`repro.lint.design`) on the
        synthesised netlist (0 = off).  A *diagnostic* knob: it reports on
        the result without changing it, so -- like ``fsm_encodings`` -- it
        never enters job cache keys, and cached records satisfy a linted
        request bit-for-bit.
    verify:
        Formally verify (SAT-based CEC, :mod:`repro.verify`) that the
        synthesised netlist is equivalent to the pre-flow netlist (0 =
        off).  Also a *diagnostic* knob with the same contract as ``lint``:
        it proves a property of the result without changing it, so it never
        enters job cache keys or serialised records.

    Adding a future axis is one field here: give it a default, declare it
    with :func:`_since_seed`, and every entry point, cache key, CLI override
    and grid builder picks it up.
    """

    library: str = _always("std018")
    max_fanout: int = _always(8)
    opt_level: int = _since_seed(0)
    power_cycles: int = _since_seed(0)
    fsm_encodings: Tuple[str, ...] = _since_seed(FSM_ENCODINGS, job_key=False)
    max_fsm_states: int = _always(512)
    lint: int = _since_seed(0, job_key=False)
    verify: int = _since_seed(0, job_key=False)

    # ---------------------------------------------------------- validation
    def __post_init__(self) -> None:
        from repro.synth.cell_library import CellLibrary, get_library

        if isinstance(self.library, CellLibrary):
            object.__setattr__(self, "library", _registered_name(self.library))
        elif isinstance(self.library, str):
            get_library(self.library)  # raises KeyError listing known names
        else:
            raise TypeError(
                f"library must be a name or a CellLibrary, got {self.library!r}"
            )
        if not isinstance(self.fsm_encodings, tuple):
            object.__setattr__(self, "fsm_encodings", tuple(self.fsm_encodings))
        for encoding in self.fsm_encodings:
            if encoding not in FSM_ENCODINGS:
                raise ValueError(
                    f"unknown FSM encoding {encoding!r}; "
                    f"available: {', '.join(FSM_ENCODINGS)}"
                )
        self._check_int("max_fanout", minimum=2)
        self._check_int("opt_level", minimum=0)
        self._check_int("power_cycles", minimum=0)
        self._check_int("max_fsm_states", minimum=1)
        self._check_int("lint", minimum=0)
        self._check_int("verify", minimum=0)

    def _check_int(self, name: str, *, minimum: int) -> None:
        value = getattr(self, name)
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"{name} must be an int, got {value!r}")
        if value < minimum:
            raise ValueError(f"{name} must be >= {minimum}, got {value}")

    # ------------------------------------------------------- serialisation
    def to_spec(self, *, job_key: bool = False) -> Dict[str, Any]:
        """Canonical dictionary form of the spec.

        Fields marked ``omit_default`` are dropped at their default value --
        the contract that keeps every pre-``FlowSpec`` cache key and record
        byte-identical.  With ``job_key=True``, enumeration-only fields
        (``job_key: False`` metadata) are dropped too: they select *which*
        jobs exist, not how one evaluates, so they must not perturb cache
        keys.
        """
        spec: Dict[str, Any] = {}
        for spec_field in fields(self):
            if job_key and not spec_field.metadata.get("job_key", True):
                continue
            value = getattr(self, spec_field.name)
            if spec_field.metadata.get("omit_default") and value == spec_field.default:
                continue
            spec[spec_field.name] = list(value) if isinstance(value, tuple) else value
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "FlowSpec":
        """Rebuild a spec from :meth:`to_spec` output (exact round-trip).

        Missing fields take their defaults (how old serialised specs gain
        new fields); unknown fields raise ``ValueError`` rather than being
        silently dropped.
        """
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ValueError(f"unknown FlowSpec field(s): {', '.join(unknown)}")
        return cls(**dict(spec))

    # ----------------------------------------------------------- derivation
    def with_overrides(self, **overrides: Any) -> "FlowSpec":
        """A copy with the given fields replaced.

        ``None`` means "keep the current value" (no field may legitimately
        be ``None``), which lets optional CLI flags and legacy keywords be
        forwarded wholesale.  Unknown field names raise ``TypeError``.
        """
        supplied = {name: value for name, value in overrides.items() if value is not None}
        if not supplied:
            return self
        return replace(self, **supplied)

    @classmethod
    def from_cli_args(cls, namespace: Any) -> "FlowSpec":
        """The one spec a CLI invocation describes.

        Reads every attribute of ``namespace`` named after a spec field
        (``None`` or absent = flag not given, keep the default), so a new
        flag is wired in by giving it ``dest=<field name>``.
        """
        return cls().with_overrides(**cli_overrides(namespace))

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        state = dict(self.__dict__)
        if "#" in self.library:
            # Fingerprint-qualified corners exist only in this process's
            # registry; ship the characterisation itself so worker processes
            # (spawn-start platforms build a fresh registry) can re-register
            # it on arrival.
            state["_ephemeral_library"] = self.resolve_library()
        return state

    def __setstate__(self, state):
        library = state.pop("_ephemeral_library", None)
        if library is not None:
            from repro.synth.cell_library import LIBRARIES

            LIBRARIES.setdefault(state["library"], library)
        self.__dict__.update(state)

    # ---------------------------------------------------------- conveniences
    def resolve_library(self):
        """The :class:`~repro.synth.cell_library.CellLibrary` this spec names."""
        from repro.synth.cell_library import get_library

        return get_library(self.library)

    @property
    def label_suffix(self) -> str:
        """Suffix distinguishing non-default flows in display labels."""
        return opt_label_suffix(self.opt_level)


def _registered_name(library: Any) -> str:
    """Name under which ``library`` can be looked up again.

    Registered libraries map to their own name.  An unregistered
    characterisation (a scaled corner built on the fly, say) is registered
    under ``"<name>#<fingerprint>"`` so specs referencing it stay
    serialisable and cannot collide with a different characterisation of the
    same name.
    """
    from repro.synth.cell_library import LIBRARIES, library_fingerprint

    registered = LIBRARIES.get(library.name)
    if registered is not None and (
        registered is library
        or library_fingerprint(registered) == library_fingerprint(library)
    ):
        return library.name
    qualified = f"{library.name}#{library_fingerprint(library)[:8]}"
    LIBRARIES.setdefault(qualified, library)
    return qualified


def cli_overrides(namespace: Any) -> Dict[str, Any]:
    """Spec fields explicitly set on an argparse namespace (``None`` = unset)."""
    overrides: Dict[str, Any] = {}
    for spec_field in fields(FlowSpec):
        value = getattr(namespace, spec_field.name, None)
        if value is not None:
            overrides[spec_field.name] = value
    return overrides


def resolve_spec(
    spec: Optional[FlowSpec],
    *,
    caller: str,
    **legacy: Any,
) -> FlowSpec:
    """The shared deprecation shim behind every redesigned entry point.

    ``legacy`` holds the caller's old loose keywords with ``None`` meaning
    "not passed".  Any that were passed are folded into the spec (on top of
    ``spec`` when both are given, which keeps ``dataclasses.replace``-style
    call sites working) under a single :class:`DeprecationWarning` per call,
    attributed to the user's call site.
    """
    if spec is not None and not isinstance(spec, FlowSpec):
        raise TypeError(f"{caller}: spec must be a FlowSpec, got {spec!r}")
    supplied = {name: value for name, value in legacy.items() if value is not None}
    if supplied:
        warnings.warn(
            f"{caller}: the {', '.join(sorted(supplied))} argument(s) are "
            "deprecated; pass spec=repro.flow.FlowSpec(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    base = spec if spec is not None else DEFAULT_SPEC
    return base.with_overrides(**supplied)


#: The all-defaults spec (module-level so un-configured call paths share one
#: instance instead of re-validating a fresh ``FlowSpec()`` each call).
DEFAULT_SPEC = FlowSpec()
