"""Flat gate-level netlist representation.

The netlist is the central data structure of the reproduction.  Every
address-generator architecture studied in the paper (the shift-register based
SRAG, the counter-plus-decoder CntAG, the symbolic FSM generator, the
arithmetic generator) is elaborated into a :class:`Netlist` of primitive
cells, and the same netlist object is then

* simulated cycle-by-cycle to check that it produces the intended address
  sequence (:mod:`repro.hdl.simulator`),
* timed and measured for area against the standard-cell library
  (:mod:`repro.synth.timing`, :mod:`repro.synth.area`), and
* emitted as structural VHDL or Verilog (:mod:`repro.hdl.emit`).

The representation is intentionally flat: hierarchy only matters for the
emitters, and generated address generators are naturally flat structures.
"""

from __future__ import annotations

import itertools
import re
import warnings
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.hdl.primitives import PRIMITIVES, CellSpec

__all__ = ["Net", "Bus", "Cell", "Netlist", "NetlistError", "PortDirection"]

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class NetlistError(Exception):
    """Raised for structural errors while building or validating a netlist."""


class PortDirection:
    """Enumeration of top-level port directions."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(eq=False)
class Net:
    """A single-bit wire.

    A net has at most one driver, which is either a top-level input port or
    the output pin of a cell.  Loads are (cell, pin-name) pairs plus any
    top-level output ports that alias the net.
    """

    name: str
    driver: Optional[Tuple["Cell", str]] = None
    is_input: bool = False
    loads: List[Tuple["Cell", str]] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name!r})"

    @property
    def has_driver(self) -> bool:
        """Return ``True`` when the net is driven by a cell or is an input."""
        return self.is_input or self.driver is not None

    @property
    def fanout(self) -> int:
        """Number of cell pins loading this net."""
        return len(self.loads)

    def data_loads(self) -> List[Tuple["Cell", str]]:
        """Loads excluding flip-flop ``CLK`` pins.

        The clock network is distributed separately from the signal wiring
        (and the simulator's clock is implicit), so timing and power models
        charge neither pin nor wire capacitance for ``CLK`` connections.
        """
        return [
            (cell, pin)
            for cell, pin in self.loads
            if not (pin == "CLK" and cell.spec.sequential)
        ]


class Bus(Sequence[Net]):
    """An ordered collection of nets treated as a little-endian vector.

    ``bus[0]`` is the least-significant bit.  Buses are a pure convenience on
    top of :class:`Net`; the netlist itself only knows about single-bit nets.
    """

    def __init__(self, nets: Iterable[Net], name: str = ""):
        self._nets: List[Net] = list(nets)
        self.name = name

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Bus(self._nets[index], name=self.name)
        return self._nets[index]

    def __len__(self) -> int:
        return len(self._nets)

    def __iter__(self) -> Iterator[Net]:
        return iter(self._nets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bus({self.name!r}, width={len(self._nets)})"

    @property
    def width(self) -> int:
        """Number of bits in the bus."""
        return len(self._nets)

    def bits(self) -> List[Net]:
        """Return the underlying nets, LSB first."""
        return list(self._nets)


@dataclass(eq=False)
class Cell:
    """An instance of a primitive cell.

    ``pins`` maps pin names (as declared by the cell's :class:`CellSpec`) to
    the nets they connect to.  Output pins always drive their net; input pins
    load theirs.
    """

    name: str
    cell_type: str
    pins: Dict[str, Net] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell({self.name!r}, {self.cell_type})"

    @property
    def spec(self) -> CellSpec:
        """The :class:`CellSpec` describing this cell's type."""
        return PRIMITIVES[self.cell_type]

    def input_nets(self) -> Dict[str, Net]:
        """Mapping of input pin name to connected net."""
        return {p: self.pins[p] for p in self.spec.inputs if p in self.pins}

    def output_nets(self) -> Dict[str, Net]:
        """Mapping of output pin name to connected net."""
        return {p: self.pins[p] for p in self.spec.outputs if p in self.pins}


class Netlist:
    """A flat netlist of primitive cells.

    Parameters
    ----------
    name:
        Entity/module name used by the emitters.
    """

    def __init__(self, name: str = "top"):
        if not _IDENT_RE.match(name):
            raise NetlistError(f"invalid netlist name: {name!r}")
        self.name = name
        self._nets: Dict[str, Net] = {}
        self._cells: Dict[str, Cell] = {}
        self._inputs: Dict[str, Net] = {}
        self._outputs: Dict[str, Net] = {}
        self._name_counter = itertools.count()
        # Cached topological_combinational_order, dropped on any structural
        # mutation (add_cell / remove_cell / replace_net).
        self._topo_cache: Optional[List[Cell]] = None
        # Rewrite listeners: called as listener(event, *payload) after every
        # structural mutation.  Optimization passes use these to seed their
        # dirty worklists instead of rescanning the whole netlist.
        self._rewrite_listeners: List[Callable[..., None]] = []

    # ------------------------------------------------------------------ nets
    def _unique_name(self, prefix: str, table: Dict[str, object]) -> str:
        candidate = prefix
        while candidate in table:
            candidate = f"{prefix}_{next(self._name_counter)}"
        return candidate

    def net(self, name: Optional[str] = None) -> Net:
        """Create (or fetch) a net.

        When ``name`` is ``None`` a fresh anonymous net is created.  When a
        net with the given name already exists it is returned, which lets
        builders share nets by name.
        """
        if name is None:
            name = self._unique_name(f"n{next(self._name_counter)}", self._nets)
        if name in self._nets:
            return self._nets[name]
        if not _IDENT_RE.match(name):
            raise NetlistError(f"invalid net name: {name!r}")
        net = Net(name=name)
        self._nets[name] = net
        return net

    def new_net(self, prefix: str = "n") -> Net:
        """Create a fresh net with a unique name derived from ``prefix``."""
        name = self._unique_name(f"{prefix}{next(self._name_counter)}", self._nets)
        return self.net(name)

    def bus(self, width: int, prefix: str = "b") -> Bus:
        """Create a bus of ``width`` fresh nets."""
        if width < 0:
            raise NetlistError(f"bus width must be non-negative, got {width}")
        return Bus([self.new_net(f"{prefix}_{i}_") for i in range(width)], name=prefix)

    # ----------------------------------------------------------------- ports
    def add_input(self, name: str) -> Net:
        """Declare a top-level input port and return its net."""
        net = self.net(name)
        if net.driver is not None:
            raise NetlistError(f"net {name!r} already driven; cannot be an input")
        net.is_input = True
        self._inputs[name] = net
        return net

    def add_input_bus(self, name: str, width: int) -> Bus:
        """Declare a ``width``-bit input bus ``name[0..width-1]``."""
        return Bus([self.add_input(f"{name}_{i}") for i in range(width)], name=name)

    def add_output(self, name: str, net: Net) -> Net:
        """Declare ``net`` as the top-level output port ``name``."""
        if name in self._outputs:
            raise NetlistError(f"duplicate output port {name!r}")
        self._outputs[name] = net
        return net

    def add_output_bus(self, name: str, bus: Sequence[Net]) -> Bus:
        """Declare every bit of ``bus`` as output ports ``name_<i>``."""
        nets = [self.add_output(f"{name}_{i}", bit) for i, bit in enumerate(bus)]
        return Bus(nets, name=name)

    @property
    def inputs(self) -> Dict[str, Net]:
        """Top-level input ports, by name."""
        return dict(self._inputs)

    @property
    def outputs(self) -> Dict[str, Net]:
        """Top-level output ports, by name."""
        return dict(self._outputs)

    @property
    def nets(self) -> Dict[str, Net]:
        """All nets, by name."""
        return dict(self._nets)

    @property
    def cells(self) -> Dict[str, Cell]:
        """All cell instances, by instance name."""
        return dict(self._cells)

    def has_cell(self, name: str) -> bool:
        """True when cell instance ``name`` exists.

        Unlike ``name in netlist.cells`` this does not copy the cell table,
        so it is safe to call inside per-cell optimization loops.
        """
        return name in self._cells

    # --------------------------------------------------------- change tracking
    def add_rewrite_listener(
        self, listener: Callable[..., None]
    ) -> Callable[[], None]:
        """Register a structural-mutation observer; returns an unsubscriber.

        ``listener`` is invoked after every mutation as:

        * ``listener("add_cell", cell)``
        * ``listener("remove_cell", cell)`` (after disconnection)
        * ``listener("replace_net", old, new, moved)`` where ``moved`` is the
          list of ``(cell, pin)`` loads re-pointed from ``old`` to ``new``

        Optimization passes register a listener for the duration of one run
        to seed their dirty worklists from the exact cells a rewrite touched,
        instead of rescanning every cell every sweep.
        """
        self._rewrite_listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._rewrite_listeners.remove(listener)
            except ValueError:  # sradlint: disable=ast.silent-except -- unsubscribe is documented as idempotent
                pass

        return unsubscribe

    def _notify(self, event: str, *payload) -> None:
        for listener in tuple(self._rewrite_listeners):
            listener(event, *payload)

    # ----------------------------------------------------------------- cells
    def add_cell(
        self,
        cell_type: str,
        name: Optional[str] = None,
        **pins: Net,
    ) -> Cell:
        """Instantiate a primitive cell.

        Parameters
        ----------
        cell_type:
            Name of a primitive registered in :data:`repro.hdl.primitives.PRIMITIVES`.
        name:
            Optional instance name; a unique one is generated when omitted.
        pins:
            Pin-name to :class:`Net` connections.  All declared pins of the
            cell type must be connected.
        """
        if cell_type not in PRIMITIVES:
            raise NetlistError(f"unknown cell type {cell_type!r}")
        spec = PRIMITIVES[cell_type]
        if cell_type == "DFF_EN_SET" and "RST" in pins and "SET" not in pins:
            # One-release compat shim: the set-to-1 control pin was
            # historically misnamed RST.  Remap and warn; remove next release.
            warnings.warn(
                "DFF_EN_SET pin 'RST' was renamed to 'SET'; connect SET instead",
                DeprecationWarning,
                stacklevel=2,
            )
            pins["SET"] = pins.pop("RST")
        if name is None:
            name = self._unique_name(
                f"u{next(self._name_counter)}_{cell_type.lower()}", self._cells
            )
        if name in self._cells:
            raise NetlistError(f"duplicate cell instance name {name!r}")
        declared = set(spec.inputs) | set(spec.outputs)
        missing = declared - set(pins)
        if missing:
            raise NetlistError(
                f"cell {name!r} ({cell_type}): unconnected pins {sorted(missing)}"
            )
        extra = set(pins) - declared
        if extra:
            raise NetlistError(
                f"cell {name!r} ({cell_type}): unknown pins {sorted(extra)}"
            )
        cell = Cell(name=name, cell_type=cell_type, pins=dict(pins))
        for pin_name, net in pins.items():
            if pin_name in spec.outputs:
                if net.has_driver:
                    raise NetlistError(
                        f"net {net.name!r} already driven; cannot also be driven "
                        f"by {name}.{pin_name}"
                    )
                net.driver = (cell, pin_name)
            else:
                net.loads.append((cell, pin_name))
        self._cells[name] = cell
        self._topo_cache = None
        if self._rewrite_listeners:
            self._notify("add_cell", cell)
        return cell

    # ------------------------------------------------------- helper builders
    def const(self, value: int) -> Net:
        """Return a net tied to constant 0 or 1."""
        if value not in (0, 1):
            raise NetlistError(f"constant must be 0 or 1, got {value!r}")
        cell_type = "TIE1" if value else "TIE0"
        net = self.new_net("const")
        self.add_cell(cell_type, Y=net)
        return net

    def const_bus(self, value: int, width: int) -> Bus:
        """Return a bus tied to the binary encoding of ``value`` (LSB first)."""
        if value < 0 or value >= (1 << width):
            raise NetlistError(f"constant {value} does not fit in {width} bits")
        return Bus(
            [self.const((value >> i) & 1) for i in range(width)],
            name=f"const{value}",
        )

    # ------------------------------------------------------------- rewriting
    def replace_net(self, old: Net, new: Net) -> int:
        """Re-point every load and output-port alias of ``old`` at ``new``.

        ``old`` keeps its driver (if any) but ends up with no loads, which is
        the primitive behind every netlist-rewriting optimization: fold a
        cell by replacing its output net with an equivalent net, then remove
        the cell.  Returns the number of connections moved.
        """
        if old is new:
            return 0
        for net in (old, new):
            if self._nets.get(net.name) is not net:
                raise NetlistError(f"net {net.name!r} is not in this netlist")
        moved_loads = old.loads
        for cell, pin in moved_loads:
            cell.pins[pin] = new
            new.loads.append((cell, pin))
        moved = len(moved_loads)
        old.loads = []
        for port_name, net in self._outputs.items():
            if net is old:
                self._outputs[port_name] = new
                moved += 1
        self._topo_cache = None
        if self._rewrite_listeners:
            self._notify("replace_net", old, new, moved_loads)
        return moved

    def move_loads(
        self, old: Net, new: Net, loads: Sequence[Tuple[Cell, str]]
    ) -> int:
        """Re-point the given ``(cell, pin)`` loads of ``old`` at ``new``.

        The partial-fanout counterpart of :meth:`replace_net` (buffer-tree
        insertion splits one net's loads across several buffers).  Listeners
        receive the same ``("replace_net", old, new, moved)`` event, with
        ``moved`` holding exactly the loads that moved.  Returns the number
        of connections moved.
        """
        if old is new or not loads:
            return 0
        for net in (old, new):
            if self._nets.get(net.name) is not net:
                raise NetlistError(f"net {net.name!r} is not in this netlist")
        moved = list(loads)
        for cell, pin in moved:
            if cell.pins.get(pin) is not old:
                raise NetlistError(
                    f"{cell.name}.{pin} does not load net {old.name!r}"
                )
        doomed = set(moved)
        old.loads = [load for load in old.loads if load not in doomed]
        for cell, pin in moved:
            cell.pins[pin] = new
            new.loads.append((cell, pin))
        self._topo_cache = None
        if self._rewrite_listeners:
            self._notify("replace_net", old, new, moved)
        return len(moved)

    def remove_cell(self, name: str) -> Cell:
        """Disconnect and delete the cell instance ``name``.

        Output nets driven by the cell are left undriven (the caller either
        re-drives them or prunes them); input nets lose the corresponding
        load entries.  Returns the removed cell.
        """
        if name not in self._cells:
            raise NetlistError(f"unknown cell instance {name!r}")
        cell = self._cells.pop(name)
        for pin_name, net in cell.pins.items():
            if pin_name in cell.spec.outputs:
                if net.driver == (cell, pin_name):
                    net.driver = None
            else:
                try:
                    net.loads.remove((cell, pin_name))
                except ValueError:  # sradlint: disable=ast.silent-except -- load entry already detached by an earlier rewrite
                    pass
        self._topo_cache = None
        if self._rewrite_listeners:
            self._notify("remove_cell", cell)
        return cell

    def prune_dangling_nets(self) -> int:
        """Delete nets with no driver, no loads and no port role.

        Returns the number of nets removed.  Top-level input nets and nets
        aliased by an output port are never pruned, so the interface of the
        netlist is stable under optimization.
        """
        aliased = {id(net) for net in self._outputs.values()}
        doomed = [
            name
            for name, net in self._nets.items()
            if net.driver is None
            and not net.loads
            and not net.is_input
            and id(net) not in aliased
        ]
        for name in doomed:
            del self._nets[name]
        return len(doomed)

    # ----------------------------------------------------------------- copy
    def clone(self) -> "Netlist":
        """Deep copy of the netlist (cells, nets and ports all re-created).

        Transformations that rewrite structure (buffer insertion, the
        synthesis flow) operate on a clone so the original netlist stays
        pristine and can be re-synthesised, re-simulated or emitted again.

        The copy is rebuilt structurally rather than via ``copy.deepcopy``:
        the driver/load links between nets and cells form chains as deep as
        the longest shift register, which overflows the recursion limit for
        large arrays.
        """
        other = Netlist(self.name)
        for name, net in self._nets.items():
            other.net(name).is_input = net.is_input
        for name in self._inputs:
            other._inputs[name] = other._nets[name]
        for cell in self._cells.values():
            other.add_cell(
                cell.cell_type,
                name=cell.name,
                **{pin: other._nets[net.name] for pin, net in cell.pins.items()},
            )
        for port_name, net in self._outputs.items():
            other._outputs[port_name] = other._nets[net.name]
        return other

    # ---------------------------------------------------------- introspection
    def sequential_cells(self) -> List[Cell]:
        """Return all flip-flop cells."""
        return [c for c in self._cells.values() if c.spec.sequential]

    def combinational_cells(self) -> List[Cell]:
        """Return all non-flip-flop cells."""
        return [c for c in self._cells.values() if not c.spec.sequential]

    def stats(self) -> Dict[str, int]:
        """Return a histogram of cell types plus totals."""
        histogram: Dict[str, int] = {}
        for cell in self._cells.values():
            histogram[cell.cell_type] = histogram.get(cell.cell_type, 0) + 1
        histogram["_total_cells"] = len(self._cells)
        histogram["_total_nets"] = len(self._nets)
        histogram["_flip_flops"] = len(self.sequential_cells())
        return histogram

    def validate(self) -> None:
        """Check structural integrity.

        Raises
        ------
        NetlistError
            If any net used by a cell or output port has no driver, or if a
            declared output port's net does not exist in the netlist.
        """
        for cell in self._cells.values():
            for pin_name, net in cell.input_nets().items():
                if not net.has_driver:
                    raise NetlistError(
                        f"net {net.name!r} feeding {cell.name}.{pin_name} has no driver"
                    )
        for port_name, net in self._outputs.items():
            if not net.has_driver:
                raise NetlistError(
                    f"output port {port_name!r} net {net.name!r} has no driver"
                )
            if net.name not in self._nets:
                raise NetlistError(
                    f"output port {port_name!r} references unknown net {net.name!r}"
                )

    def topological_combinational_order(self) -> List[Cell]:
        """Return combinational cells in evaluation order.

        Flip-flop outputs and top-level inputs are treated as sources.  A
        combinational loop raises :class:`NetlistError`.

        The order is cached and invalidated on any structural mutation, so
        the simulators, timing analysis and the optimization passes share
        one levelisation instead of each recomputing it from scratch.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        comb = self.combinational_cells()
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[Cell]] = {}
        for cell in comb:
            count = 0
            for net in cell.input_nets().values():
                driver = net.driver
                if driver is None:
                    continue
                driver_cell, _ = driver
                if not driver_cell.spec.sequential:
                    count += 1
                    dependents.setdefault(driver_cell.name, []).append(cell)
            indegree[cell.name] = count
        ready = [c for c in comb if indegree[c.name] == 0]
        order: List[Cell] = []
        while ready:
            cell = ready.pop()
            order.append(cell)
            for dep in dependents.get(cell.name, []):
                indegree[dep.name] -= 1
                if indegree[dep.name] == 0:
                    ready.append(dep)
        if len(order) != len(comb):
            cyclic = sorted(set(indegree) - {c.name for c in order})
            raise NetlistError(f"combinational loop involving cells: {cyclic[:10]}")
        self._topo_cache = order
        return list(order)
