"""Structural RTL substrate.

This package provides the hardware-modelling layer that the rest of the
reproduction is built on:

* :mod:`repro.hdl.netlist` -- a flat gate-level netlist representation
  (:class:`~repro.hdl.netlist.Netlist`, :class:`~repro.hdl.netlist.Cell`,
  :class:`~repro.hdl.netlist.Net`, :class:`~repro.hdl.netlist.Bus`).
* :mod:`repro.hdl.primitives` -- the primitive cell vocabulary (gates,
  multiplexors, flip-flops) with functional models used by the simulator.
* :mod:`repro.hdl.simulator` -- a cycle-accurate two-phase simulator for
  netlists built from those primitives (the reference implementation).
* :mod:`repro.hdl.compiled` -- a levelised, event-driven compiled simulator
  that matches the reference bit-for-bit but skips quiescent logic cones;
  the hot path behind power estimation.
* :mod:`repro.hdl.components` -- structural generators for the mid-level
  building blocks used by the paper's address generators (binary counters,
  shift registers, decoders, comparators, adders, multiplexor trees).
* :mod:`repro.hdl.emit` -- VHDL / Verilog / DOT emitters.

The netlist layer is deliberately technology-agnostic: cells are referenced
by type name only.  Area and delay live in :mod:`repro.synth.cell_library`,
which maps the same type names onto a 0.18 um-class standard-cell model.
"""

from repro.hdl.compiled import CompiledSimulator
from repro.hdl.netlist import Bus, Cell, Net, Netlist, NetlistError
from repro.hdl.primitives import CellSpec, PRIMITIVES, is_sequential
from repro.hdl.simulator import Simulator, SimulationError

__all__ = [
    "Bus",
    "Cell",
    "Net",
    "Netlist",
    "NetlistError",
    "CellSpec",
    "PRIMITIVES",
    "is_sequential",
    "CompiledSimulator",
    "Simulator",
    "SimulationError",
]
