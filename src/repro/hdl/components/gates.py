"""Wide-gate and multiplexor-tree builders.

Standard-cell libraries only offer gates up to four inputs, so wide AND/OR
functions (for example a decoder output covering an 8-bit address, or the
terminal-count detect of a counter) are built as balanced trees of 2/3/4
input gates.  These helpers construct such trees and return the output net.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hdl.netlist import Net, Netlist, NetlistError

__all__ = ["build_and_tree", "build_or_tree", "build_mux_tree"]

_MAX_FANIN = 4


def _build_tree(netlist: Netlist, inputs: Sequence[Net], gate_prefix: str, prefix: str) -> Net:
    """Reduce ``inputs`` with a balanced tree of ``gate_prefix`` gates."""
    if not inputs:
        raise NetlistError(f"{gate_prefix} tree needs at least one input")
    level: List[Net] = list(inputs)
    stage = 0
    while len(level) > 1:
        next_level: List[Net] = []
        for start in range(0, len(level), _MAX_FANIN):
            group = level[start:start + _MAX_FANIN]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            out = netlist.new_net(f"{prefix}_s{stage}_")
            pins = {"Y": out}
            for pin_name, net in zip("ABCD", group):
                pins[pin_name] = net
            netlist.add_cell(f"{gate_prefix}{len(group)}", **pins)
            next_level.append(out)
        level = next_level
        stage += 1
    return level[0]


def build_and_tree(netlist: Netlist, inputs: Sequence[Net], prefix: str = "and_tree") -> Net:
    """AND together an arbitrary number of nets using a gate tree."""
    return _build_tree(netlist, inputs, "AND", prefix)


def build_or_tree(netlist: Netlist, inputs: Sequence[Net], prefix: str = "or_tree") -> Net:
    """OR together an arbitrary number of nets using a gate tree."""
    return _build_tree(netlist, inputs, "OR", prefix)


def build_mux_tree(
    netlist: Netlist,
    data: Sequence[Net],
    select: Sequence[Net],
    prefix: str = "mux_tree",
) -> Net:
    """Build a 2^k : 1 multiplexor tree.

    Parameters
    ----------
    data:
        Data inputs; ``data[i]`` is selected when the select bus equals ``i``.
        The length must not exceed ``2 ** len(select)``; missing leaves are
        tied to 0.
    select:
        Select bus, LSB first.
    """
    width = len(select)
    if len(data) > (1 << width):
        raise NetlistError(
            f"mux tree with {len(data)} inputs needs more than {width} select bits"
        )
    level: List[Net] = list(data)
    while len(level) < (1 << width):
        level.append(netlist.const(0))
    for stage, sel in enumerate(select):
        next_level: List[Net] = []
        for pair in range(0, len(level), 2):
            out = netlist.new_net(f"{prefix}_s{stage}_")
            netlist.add_cell("MUX2", A=level[pair], B=level[pair + 1], S=sel, Y=out)
            next_level.append(out)
        level = next_level
    return level[0]
