"""Synchronous binary counter builder.

Binary counters appear in every architecture the paper studies: the CntAG is
built around an address counter whose width grows with the memory size, while
the SRAG only needs the two small control counters ``DivCnt`` and ``PassCnt``
whose widths depend on the repetition structure of the address sequence, not
on the array size.  That asymmetry is what produces the paper's headline
delay trend (Figure 8), so the counter is modelled structurally: a register,
a half-adder increment chain, and wrap-around logic built from an equality
comparator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hdl.components.adder import build_incrementer, build_lookahead_incrementer
from repro.hdl.components.comparator import build_equality_comparator
from repro.hdl.netlist import Bus, Net, Netlist, NetlistError

__all__ = ["BinaryCounter", "build_binary_counter"]


@dataclass
class BinaryCounter:
    """Ports of an elaborated binary counter.

    Attributes
    ----------
    count:
        Current counter value (LSB first).
    terminal_count:
        Asserted while ``count == modulus - 1``.
    width:
        Number of state bits.
    modulus:
        The counter counts ``0 .. modulus - 1`` and then wraps to 0.
    """

    count: Bus
    terminal_count: Net
    width: int
    modulus: int


def counter_width(modulus: int) -> int:
    """Number of bits needed to count ``0 .. modulus - 1``."""
    if modulus < 1:
        raise NetlistError(f"counter modulus must be >= 1, got {modulus}")
    return max(1, (modulus - 1).bit_length())


def build_binary_counter(
    netlist: Netlist,
    modulus: int,
    clk: Net,
    *,
    enable: Optional[Net] = None,
    reset: Optional[Net] = None,
    carry_structure: str = "lookahead",
    prefix: str = "cnt",
) -> BinaryCounter:
    """Build a modulo-``modulus`` synchronous up-counter.

    The counter increments on every clock edge for which ``enable`` is high
    (or on every edge when no enable is given), wraps to zero after reaching
    ``modulus - 1`` and resets synchronously to zero when ``reset`` is high.

    Parameters
    ----------
    carry_structure:
        ``"lookahead"`` (default) computes each carry with an AND tree, as a
        synthesis tool would; ``"ripple"`` chains half adders, giving delay
        linear in the counter width.
    """
    if carry_structure not in ("lookahead", "ripple"):
        raise NetlistError(
            f"carry_structure must be 'lookahead' or 'ripple', got {carry_structure!r}"
        )
    width = counter_width(modulus)
    state = Bus([netlist.new_net(f"{prefix}_q{i}_") for i in range(width)], name=prefix)

    terminal = build_equality_comparator(netlist, state, modulus - 1, prefix=f"{prefix}_tc")
    if carry_structure == "lookahead":
        incremented, _carry = build_lookahead_incrementer(
            netlist, state, prefix=f"{prefix}_inc"
        )
    else:
        incremented, _carry = build_incrementer(netlist, state, prefix=f"{prefix}_inc")

    if enable is None:
        enable = netlist.const(1)

    # A counter whose modulus fills its width wraps to zero by itself, so no
    # wrap logic is needed; otherwise force a synchronous clear when the
    # terminal count is reached while counting.
    wraps_naturally = modulus == (1 << width)
    if wraps_naturally:
        reset_or_wrap = reset
    else:
        wrap = netlist.new_net(f"{prefix}_wrap")
        netlist.add_cell("AND2", A=terminal, B=enable, Y=wrap)
        if reset is not None:
            reset_or_wrap = netlist.new_net(f"{prefix}_rst")
            netlist.add_cell("OR2", A=reset, B=wrap, Y=reset_or_wrap)
        else:
            reset_or_wrap = wrap

    for i in range(width):
        if reset_or_wrap is None:
            netlist.add_cell(
                "DFF_EN",
                name=f"{prefix}_ff{i}",
                D=incremented[i],
                CLK=clk,
                EN=enable,
                Q=state[i],
            )
        else:
            netlist.add_cell(
                "DFF_EN_RST",
                name=f"{prefix}_ff{i}",
                D=incremented[i],
                CLK=clk,
                EN=enable,
                RST=reset_or_wrap,
                Q=state[i],
            )
    return BinaryCounter(count=state, terminal_count=terminal, width=width, modulus=modulus)
