"""Mid-level structural building blocks.

Each function in this package elaborates a commonly-used block (binary
counter, token shift register, n-to-2^n decoder, equality comparator, ripple
adder, wide gates, multiplexor trees) into primitive cells inside an existing
:class:`~repro.hdl.netlist.Netlist` and returns the nets that form its ports.

These are exactly the blocks the paper's address generators are assembled
from: the SRAG uses shift registers, 2:1 multiplexors and two small binary
counters with comparators; the CntAG baseline uses a binary counter and
row/column decoders; the arithmetic baseline uses adders and registers.
"""

from repro.hdl.components.adder import build_incrementer, build_ripple_adder
from repro.hdl.components.comparator import build_equality_comparator
from repro.hdl.components.counter import BinaryCounter, build_binary_counter
from repro.hdl.components.decoder import build_decoder
from repro.hdl.components.gates import build_and_tree, build_or_tree, build_mux_tree
from repro.hdl.components.register import build_register
from repro.hdl.components.shift_register import TokenShiftRegister, build_token_shift_register

__all__ = [
    "BinaryCounter",
    "TokenShiftRegister",
    "build_binary_counter",
    "build_decoder",
    "build_equality_comparator",
    "build_incrementer",
    "build_ripple_adder",
    "build_register",
    "build_token_shift_register",
    "build_and_tree",
    "build_or_tree",
    "build_mux_tree",
]
