"""Equality comparator builder.

The SRAG control circuitry compares its DivCnt/PassCnt counter values against
the constant thresholds ``dC - 1`` and ``pC - 1``; the CntAG wrap-around
logic compares the address counter against the sequence length.  Both are
built with this constant-equality comparator.
"""

from __future__ import annotations

from typing import Sequence

from repro.hdl.components.gates import build_and_tree
from repro.hdl.netlist import Net, Netlist, NetlistError

__all__ = ["build_equality_comparator"]


def build_equality_comparator(
    netlist: Netlist,
    value: Sequence[Net],
    constant: int,
    prefix: str = "cmp",
) -> Net:
    """Build ``value == constant`` for a constant known at elaboration time.

    Bits that must be 1 are used directly; bits that must be 0 are inverted;
    the terms are combined with an AND tree.  Returns the single-bit result.
    """
    width = len(value)
    if width == 0:
        raise NetlistError("comparator needs at least one bit")
    if constant < 0 or constant >= (1 << width):
        raise NetlistError(f"constant {constant} does not fit in {width} bits")
    terms = []
    for i, bit in enumerate(value):
        if (constant >> i) & 1:
            terms.append(bit)
        else:
            inverted = netlist.new_net(f"{prefix}_n{i}_")
            netlist.add_cell("INV", A=bit, Y=inverted)
            terms.append(inverted)
    return build_and_tree(netlist, terms, prefix=f"{prefix}_and")
