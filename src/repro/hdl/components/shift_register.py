"""Token shift-register builder.

The SRAG (Section 4 of the paper) is built from shift registers through which
a single asserted bit — the *token* — travels, activating one select line per
step.  Each shift register ``S_i`` is a chain of flip-flops ``s_{i,0} ..
s_{i,M_i-1}`` with a common clock enable; on reset exactly one flip-flop in
the whole SRAG is initialised to 1 (the token's home position) and all others
to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hdl.netlist import Bus, Net, Netlist, NetlistError

__all__ = ["TokenShiftRegister", "build_token_shift_register"]


@dataclass
class TokenShiftRegister:
    """Ports of an elaborated token shift register.

    Attributes
    ----------
    outputs:
        Flip-flop outputs ``s_0 .. s_{length-1}`` in shift order; these are
        the select lines the register drives.
    serial_in:
        The net feeding the first flip-flop.
    serial_out:
        The last flip-flop's output (what is recirculated or passed on).
    length:
        Number of flip-flops.
    token_at:
        Index of the flip-flop initialised to 1 on reset, or ``None``.
    """

    outputs: Bus
    serial_in: Net
    serial_out: Net
    length: int
    token_at: Optional[int]


def build_token_shift_register(
    netlist: Netlist,
    length: int,
    clk: Net,
    serial_in: Net,
    *,
    enable: Optional[Net] = None,
    reset: Optional[Net] = None,
    token_at: Optional[int] = None,
    prefix: str = "sr",
) -> TokenShiftRegister:
    """Build a ``length``-stage shift register with clock enable and reset.

    Parameters
    ----------
    serial_in:
        Net shifted into stage 0 on each enabled clock edge.
    token_at:
        Index of the stage whose reset value is 1 (the token's initial
        position); every other stage resets to 0.  ``None`` resets all
        stages to 0.
    """
    if length < 1:
        raise NetlistError(f"shift register length must be >= 1, got {length}")
    if token_at is not None and not (0 <= token_at < length):
        raise NetlistError(f"token_at {token_at} outside register of length {length}")
    if enable is None:
        enable = netlist.const(1)
    if reset is None:
        reset = netlist.const(0)

    outputs: List[Net] = []
    previous = serial_in
    for j in range(length):
        q = netlist.new_net(f"{prefix}_q{j}_")
        # The token bit resets to 1 (SET pin), every other bit to 0 (RST pin).
        holds_token = token_at == j
        netlist.add_cell(
            "DFF_EN_SET" if holds_token else "DFF_EN_RST",
            name=f"{prefix}_ff{j}",
            D=previous,
            CLK=clk,
            EN=enable,
            Q=q,
            **{"SET" if holds_token else "RST": reset},
        )
        outputs.append(q)
        previous = q
    return TokenShiftRegister(
        outputs=Bus(outputs, name=prefix),
        serial_in=serial_in,
        serial_out=outputs[-1],
        length=length,
        token_at=token_at,
    )
