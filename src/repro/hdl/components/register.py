"""Parallel register builder."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hdl.netlist import Bus, Net, Netlist

__all__ = ["build_register"]


def build_register(
    netlist: Netlist,
    data: Sequence[Net],
    clk: Net,
    *,
    enable: Optional[Net] = None,
    reset: Optional[Net] = None,
    prefix: str = "reg",
) -> Bus:
    """Build a parallel register over ``data`` and return its output bus.

    Parameters
    ----------
    data:
        Input nets, one flip-flop per bit.
    enable:
        Optional clock-enable net; when given, flip-flops hold their value
        while the enable is low.
    reset:
        Optional synchronous reset net (resets every bit to 0).
    """
    outputs = []
    for i, d in enumerate(data):
        q = netlist.new_net(f"{prefix}_q{i}_")
        pins = {"D": d, "CLK": clk, "Q": q}
        if enable is not None and reset is not None:
            cell_type = "DFF_EN_RST"
            pins["EN"] = enable
            pins["RST"] = reset
        elif enable is not None:
            cell_type = "DFF_EN"
            pins["EN"] = enable
        elif reset is not None:
            cell_type = "DFF_RST"
            pins["RST"] = reset
        else:
            cell_type = "DFF"
        netlist.add_cell(cell_type, name=f"{prefix}_ff{i}", **pins)
        outputs.append(q)
    return Bus(outputs, name=prefix)
