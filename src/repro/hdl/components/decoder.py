"""Binary address decoder builder.

The conventional RAM model of Figure 1 decodes a binary row/column address
into one-hot row-select / column-select lines with built-in decoders.  The
CntAG baseline keeps those decoders outside the memory, so their area and
delay are charged to the address generator.  The decoder is elaborated as a
true/complement buffer stage followed by one AND tree per output line, which
gives the expected scaling: area grows linearly with the number of outputs
(2^n) and delay grows both with the AND-tree depth (log n) and with the heavy
fan-out on the address bits — exactly the effect the paper observes in
Figure 9 where the decoder delay overtakes the counter delay for large
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hdl.components.gates import build_and_tree
from repro.hdl.netlist import Bus, Net, Netlist, NetlistError

__all__ = ["Decoder", "build_decoder"]


@dataclass
class Decoder:
    """Ports of an elaborated binary-to-one-hot decoder."""

    outputs: Bus
    address_width: int
    num_outputs: int


#: Maximum address-group width decoded directly (without pre-decoding).
_MAX_DIRECT_WIDTH = 4


def _build_direct_decoder(
    netlist: Netlist,
    address: Sequence[Net],
    num_outputs: int,
    prefix: str,
) -> List[Net]:
    """Decode a narrow address group directly with one AND tree per output."""
    width = len(address)
    complements: List[Net] = []
    for i, bit in enumerate(address):
        comp = netlist.new_net(f"{prefix}_n{i}_")
        netlist.add_cell("INV", A=bit, Y=comp)
        complements.append(comp)
    outputs: List[Net] = []
    for k in range(num_outputs):
        terms = [
            address[i] if (k >> i) & 1 else complements[i] for i in range(width)
        ]
        outputs.append(build_and_tree(netlist, terms, prefix=f"{prefix}_o{k}"))
    return outputs


def build_decoder(
    netlist: Netlist,
    address: Sequence[Net],
    *,
    num_outputs: Optional[int] = None,
    enable: Optional[Net] = None,
    prefix: str = "dec",
) -> Decoder:
    """Build a one-hot decoder over ``address``.

    Addresses up to four bits are decoded directly (one AND tree per output).
    Wider addresses use the standard pre-decoding structure: the address is
    split into groups of at most four bits, each group is decoded into its
    own one-hot lines, and every final output ANDs together one pre-decoded
    line per group.  Pre-decoding is what keeps real decoders' area roughly
    linear in the number of outputs, while their delay still grows with the
    array size because each pre-decoded line fans out to more and more output
    gates -- the effect behind Figure 9 of the paper.

    Parameters
    ----------
    address:
        Binary address bus, LSB first.
    num_outputs:
        Number of select lines to generate; defaults to ``2 ** len(address)``.
    enable:
        Optional enable net ANDed into every output.
    """
    width = len(address)
    if width == 0:
        raise NetlistError("decoder needs at least one address bit")
    max_outputs = 1 << width
    if num_outputs is None:
        num_outputs = max_outputs
    if not (1 <= num_outputs <= max_outputs):
        raise NetlistError(
            f"decoder with {width} address bits supports 1..{max_outputs} outputs, "
            f"got {num_outputs}"
        )

    if width <= _MAX_DIRECT_WIDTH:
        outputs = _build_direct_decoder(netlist, address, num_outputs, prefix)
    else:
        # Split the address into groups of at most four bits and pre-decode
        # each group; the groups are LSB-first so output k selects line
        # (k % group0_size) of group 0, and so on.
        groups: List[Sequence[Net]] = []
        start = 0
        while start < width:
            groups.append(address[start:start + _MAX_DIRECT_WIDTH])
            start += _MAX_DIRECT_WIDTH
        predecoded: List[List[Net]] = []
        for g, group in enumerate(groups):
            predecoded.append(
                _build_direct_decoder(
                    netlist, group, 1 << len(group), f"{prefix}_pre{g}"
                )
            )
        outputs = []
        for k in range(num_outputs):
            terms: List[Net] = []
            remaining = k
            for group, lines in zip(groups, predecoded):
                group_size = 1 << len(group)
                terms.append(lines[remaining % group_size])
                remaining //= group_size
            outputs.append(build_and_tree(netlist, terms, prefix=f"{prefix}_o{k}"))

    if enable is not None:
        gated: List[Net] = []
        for k, line in enumerate(outputs):
            out = netlist.new_net(f"{prefix}_en{k}_")
            netlist.add_cell("AND2", A=line, B=enable, Y=out)
            gated.append(out)
        outputs = gated

    return Decoder(
        outputs=Bus(outputs, name=prefix),
        address_width=width,
        num_outputs=num_outputs,
    )
