"""Ripple-carry adder and incrementer builders.

The arithmetic-based address-generator baseline and the binary counters used
by both the CntAG and the SRAG control circuitry are built from these blocks.
Using an explicit ripple structure (half/full adders composed from XOR/AND/OR
gates) gives the timing model the expected carry-chain behaviour: delay grows
linearly with operand width, which is what makes wide counters slower than
the small SRAG control counters.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.hdl.netlist import Bus, Net, Netlist, NetlistError

__all__ = [
    "build_half_adder",
    "build_full_adder",
    "build_ripple_adder",
    "build_incrementer",
    "build_lookahead_incrementer",
]


def build_half_adder(
    netlist: Netlist, a: Net, b: Net, prefix: str = "ha"
) -> Tuple[Net, Net]:
    """Build a half adder; returns ``(sum, carry)``."""
    s = netlist.new_net(f"{prefix}_s")
    c = netlist.new_net(f"{prefix}_c")
    netlist.add_cell("XOR2", A=a, B=b, Y=s)
    netlist.add_cell("AND2", A=a, B=b, Y=c)
    return s, c


def build_full_adder(
    netlist: Netlist, a: Net, b: Net, cin: Net, prefix: str = "fa"
) -> Tuple[Net, Net]:
    """Build a full adder from two half adders; returns ``(sum, carry)``."""
    s1, c1 = build_half_adder(netlist, a, b, prefix=f"{prefix}_h0")
    s2, c2 = build_half_adder(netlist, s1, cin, prefix=f"{prefix}_h1")
    cout = netlist.new_net(f"{prefix}_co")
    netlist.add_cell("OR2", A=c1, B=c2, Y=cout)
    return s2, cout


def build_ripple_adder(
    netlist: Netlist,
    a: Sequence[Net],
    b: Sequence[Net],
    *,
    carry_in: Net = None,
    prefix: str = "add",
) -> Tuple[Bus, Net]:
    """Build a ripple-carry adder ``a + b (+ carry_in)``.

    Returns the sum bus (same width as the operands) and the carry-out net.
    """
    if len(a) != len(b):
        raise NetlistError(f"adder operand widths differ: {len(a)} vs {len(b)}")
    if not a:
        raise NetlistError("adder width must be at least 1")
    carry = carry_in if carry_in is not None else netlist.const(0)
    sums = []
    for i, (abit, bbit) in enumerate(zip(a, b)):
        s, carry = build_full_adder(netlist, abit, bbit, carry, prefix=f"{prefix}_b{i}")
        sums.append(s)
    return Bus(sums, name=f"{prefix}_sum"), carry


def build_incrementer(
    netlist: Netlist,
    a: Sequence[Net],
    *,
    enable: Net = None,
    prefix: str = "inc",
) -> Tuple[Bus, Net]:
    """Build an incrementer ``a + enable`` (``a + 1`` when no enable given).

    The increment is implemented as a half-adder chain, which is how counter
    next-state logic is normally synthesised.  Returns the sum bus and the
    final carry (terminal-count indication when ``a`` is all ones).
    """
    if not a:
        raise NetlistError("incrementer width must be at least 1")
    carry = enable if enable is not None else netlist.const(1)
    sums = []
    for i, abit in enumerate(a):
        s, carry = build_half_adder(netlist, abit, carry, prefix=f"{prefix}_b{i}")
        sums.append(s)
    return Bus(sums, name=f"{prefix}_sum"), carry


def build_lookahead_incrementer(
    netlist: Netlist,
    a: Sequence[Net],
    *,
    prefix: str = "inc",
) -> Tuple[Bus, Net]:
    """Build a carry-lookahead incrementer ``a + 1``.

    The carry into bit ``i`` of an incrementer is simply the AND of all lower
    bits, so each carry is computed directly with a balanced AND tree instead
    of rippling through half adders.  A synthesis tool restructures counter
    increment logic this way, which is why real counters have delay that
    grows with ``log(width)`` rather than linearly -- the behaviour the
    paper's CntAG counter delay (Figure 9) exhibits.
    """
    # Imported here to avoid a circular import (gates has no dependencies on
    # this module, but keeping the adder importable on its own is convenient).
    from repro.hdl.components.gates import build_and_tree

    if not a:
        raise NetlistError("incrementer width must be at least 1")
    sums = []
    carry: Net = netlist.const(1)
    for i, abit in enumerate(a):
        if i == 0:
            carry = netlist.const(1)
        else:
            carry = build_and_tree(
                netlist, list(a[:i]), prefix=f"{prefix}_c{i}"
            )
        s = netlist.new_net(f"{prefix}_s{i}_")
        netlist.add_cell("XOR2", A=abit, B=carry, Y=s)
        sums.append(s)
    carry_out = build_and_tree(netlist, list(a), prefix=f"{prefix}_cout")
    return Bus(sums, name=f"{prefix}_sum"), carry_out
