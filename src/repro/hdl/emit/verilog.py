"""Structural Verilog emitter.

Emits a flat structural Verilog-2001 module plus behavioural definitions of
the primitive cells used, so the output can be simulated or synthesised
stand-alone.  Provided alongside the VHDL back end because modern flows more
commonly consume Verilog.
"""

from __future__ import annotations

from typing import List

from repro.hdl.netlist import Netlist
from repro.hdl.primitives import PRIMITIVES

__all__ = ["emit_verilog"]

_COMB_EXPR = {
    "TIE0": "1'b0",
    "TIE1": "1'b1",
    "BUF": "A",
    "INV": "~A",
    "AND2": "A & B",
    "AND3": "A & B & C",
    "AND4": "A & B & C & D",
    "NAND2": "~(A & B)",
    "NAND3": "~(A & B & C)",
    "NAND4": "~(A & B & C & D)",
    "OR2": "A | B",
    "OR3": "A | B | C",
    "OR4": "A | B | C | D",
    "NOR2": "~(A | B)",
    "NOR3": "~(A | B | C)",
    "NOR4": "~(A | B | C | D)",
    "XOR2": "A ^ B",
    "XNOR2": "~(A ^ B)",
    "MUX2": "S ? B : A",
    "AOI21": "~((A & B) | C)",
    "OAI21": "~((A | B) & C)",
}


def _module_for(cell_type: str) -> str:
    return f"repro_{cell_type.lower()}"


def _primitive_module(cell_type: str) -> str:
    spec = PRIMITIVES[cell_type]
    ports = list(spec.inputs) + list(spec.outputs)
    lines = [f"module {_module_for(cell_type)}({', '.join(ports)});"]
    for pin in spec.inputs:
        lines.append(f"  input {pin};")
    for pin in spec.outputs:
        if spec.sequential:
            lines.append(f"  output reg {pin};")
        else:
            lines.append(f"  output {pin};")
    if not spec.sequential:
        lines.append(f"  assign Y = {_COMB_EXPR[cell_type]};")
    else:
        lines.append("  always @(posedge CLK) begin")
        if "RST" in spec.inputs:
            lines.append("    if (RST) Q <= 1'b0;")
            prefix = "    else "
        elif "SET" in spec.inputs:
            lines.append("    if (SET) Q <= 1'b1;")
            prefix = "    else "
        else:
            prefix = "    "
        if "EN" in spec.inputs:
            lines.append(f"{prefix}if (EN) Q <= D;")
        else:
            lines.append(f"{prefix}Q <= D;")
        lines.append("  end")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


def emit_verilog(netlist: Netlist, *, include_primitives: bool = True) -> str:
    """Render ``netlist`` as structural Verilog-2001."""
    netlist.validate()
    used_types = sorted({cell.cell_type for cell in netlist.cells.values()})

    chunks: List[str] = []
    if include_primitives:
        for cell_type in used_types:
            chunks.append(_primitive_module(cell_type))

    port_names = list(netlist.inputs) + list(netlist.outputs)
    lines = [f"module {netlist.name}({', '.join(port_names)});"]
    for name in netlist.inputs:
        lines.append(f"  input {name};")
    for name in netlist.outputs:
        lines.append(f"  output {name};")

    port_net_names = set(netlist.inputs) | set(netlist.outputs)
    for net_name in sorted(netlist.nets):
        if net_name not in port_net_names:
            lines.append(f"  wire {net_name};")

    for port_name, net in netlist.outputs.items():
        if net.name != port_name:
            lines.append(f"  assign {port_name} = {net.name};")

    for cell in netlist.cells.values():
        assocs = ", ".join(f".{pin}({net.name})" for pin, net in cell.pins.items())
        lines.append(f"  {_module_for(cell.cell_type)} {cell.name}({assocs});")
    lines.append("endmodule")
    lines.append("")
    chunks.append("\n".join(lines))
    return "\n".join(chunks)
