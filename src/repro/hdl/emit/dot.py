"""Graphviz DOT emitter for netlists.

Useful for visually inspecting small generated address generators (for
example the two-shift-register SRAG of the paper's Figure 5) and for
debugging the mapper.
"""

from __future__ import annotations

from typing import List

from repro.hdl.netlist import Netlist

__all__ = ["emit_dot"]


def emit_dot(netlist: Netlist, *, max_fanout_edges: int = 64) -> str:
    """Render ``netlist`` as a Graphviz digraph.

    Parameters
    ----------
    max_fanout_edges:
        Nets with more loads than this are drawn as a single fan-out summary
        edge to keep very large graphs readable.
    """
    lines: List[str] = [f'digraph "{netlist.name}" {{', "  rankdir=LR;"]
    for name in netlist.inputs:
        lines.append(f'  "{name}" [shape=cds, style=filled, fillcolor=lightblue];')
    for name in netlist.outputs:
        lines.append(f'  "out:{name}" [shape=cds, style=filled, fillcolor=lightgreen];')
    for cell in netlist.cells.values():
        shape = "box" if not cell.spec.sequential else "box3d"
        lines.append(f'  "{cell.name}" [shape={shape}, label="{cell.name}\\n{cell.cell_type}"];')

    for net in netlist.nets.values():
        if net.is_input:
            source = f'"{net.name}"'
        elif net.driver is not None:
            source = f'"{net.driver[0].name}"'
        else:
            continue
        loads = net.loads[:max_fanout_edges]
        for cell, pin in loads:
            lines.append(f'  {source} -> "{cell.name}" [label="{pin}", fontsize=8];')
        if len(net.loads) > max_fanout_edges:
            lines.append(
                f'  {source} -> "fanout_{net.name}" '
                f'[label="+{len(net.loads) - max_fanout_edges} more", style=dashed];'
            )
    for name, net in netlist.outputs.items():
        if net.is_input:
            lines.append(f'  "{net.name}" -> "out:{name}";')
        elif net.driver is not None:
            lines.append(f'  "{net.driver[0].name}" -> "out:{name}";')
    lines.append("}")
    return "\n".join(lines)
