"""Netlist emitters.

The paper's SRAdGen tool emits synthesisable VHDL for a mapped SRAG.  This
package provides the equivalent back ends for our structural netlists:

* :func:`repro.hdl.emit.vhdl.emit_vhdl` -- structural VHDL-93.
* :func:`repro.hdl.emit.verilog.emit_verilog` -- structural Verilog-2001.
* :func:`repro.hdl.emit.dot.emit_dot` -- Graphviz DOT for visual inspection.
"""

from repro.hdl.emit.dot import emit_dot
from repro.hdl.emit.verilog import emit_verilog
from repro.hdl.emit.vhdl import emit_vhdl

__all__ = ["emit_vhdl", "emit_verilog", "emit_dot"]
