"""Primitive cell vocabulary.

Every netlist in the reproduction is built from the fixed set of primitive
cell types defined here.  A primitive is described by a :class:`CellSpec`
holding its pin lists, whether it is sequential, and a functional model used
by the cycle-accurate simulator.

The set mirrors a small 0.18 um-class standard-cell library: inverters and
buffers, 2/3/4-input NAND / NOR / AND / OR, XOR / XNOR, a 2:1 multiplexor,
AOI/OAI cells, constant ties and a family of D flip-flops with optional
clock-enable and synchronous reset/set.  Area and timing characteristics for
the same type names live in :mod:`repro.synth.cell_library`; this module is
purely structural/functional so the HDL layer has no dependency on the
synthesis layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple

__all__ = ["CellSpec", "PRIMITIVES", "is_sequential", "combinational_eval", "flop_next_state"]

# A combinational evaluation function maps input pin values to output pin values.
CombEval = Callable[[Mapping[str, int]], Dict[str, int]]


@dataclass(frozen=True)
class CellSpec:
    """Static description of a primitive cell type.

    Attributes
    ----------
    name:
        Cell type name, e.g. ``"NAND2"``.
    inputs:
        Ordered input pin names.
    outputs:
        Ordered output pin names.
    sequential:
        ``True`` for flip-flops.
    eval_fn:
        Functional model.  For combinational cells it maps input pin values
        to output pin values.  For sequential cells it computes the *next*
        state from the pins ``D``/``EN``/``RST``/``SET`` and the current
        state ``Q`` (passed in the mapping under the key ``"Q"``).
    description:
        Human-readable description used in documentation and reports.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    sequential: bool
    eval_fn: CombEval
    description: str = ""


def _bit(value: int) -> int:
    return 1 if value else 0


# --------------------------------------------------------------------------
# Combinational models
# --------------------------------------------------------------------------

def _tie0(_: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 0}


def _tie1(_: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1}


def _buf(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(pins["A"])}


def _inv(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(not pins["A"])}


def _and_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(all(pins[n] for n in names))}

    return fn


def _nand_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(not all(pins[n] for n in names))}

    return fn


def _or_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(any(pins[n] for n in names))}

    return fn


def _nor_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(not any(pins[n] for n in names))}

    return fn


def _xor2(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(bool(pins["A"]) != bool(pins["B"]))}


def _xnor2(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(bool(pins["A"]) == bool(pins["B"]))}


def _mux2(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(pins["B"] if pins["S"] else pins["A"])}


def _aoi21(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(not ((pins["A"] and pins["B"]) or pins["C"]))}


def _oai21(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(not ((pins["A"] or pins["B"]) and pins["C"]))}


# --------------------------------------------------------------------------
# Sequential models
#
# The mapping passed to the eval function contains the connected data pins
# plus "Q" (the current state).  The function returns the next state after a
# rising clock edge.  Reset/set are synchronous and dominate the enable.
# --------------------------------------------------------------------------

def _dff(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Q": _bit(pins["D"])}


def _dff_rst(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["RST"]:
        return {"Q": 0}
    return {"Q": _bit(pins["D"])}


def _dff_set(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["SET"]:
        return {"Q": 1}
    return {"Q": _bit(pins["D"])}


def _dff_en(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["EN"]:
        return {"Q": _bit(pins["D"])}
    return {"Q": _bit(pins["Q"])}


def _dff_en_rst(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["RST"]:
        return {"Q": 0}
    if pins["EN"]:
        return {"Q": _bit(pins["D"])}
    return {"Q": _bit(pins["Q"])}


def _dff_en_set(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["RST"]:
        return {"Q": 1}
    if pins["EN"]:
        return {"Q": _bit(pins["D"])}
    return {"Q": _bit(pins["Q"])}


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

def _spec(
    name: str,
    inputs: Sequence[str],
    outputs: Sequence[str],
    eval_fn: CombEval,
    sequential: bool = False,
    description: str = "",
) -> CellSpec:
    return CellSpec(
        name=name,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        sequential=sequential,
        eval_fn=eval_fn,
        description=description,
    )


PRIMITIVES: Dict[str, CellSpec] = {}


def _register(spec: CellSpec) -> None:
    PRIMITIVES[spec.name] = spec


_register(_spec("TIE0", [], ["Y"], _tie0, description="constant logic 0"))
_register(_spec("TIE1", [], ["Y"], _tie1, description="constant logic 1"))
_register(_spec("BUF", ["A"], ["Y"], _buf, description="non-inverting buffer"))
_register(_spec("INV", ["A"], ["Y"], _inv, description="inverter"))

for _n in (2, 3, 4):
    _pins = ["A", "B", "C", "D"][:_n]
    _register(_spec(f"AND{_n}", _pins, ["Y"], _and_fn(_pins), description=f"{_n}-input AND"))
    _register(_spec(f"NAND{_n}", _pins, ["Y"], _nand_fn(_pins), description=f"{_n}-input NAND"))
    _register(_spec(f"OR{_n}", _pins, ["Y"], _or_fn(_pins), description=f"{_n}-input OR"))
    _register(_spec(f"NOR{_n}", _pins, ["Y"], _nor_fn(_pins), description=f"{_n}-input NOR"))

_register(_spec("XOR2", ["A", "B"], ["Y"], _xor2, description="2-input XOR"))
_register(_spec("XNOR2", ["A", "B"], ["Y"], _xnor2, description="2-input XNOR"))
_register(_spec("MUX2", ["A", "B", "S"], ["Y"], _mux2,
                description="2:1 multiplexor, Y = B when S else A"))
_register(_spec("AOI21", ["A", "B", "C"], ["Y"], _aoi21,
                description="AND-OR-invert: Y = !(A&B | C)"))
_register(_spec("OAI21", ["A", "B", "C"], ["Y"], _oai21,
                description="OR-AND-invert: Y = !((A|B) & C)"))

_register(_spec("DFF", ["D", "CLK"], ["Q"], _dff, sequential=True,
                description="D flip-flop"))
_register(_spec("DFF_RST", ["D", "CLK", "RST"], ["Q"], _dff_rst, sequential=True,
                description="D flip-flop with synchronous reset to 0"))
_register(_spec("DFF_SET", ["D", "CLK", "SET"], ["Q"], _dff_set, sequential=True,
                description="D flip-flop with synchronous set to 1"))
_register(_spec("DFF_EN", ["D", "CLK", "EN"], ["Q"], _dff_en, sequential=True,
                description="D flip-flop with clock enable"))
_register(_spec("DFF_EN_RST", ["D", "CLK", "EN", "RST"], ["Q"], _dff_en_rst, sequential=True,
                description="D flip-flop with clock enable and synchronous reset to 0"))
_register(_spec("DFF_EN_SET", ["D", "CLK", "EN", "RST"], ["Q"], _dff_en_set, sequential=True,
                description="D flip-flop with clock enable and synchronous reset to 1"))


def is_sequential(cell_type: str) -> bool:
    """Return ``True`` when ``cell_type`` names a flip-flop primitive."""
    return PRIMITIVES[cell_type].sequential


def combinational_eval(cell_type: str, pins: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate a combinational primitive's outputs for the given pin values."""
    spec = PRIMITIVES[cell_type]
    if spec.sequential:
        raise ValueError(f"{cell_type} is sequential; use flop_next_state()")
    return spec.eval_fn(pins)


def flop_next_state(cell_type: str, pins: Mapping[str, int]) -> int:
    """Compute a flip-flop's next state after a rising clock edge.

    ``pins`` must contain the connected data/control pin values plus the
    current state under the key ``"Q"``.
    """
    spec = PRIMITIVES[cell_type]
    if not spec.sequential:
        raise ValueError(f"{cell_type} is combinational; use combinational_eval()")
    return spec.eval_fn(pins)["Q"]
