"""Primitive cell vocabulary.

Every netlist in the reproduction is built from the fixed set of primitive
cell types defined here.  A primitive is described by a :class:`CellSpec`
holding its pin lists, whether it is sequential, and a functional model used
by the cycle-accurate simulator.

The set mirrors a small 0.18 um-class standard-cell library: inverters and
buffers, 2/3/4-input NAND / NOR / AND / OR, XOR / XNOR, a 2:1 multiplexor,
AOI/OAI cells, constant ties and a family of D flip-flops with optional
clock-enable and synchronous reset/set.  Area and timing characteristics for
the same type names live in :mod:`repro.synth.cell_library`; this module is
purely structural/functional so the HDL layer has no dependency on the
synthesis layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

__all__ = [
    "CellSpec",
    "PRIMITIVES",
    "is_sequential",
    "combinational_eval",
    "flop_next_state",
    "compile_comb",
    "compile_flop",
]

# A combinational evaluation function maps input pin values to output pin values.
CombEval = Callable[[Mapping[str, int]], Dict[str, int]]


@dataclass(frozen=True)
class CellSpec:
    """Static description of a primitive cell type.

    Attributes
    ----------
    name:
        Cell type name, e.g. ``"NAND2"``.
    inputs:
        Ordered input pin names.
    outputs:
        Ordered output pin names.
    sequential:
        ``True`` for flip-flops.
    eval_fn:
        Functional model.  For combinational cells it maps input pin values
        to output pin values.  For sequential cells it computes the *next*
        state from the pins ``D``/``EN``/``RST``/``SET`` and the current
        state ``Q`` (passed in the mapping under the key ``"Q"``).
    description:
        Human-readable description used in documentation and reports.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    sequential: bool
    eval_fn: CombEval
    description: str = ""


def _bit(value: int) -> int:
    return 1 if value else 0


# --------------------------------------------------------------------------
# Combinational models
# --------------------------------------------------------------------------

def _tie0(_: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 0}


def _tie1(_: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": 1}


def _buf(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(pins["A"])}


def _inv(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(not pins["A"])}


def _and_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(all(pins[n] for n in names))}

    return fn


def _nand_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(not all(pins[n] for n in names))}

    return fn


def _or_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(any(pins[n] for n in names))}

    return fn


def _nor_fn(names: Sequence[str]) -> CombEval:
    def fn(pins: Mapping[str, int]) -> Dict[str, int]:
        return {"Y": _bit(not any(pins[n] for n in names))}

    return fn


def _xor2(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(bool(pins["A"]) != bool(pins["B"]))}


def _xnor2(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(bool(pins["A"]) == bool(pins["B"]))}


def _mux2(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(pins["B"] if pins["S"] else pins["A"])}


def _aoi21(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(not ((pins["A"] and pins["B"]) or pins["C"]))}


def _oai21(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Y": _bit(not ((pins["A"] or pins["B"]) and pins["C"]))}


# --------------------------------------------------------------------------
# Sequential models
#
# The mapping passed to the eval function contains the connected data pins
# plus "Q" (the current state).  The function returns the next state after a
# rising clock edge.  Reset/set are synchronous and dominate the enable.
# --------------------------------------------------------------------------

def _dff(pins: Mapping[str, int]) -> Dict[str, int]:
    return {"Q": _bit(pins["D"])}


def _dff_rst(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["RST"]:
        return {"Q": 0}
    return {"Q": _bit(pins["D"])}


def _dff_set(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["SET"]:
        return {"Q": 1}
    return {"Q": _bit(pins["D"])}


def _dff_en(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["EN"]:
        return {"Q": _bit(pins["D"])}
    return {"Q": _bit(pins["Q"])}


def _dff_en_rst(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["RST"]:
        return {"Q": 0}
    if pins["EN"]:
        return {"Q": _bit(pins["D"])}
    return {"Q": _bit(pins["Q"])}


def _dff_en_set(pins: Mapping[str, int]) -> Dict[str, int]:
    if pins["SET"]:
        return {"Q": 1}
    if pins["EN"]:
        return {"Q": _bit(pins["D"])}
    return {"Q": _bit(pins["Q"])}


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

def _spec(
    name: str,
    inputs: Sequence[str],
    outputs: Sequence[str],
    eval_fn: CombEval,
    sequential: bool = False,
    description: str = "",
) -> CellSpec:
    return CellSpec(
        name=name,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        sequential=sequential,
        eval_fn=eval_fn,
        description=description,
    )


PRIMITIVES: Dict[str, CellSpec] = {}


def _register(spec: CellSpec) -> None:
    PRIMITIVES[spec.name] = spec


_register(_spec("TIE0", [], ["Y"], _tie0, description="constant logic 0"))
_register(_spec("TIE1", [], ["Y"], _tie1, description="constant logic 1"))
_register(_spec("BUF", ["A"], ["Y"], _buf, description="non-inverting buffer"))
_register(_spec("INV", ["A"], ["Y"], _inv, description="inverter"))

for _n in (2, 3, 4):
    _pins = ["A", "B", "C", "D"][:_n]
    _register(_spec(f"AND{_n}", _pins, ["Y"], _and_fn(_pins), description=f"{_n}-input AND"))
    _register(_spec(f"NAND{_n}", _pins, ["Y"], _nand_fn(_pins), description=f"{_n}-input NAND"))
    _register(_spec(f"OR{_n}", _pins, ["Y"], _or_fn(_pins), description=f"{_n}-input OR"))
    _register(_spec(f"NOR{_n}", _pins, ["Y"], _nor_fn(_pins), description=f"{_n}-input NOR"))

_register(_spec("XOR2", ["A", "B"], ["Y"], _xor2, description="2-input XOR"))
_register(_spec("XNOR2", ["A", "B"], ["Y"], _xnor2, description="2-input XNOR"))
_register(_spec("MUX2", ["A", "B", "S"], ["Y"], _mux2,
                description="2:1 multiplexor, Y = B when S else A"))
_register(_spec("AOI21", ["A", "B", "C"], ["Y"], _aoi21,
                description="AND-OR-invert: Y = !(A&B | C)"))
_register(_spec("OAI21", ["A", "B", "C"], ["Y"], _oai21,
                description="OR-AND-invert: Y = !((A|B) & C)"))

_register(_spec("DFF", ["D", "CLK"], ["Q"], _dff, sequential=True,
                description="D flip-flop"))
_register(_spec("DFF_RST", ["D", "CLK", "RST"], ["Q"], _dff_rst, sequential=True,
                description="D flip-flop with synchronous reset to 0"))
_register(_spec("DFF_SET", ["D", "CLK", "SET"], ["Q"], _dff_set, sequential=True,
                description="D flip-flop with synchronous set to 1"))
_register(_spec("DFF_EN", ["D", "CLK", "EN"], ["Q"], _dff_en, sequential=True,
                description="D flip-flop with clock enable"))
_register(_spec("DFF_EN_RST", ["D", "CLK", "EN", "RST"], ["Q"], _dff_en_rst, sequential=True,
                description="D flip-flop with clock enable and synchronous reset to 0"))
_register(_spec("DFF_EN_SET", ["D", "CLK", "EN", "SET"], ["Q"], _dff_en_set, sequential=True,
                description="D flip-flop with clock enable and synchronous set to 1"))


def is_sequential(cell_type: str) -> bool:
    """Return ``True`` when ``cell_type`` names a flip-flop primitive."""
    return PRIMITIVES[cell_type].sequential


def combinational_eval(cell_type: str, pins: Mapping[str, int]) -> Dict[str, int]:
    """Evaluate a combinational primitive's outputs for the given pin values."""
    spec = PRIMITIVES[cell_type]
    if spec.sequential:
        raise ValueError(f"{cell_type} is sequential; use flop_next_state()")
    return spec.eval_fn(pins)


def flop_next_state(cell_type: str, pins: Mapping[str, int]) -> int:
    """Compute a flip-flop's next state after a rising clock edge.

    ``pins`` must contain the connected data/control pin values plus the
    current state under the key ``"Q"``.
    """
    spec = PRIMITIVES[cell_type]
    if not spec.sequential:
        raise ValueError(f"{cell_type} is combinational; use combinational_eval()")
    return spec.eval_fn(pins)["Q"]


# --------------------------------------------------------------------------
# Compiled evaluation
#
# The compiled simulator (:mod:`repro.hdl.compiled`) stores every net value
# in one flat list and asks this module for a closure per cell instance that
# reads its input slots and returns the output bit -- no per-step pin-name
# dict building.  The closures assume the value list only ever holds 0/1,
# which the simulator guarantees by normalising at every write.
# --------------------------------------------------------------------------

def compile_comb(cell_type: str, in_slots: Sequence[int]) -> Callable[[Sequence[int]], int]:
    """Return ``fn(values) -> bit`` evaluating one combinational cell.

    ``in_slots`` are the value-array indices of the cell's input pins in
    ``spec.inputs`` order.  Cell types without a hand-written specialisation
    fall back to the generic :attr:`CellSpec.eval_fn` model, so externally
    registered single-output primitives still compile.
    """
    spec = PRIMITIVES[cell_type]
    if spec.sequential:
        raise ValueError(f"{cell_type} is sequential; use compile_flop()")
    if len(spec.outputs) != 1:
        raise ValueError(
            f"{cell_type} has {len(spec.outputs)} outputs; the compiled "
            "simulator only supports single-output combinational primitives"
        )
    slots = tuple(in_slots)
    if cell_type == "TIE0":
        return lambda v: 0
    if cell_type == "TIE1":
        return lambda v: 1
    if cell_type == "BUF":
        (a,) = slots
        return lambda v: v[a]
    if cell_type == "INV":
        (a,) = slots
        return lambda v: 1 - v[a]
    if cell_type in ("AND2", "AND3", "AND4"):
        if len(slots) == 2:
            a, b = slots
            return lambda v: v[a] & v[b]
        if len(slots) == 3:
            a, b, c = slots
            return lambda v: v[a] & v[b] & v[c]
        a, b, c, d = slots
        return lambda v: v[a] & v[b] & v[c] & v[d]
    if cell_type in ("NAND2", "NAND3", "NAND4"):
        if len(slots) == 2:
            a, b = slots
            return lambda v: 1 - (v[a] & v[b])
        if len(slots) == 3:
            a, b, c = slots
            return lambda v: 1 - (v[a] & v[b] & v[c])
        a, b, c, d = slots
        return lambda v: 1 - (v[a] & v[b] & v[c] & v[d])
    if cell_type in ("OR2", "OR3", "OR4"):
        if len(slots) == 2:
            a, b = slots
            return lambda v: v[a] | v[b]
        if len(slots) == 3:
            a, b, c = slots
            return lambda v: v[a] | v[b] | v[c]
        a, b, c, d = slots
        return lambda v: v[a] | v[b] | v[c] | v[d]
    if cell_type in ("NOR2", "NOR3", "NOR4"):
        if len(slots) == 2:
            a, b = slots
            return lambda v: 1 - (v[a] | v[b])
        if len(slots) == 3:
            a, b, c = slots
            return lambda v: 1 - (v[a] | v[b] | v[c])
        a, b, c, d = slots
        return lambda v: 1 - (v[a] | v[b] | v[c] | v[d])
    if cell_type == "XOR2":
        a, b = slots
        return lambda v: v[a] ^ v[b]
    if cell_type == "XNOR2":
        a, b = slots
        return lambda v: 1 - (v[a] ^ v[b])
    if cell_type == "MUX2":
        a, b, s = slots
        return lambda v: v[b] if v[s] else v[a]
    if cell_type == "AOI21":
        a, b, c = slots
        return lambda v: 1 - ((v[a] & v[b]) | v[c])
    if cell_type == "OAI21":
        a, b, c = slots
        return lambda v: 1 - ((v[a] | v[b]) & v[c])

    pins = spec.inputs
    out_pin = spec.outputs[0]

    def generic(v, _fn=spec.eval_fn, _pins=pins, _slots=slots, _out=out_pin):
        return _bit(_fn({p: v[s] for p, s in zip(_pins, _slots)})[_out])

    return generic


def compile_flop(cell_type: str, slot_of: Mapping[str, int]) -> Callable[[Sequence[int], int], int]:
    """Return ``fn(values, state) -> next_state`` for one flip-flop instance.

    ``slot_of`` maps the flop's connected input pin names to value-array
    indices (``CLK`` may be present; it is functionally ignored).
    """
    spec = PRIMITIVES[cell_type]
    if not spec.sequential:
        raise ValueError(f"{cell_type} is combinational; use compile_comb()")
    if cell_type == "DFF":
        d = slot_of["D"]
        return lambda v, q: v[d]
    if cell_type == "DFF_RST":
        d, r = slot_of["D"], slot_of["RST"]
        return lambda v, q: 0 if v[r] else v[d]
    if cell_type == "DFF_SET":
        d, s = slot_of["D"], slot_of["SET"]
        return lambda v, q: 1 if v[s] else v[d]
    if cell_type == "DFF_EN":
        d, e = slot_of["D"], slot_of["EN"]
        return lambda v, q: v[d] if v[e] else q
    if cell_type == "DFF_EN_RST":
        d, e, r = slot_of["D"], slot_of["EN"], slot_of["RST"]
        return lambda v, q: 0 if v[r] else (v[d] if v[e] else q)
    if cell_type == "DFF_EN_SET":
        d, e, s = slot_of["D"], slot_of["EN"], slot_of["SET"]
        return lambda v, q: 1 if v[s] else (v[d] if v[e] else q)

    items = tuple(slot_of.items())

    def generic(v, q, _fn=spec.eval_fn, _items=items):
        pins = {p: v[s] for p, s in _items}
        pins["Q"] = q
        return _bit(_fn(pins)["Q"])

    return generic
