"""Cycle-accurate two-phase simulator for primitive-cell netlists.

The simulator evaluates the combinational cells of a :class:`~repro.hdl.netlist.Netlist`
in topological order, then updates every flip-flop simultaneously on a
simulated rising clock edge.  It is used throughout the reproduction to check
that elaborated address generators (SRAG, CntAG, FSM-based, SFM pointers)
actually produce the address or select-line sequence the paper expects before
their area and delay are measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hdl.netlist import Cell, Net, Netlist
from repro.hdl.primitives import combinational_eval, flop_next_state
from repro.obs import metrics

__all__ = ["Simulator", "SimulationError"]


class SimulationError(Exception):
    """Raised for simulation-time errors (unknown ports, undriven nets)."""


class Simulator:
    """Two-phase (settle combinational logic, then clock) netlist simulator.

    Parameters
    ----------
    netlist:
        The netlist to simulate.  It is validated and levelised once at
        construction time.

    Notes
    -----
    * The clock is implicit: every call to :meth:`step` represents one rising
      clock edge.  ``CLK`` pins on flip-flops are ignored functionally.
    * All nets start at 0 and all flip-flops start in state 0; use
      :meth:`poke` to drive inputs (for example a ``reset`` input) before the
      first clock edge.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._order: List[Cell] = netlist.topological_combinational_order()
        self._flops: List[Cell] = netlist.sequential_cells()
        self._values: Dict[str, int] = {name: 0 for name in netlist.nets}
        self._state: Dict[str, int] = {cell.name: 0 for cell in self._flops}
        self.cycle = 0
        self.settle()

    # ------------------------------------------------------------------ I/O
    def poke(self, port: str, value: int) -> None:
        """Drive a top-level input port with 0 or 1."""
        inputs = self.netlist.inputs
        if port not in inputs:
            raise SimulationError(f"unknown input port {port!r}")
        self._values[inputs[port].name] = 1 if value else 0

    def poke_bus(self, bus: Sequence[Net], value: int) -> None:
        """Drive a bus of input nets with the binary encoding of ``value``."""
        for i, net in enumerate(bus):
            if net.name not in self._values:
                raise SimulationError(f"net {net.name!r} is not in the netlist")
            if not net.is_input:
                raise SimulationError(f"net {net.name!r} is not an input")
            self._values[net.name] = (value >> i) & 1

    def peek(self, port_or_net) -> int:
        """Read the current value of a top-level port name or a :class:`Net`."""
        if isinstance(port_or_net, Net):
            if port_or_net.name not in self._values:
                raise SimulationError(
                    f"net {port_or_net.name!r} is not in the netlist"
                )
            return self._values[port_or_net.name]
        name = port_or_net
        if name in self.netlist.outputs:
            return self._values[self.netlist.outputs[name].name]
        if name in self.netlist.inputs:
            return self._values[self.netlist.inputs[name].name]
        if name in self.netlist.nets:
            return self._values[name]
        raise SimulationError(f"unknown port or net {name!r}")

    def peek_bus(self, bus: Sequence[Net]) -> int:
        """Read a bus as an unsigned integer (bit 0 is the LSB)."""
        value = 0
        for i, net in enumerate(bus):
            if net.name not in self._values:
                raise SimulationError(f"net {net.name!r} is not in the netlist")
            value |= self._values[net.name] << i
        return value

    def peek_onehot(self, bus: Sequence[Net]) -> Optional[int]:
        """Return the index of the single asserted bit of ``bus``.

        Returns ``None`` when no bit is asserted and raises
        :class:`SimulationError` when more than one bit is asserted — the
        condition the paper warns would corrupt an ADDM array.
        """
        asserted = [i for i, net in enumerate(bus) if self._values[net.name]]
        if not asserted:
            return None
        if len(asserted) > 1:
            raise SimulationError(f"multiple select lines asserted: {asserted}")
        return asserted[0]

    def flop_state(self, cell_name: str) -> int:
        """Return the current state of the named flip-flop cell."""
        if cell_name not in self._state:
            raise SimulationError(f"unknown flip-flop {cell_name!r}")
        return self._state[cell_name]

    # ------------------------------------------------------------- evaluation
    def settle(self) -> None:
        """Propagate flip-flop outputs and inputs through combinational logic."""
        # One aggregate incr per settle (not per cell): the reference
        # simulator re-evaluates its whole topological order each settle.
        metrics.incr("sim.reference.settle_events", len(self._order))
        for flop in self._flops:
            q_net = flop.pins.get("Q")
            if q_net is not None:
                self._values[q_net.name] = self._state[flop.name]
        for cell in self._order:
            pin_values = {
                pin: self._values[net.name] for pin, net in cell.input_nets().items()
            }
            outputs = combinational_eval(cell.cell_type, pin_values)
            for pin, value in outputs.items():
                net = cell.pins.get(pin)
                if net is not None:
                    self._values[net.name] = value

    def step(self, cycles: int = 1, **ports: int) -> None:
        """Advance the simulation by ``cycles`` rising clock edges.

        Keyword arguments drive input ports for the duration of the call,
        e.g. ``sim.step(next=1, reset=0)``; their previous values are
        restored before returning.
        """
        metrics.incr("sim.reference.cycles", cycles)
        previous: Dict[str, int] = {}
        for port, value in ports.items():
            previous[port] = self.peek(port)
            self.poke(port, value)
        for _ in range(cycles):
            self.settle()
            next_state: Dict[str, int] = {}
            for flop in self._flops:
                pin_values = {
                    pin: self._values[net.name]
                    for pin, net in flop.input_nets().items()
                }
                pin_values["Q"] = self._state[flop.name]
                next_state[flop.name] = flop_next_state(flop.cell_type, pin_values)
            self._state.update(next_state)
            self.cycle += 1
        self.settle()
        for port, value in previous.items():
            self.poke(port, value)

    def reset(self, reset_port: str = "reset", cycles: int = 1) -> None:
        """Pulse a synchronous reset input for ``cycles`` clock edges."""
        self.poke(reset_port, 1)
        self.step(cycles)
        self.poke(reset_port, 0)
        self.settle()

    # ------------------------------------------------------------ conveniences
    def run_sequence(
        self,
        output_bus: Sequence[Net],
        cycles: int,
        *,
        next_port: Optional[str] = "next",
        onehot: bool = False,
    ) -> List[int]:
        """Clock the design ``cycles`` times and sample ``output_bus`` each cycle.

        The bus is sampled *before* each clock edge (i.e. the value produced
        by the current state), which matches how the paper's address
        generators present address ``a_n`` while ``next`` requests ``a_{n+1}``.
        """
        if next_port is not None:
            self.poke(next_port, 1)
        samples: List[int] = []
        for _ in range(cycles):
            self.settle()
            if onehot:
                index = self.peek_onehot(output_bus)
                samples.append(-1 if index is None else index)
            else:
                samples.append(self.peek_bus(output_bus))
            self.step()
        return samples
