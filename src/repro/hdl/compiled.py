"""Compiled netlist simulator: the reproduction's simulation fast path.

The reference :class:`~repro.hdl.simulator.Simulator` re-evaluates every
combinational cell twice per cycle through per-step pin-name dictionaries,
which makes it the slowest loop in the repo once campaigns start measuring
switching activity (256 cycles per design point).  :class:`CompiledSimulator`
levelises the netlist **once** at construction into a flat evaluation
program:

* every net gets an integer slot in one flat value list,
* every combinational cell becomes a pre-specialised closure (see
  :func:`repro.hdl.primitives.compile_comb`) reading input slots and
  returning its output bit, ordered topologically,
* every flip-flop becomes a next-state closure plus a state slot.

Settling is event-driven: a cell is only re-evaluated when one of its input
nets actually changed, so quiescent logic cones (most of an SRAG, where a
single token moves per access) are skipped entirely.  :meth:`run` steps many
cycles in a batch with per-net toggle counting fused into the loop, using
the same cycle-boundary snapshot semantics as the reference power estimator
-- the compiled simulator is bit-for-bit compatible with the reference
``Simulator``; ``tests/test_hdl_compiled.py`` checks the equivalence on
every built-in workload.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence

from repro.hdl.netlist import Net, Netlist
from repro.hdl.primitives import compile_comb, compile_flop
from repro.hdl.simulator import SimulationError
from repro.obs import metrics

__all__ = ["CompiledSimulator"]


class CompiledSimulator:
    """Levelised, event-driven drop-in for :class:`~repro.hdl.simulator.Simulator`.

    Exposes the same interface (``poke``/``peek``/``step``/``reset``/
    ``run_sequence``/...) plus :meth:`run` for batch stepping with fused
    toggle counting.  State is observably identical to the reference
    simulator after every call.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self.cycle = 0

        self._slot_of: Dict[str, int] = {
            name: i for i, name in enumerate(netlist.nets)
        }
        self._net_names: List[str] = list(netlist.nets)
        n_nets = len(self._net_names)
        self._values: List[int] = [0] * n_nets
        self._toggles: List[int] = [0] * n_nets

        # Compile combinational cells in topological order; op index order is
        # therefore a valid evaluation schedule, which lets the event-driven
        # settle process pending ops through a min-heap of op indices.
        order = netlist.topological_combinational_order()
        self._op_fn = []
        self._op_out: List[int] = []
        self._net_ops: List[List[int]] = [[] for _ in range(n_nets)]
        for idx, cell in enumerate(order):
            spec = cell.spec
            in_slots = [self._slot_of[cell.pins[p].name] for p in spec.inputs]
            self._op_fn.append(compile_comb(cell.cell_type, in_slots))
            self._op_out.append(self._slot_of[cell.pins[spec.outputs[0]].name])
            for slot in set(in_slots):
                self._net_ops[slot].append(idx)
        self._op_fanout: List[List[int]] = [
            self._net_ops[out] for out in self._op_out
        ]
        self._pending: List[bool] = [False] * len(self._op_fn)
        self._heap: List[int] = []

        flops = netlist.sequential_cells()
        self._flop_fns = []
        self._flop_q_slot: List[int] = []
        self._flop_index: Dict[str, int] = {}
        self._state: List[int] = [0] * len(flops)
        for i, cell in enumerate(flops):
            slot_map = {
                pin: self._slot_of[net.name]
                for pin, net in cell.input_nets().items()
            }
            self._flop_fns.append(compile_flop(cell.cell_type, slot_map))
            q_net = cell.pins.get("Q")
            self._flop_q_slot.append(
                self._slot_of[q_net.name] if q_net is not None else -1
            )
            self._flop_index[cell.name] = i

        # Toggle bookkeeping for `run`: while counting, the first change of a
        # net within a cycle records its boundary value; at each cycle
        # boundary the recorded nets are compared against their current value
        # (so a change that reverts within one cycle counts zero toggles,
        # exactly like the reference snapshot comparison).
        self._counting = False
        self._interval_base: Dict[int, int] = {}

        # Settle-event accounting: `_drain` tallies processed ops into a
        # plain attribute (the event loop stays registry-free) and the public
        # entry points flush the delta to the metrics registry.
        self._settle_events = 0
        self._flushed_events = 0

        # Initial full settle, mirroring the reference constructor.
        for idx in range(len(self._op_fn)):
            self._pending[idx] = True
            self._heap.append(idx)
        self._drain()

    # ------------------------------------------------------------------ I/O
    def poke(self, port: str, value: int) -> None:
        """Drive a top-level input port with 0 or 1."""
        inputs = self.netlist.inputs
        if port not in inputs:
            raise SimulationError(f"unknown input port {port!r}")
        self._write_net(self._slot_of[inputs[port].name], 1 if value else 0)

    def poke_bus(self, bus: Sequence[Net], value: int) -> None:
        """Drive a bus of input nets with the binary encoding of ``value``."""
        for i, net in enumerate(bus):
            if net.name not in self._slot_of:
                raise SimulationError(f"net {net.name!r} is not in the netlist")
            if not net.is_input:
                raise SimulationError(f"net {net.name!r} is not an input")
            self._write_net(self._slot_of[net.name], (value >> i) & 1)

    def peek(self, port_or_net) -> int:
        """Read the current value of a top-level port name or a :class:`Net`."""
        if isinstance(port_or_net, Net):
            slot = self._slot_of.get(port_or_net.name)
            if slot is None:
                raise SimulationError(
                    f"net {port_or_net.name!r} is not in the netlist"
                )
            return self._values[slot]
        name = port_or_net
        if name in self.netlist.outputs:
            return self._values[self._slot_of[self.netlist.outputs[name].name]]
        if name in self.netlist.inputs:
            return self._values[self._slot_of[self.netlist.inputs[name].name]]
        if name in self._slot_of:
            return self._values[self._slot_of[name]]
        raise SimulationError(f"unknown port or net {name!r}")

    def peek_bus(self, bus: Sequence[Net]) -> int:
        """Read a bus as an unsigned integer (bit 0 is the LSB)."""
        value = 0
        for i, net in enumerate(bus):
            slot = self._slot_of.get(net.name)
            if slot is None:
                raise SimulationError(f"net {net.name!r} is not in the netlist")
            value |= self._values[slot] << i
        return value

    def peek_onehot(self, bus: Sequence[Net]) -> Optional[int]:
        """Return the index of the single asserted bit of ``bus`` (or None)."""
        asserted = [
            i for i, net in enumerate(bus) if self._values[self._slot_of[net.name]]
        ]
        if not asserted:
            return None
        if len(asserted) > 1:
            raise SimulationError(f"multiple select lines asserted: {asserted}")
        return asserted[0]

    def flop_state(self, cell_name: str) -> int:
        """Return the current state of the named flip-flop cell."""
        if cell_name not in self._flop_index:
            raise SimulationError(f"unknown flip-flop {cell_name!r}")
        return self._state[self._flop_index[cell_name]]

    # ------------------------------------------------------------- evaluation
    def settle(self) -> None:
        """Propagate any pending net changes through combinational logic."""
        self._drain()
        self._flush_events()

    def step(self, cycles: int = 1, **ports: int) -> None:
        """Advance the simulation by ``cycles`` rising clock edges.

        Keyword arguments drive input ports for the duration of the call
        only; their previous values are restored before returning.
        """
        previous = {}
        inputs = self.netlist.inputs
        for port, value in ports.items():
            if port not in inputs:
                raise SimulationError(f"unknown input port {port!r}")
            slot = self._slot_of[inputs[port].name]
            previous[slot] = self._values[slot]
            self._write_net(slot, 1 if value else 0)
        for _ in range(cycles):
            self._drain()
            self._clock()
        self._drain()
        metrics.incr("sim.compiled.cycles", cycles)
        self._flush_events()
        for slot, value in previous.items():
            self._write_net(slot, value)

    def run(self, cycles: int, *, count_toggles: bool = True) -> None:
        """Batch-step ``cycles`` clock edges, counting net toggles as it goes.

        Equivalent to ``step(cycles)`` (without keyword ports) but with
        per-net transition counting fused into the loop; read the counts
        with :meth:`toggle_counts` and clear them with :meth:`reset_toggles`.
        A toggle is a net whose settled value at the end of a cycle differs
        from its value at the end of the previous cycle -- the same
        snapshot-per-cycle semantics the reference power estimator uses.
        """
        if cycles < 0:
            raise SimulationError(f"cycles must be non-negative, got {cycles}")
        self._counting = count_toggles
        self._interval_base.clear()
        try:
            for i in range(cycles):
                self._drain()
                if i:
                    self._flush_interval()
                self._clock()
            self._drain()
            self._flush_interval()
        finally:
            self._counting = False
        metrics.incr("sim.compiled.cycles", cycles)
        self._flush_events()

    def reset(self, reset_port: str = "reset", cycles: int = 1) -> None:
        """Pulse a synchronous reset input for ``cycles`` clock edges."""
        self.poke(reset_port, 1)
        self.step(cycles)
        self.poke(reset_port, 0)
        self.settle()

    # -------------------------------------------------------------- toggles
    def toggle_counts(self) -> Dict[str, int]:
        """Net-name to transition count accumulated by :meth:`run`."""
        return {
            self._net_names[slot]: count
            for slot, count in enumerate(self._toggles)
            if count
        }

    def reset_toggles(self) -> None:
        """Zero the accumulated toggle counters."""
        self._toggles = [0] * len(self._toggles)
        self._interval_base.clear()

    # ------------------------------------------------------------ conveniences
    def run_sequence(
        self,
        output_bus: Sequence[Net],
        cycles: int,
        *,
        next_port: Optional[str] = "next",
        onehot: bool = False,
    ) -> List[int]:
        """Clock the design ``cycles`` times and sample ``output_bus`` each cycle.

        Identical semantics to the reference simulator: the bus is sampled
        *before* each clock edge.
        """
        if next_port is not None:
            self.poke(next_port, 1)
        samples: List[int] = []
        for _ in range(cycles):
            self._drain()
            if onehot:
                index = self.peek_onehot(output_bus)
                samples.append(-1 if index is None else index)
            else:
                samples.append(self.peek_bus(output_bus))
            self.step()
        return samples

    # -------------------------------------------------------------- internals
    def _write_net(self, slot: int, value: int) -> None:
        values = self._values
        if values[slot] == value:
            return
        if self._counting and slot not in self._interval_base:
            self._interval_base[slot] = values[slot]
        values[slot] = value
        pending = self._pending
        heap = self._heap
        for dep in self._net_ops[slot]:
            if not pending[dep]:
                pending[dep] = True
                heappush(heap, dep)

    def _drain(self) -> None:
        heap = self._heap
        if not heap:
            return
        pending = self._pending
        values = self._values
        op_fn = self._op_fn
        op_out = self._op_out
        op_fanout = self._op_fanout
        counting = self._counting
        base = self._interval_base
        processed = 0
        while heap:
            idx = heappop(heap)
            pending[idx] = False
            processed += 1
            new = op_fn[idx](values)
            out = op_out[idx]
            if new != values[out]:
                if counting and out not in base:
                    base[out] = values[out]
                values[out] = new
                for dep in op_fanout[idx]:
                    if not pending[dep]:
                        pending[dep] = True
                        heappush(heap, dep)
        self._settle_events += processed

    def _flush_events(self) -> None:
        delta = self._settle_events - self._flushed_events
        if delta:
            metrics.incr("sim.compiled.settle_events", delta)
            self._flushed_events = self._settle_events

    def _clock(self) -> None:
        values = self._values
        state = self._state
        # Snapshot-style simultaneous update: all next states are computed
        # before any state or Q net is written.
        nxt = [fn(values, state[i]) for i, fn in enumerate(self._flop_fns)]
        q_slots = self._flop_q_slot
        for i, value in enumerate(nxt):
            if value != state[i]:
                state[i] = value
                q = q_slots[i]
                if q >= 0:
                    self._write_net(q, value)
        self.cycle += 1

    def _flush_interval(self) -> None:
        base = self._interval_base
        if not base:
            return
        values = self._values
        toggles = self._toggles
        for slot, old in base.items():
            if values[slot] != old:
                toggles[slot] += 1
        base.clear()
