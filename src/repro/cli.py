"""``sradgen`` command-line tool.

A thin front end over :mod:`repro.core.sradgen`, mirroring the paper's
SRAdGen utility: read an address sequence, run the mapping procedure, and
emit synthesisable HDL plus (optionally) area/delay figures.  On top of
that, ``--campaign`` drives the batch engine (:mod:`repro.engine`): cached,
parallel design-space exploration over whole workload/geometry/style grids.

Usage examples::

    # Map a sequence stored one address per line and write VHDL
    sradgen --input addresses.txt --rows 4 --cols 4 --vhdl srag.vhd

    # Use a built-in workload and print mapping parameters and synthesis data
    sradgen --workload motion_est_read --rows 16 --cols 16 --report

    # Explore the design space for a workload
    sradgen --workload dct --rows 8 --cols 8 --explore

    # Run a batch campaign with a persistent result cache (re-running only
    # evaluates new points)
    sradgen --campaign demo --cache-dir .sradgen_cache
    sradgen --list-campaigns

    # Synthesis figures after logic optimization (what a real tool reports)
    sradgen --workload dct --rows 8 --cols 8 --report --opt-level 1

    # Bound the symbolic-FSM candidates while exploring
    sradgen --workload fifo --rows 8 --cols 8 --explore --max-fsm-states 32

    # Drop superseded lines from a long-lived campaign cache
    sradgen --compact-cache --cache-dir .sradgen_cache

    # Long-running campaign service; any number of clients share its
    # scheduler, cache and in-flight dedup table
    sradgen --serve --cache-dir .svc_cache --port 8787
    sradgen --campaign smoke --connect 127.0.0.1:8787
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.analysis.explorer import explore
from repro.core.mapping_params import MappingError
from repro.core.sradgen import generate
from repro.engine.cache import CacheLockTimeout, ResultCache
from repro.flow import FlowSpec, cli_overrides
from repro.obs import enable_tracing, get_tracer, metrics, render_spans, span
from repro.engine.runner import CampaignRunner, EvalRecord
from repro.engine.sweep import (
    CAMPAIGNS,
    available_campaigns,
    build_campaign,
    campaign_description,
)
from repro.workloads.loopnest import AffineAccessPattern
from repro.workloads.registry import WORKLOADS, build_pattern
from repro.workloads.sequences import AddressSequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.retry import RetryPolicy

__all__ = ["main", "build_parser"]


def _bounded_int(minimum: int):
    """Argparse type factory: an integer no smaller than ``minimum``."""

    def convert(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
        if value < minimum:
            raise argparse.ArgumentTypeError(f"must be >= {minimum}, got {value}")
        return value

    return convert


_opt_level = _bounded_int(0)
_fsm_states = _bounded_int(1)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="sradgen",
        description=(
            "Map an address sequence onto the Shift Register based Address "
            "Generator (SRAG) and emit synthesisable HDL, or run batch "
            "design-space campaigns."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--input",
        help="file containing one linear address per line (comments start with '#')",
    )
    source.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        help="use a built-in workload instead of an input file",
    )
    source.add_argument(
        "--campaign",
        choices=sorted(CAMPAIGNS),
        help="run a batch design-space campaign instead of a single mapping",
    )
    source.add_argument(
        "--list-campaigns",
        action="store_true",
        help="list available campaigns and exit",
    )
    source.add_argument(
        "--compact-cache",
        action="store_true",
        help=(
            "rewrite the --cache-dir result file keeping only the latest "
            "entry per key, then exit"
        ),
    )
    source.add_argument(
        "--cache-stats",
        action="store_true",
        help=(
            "print statistics about the --cache-dir result cache (entry "
            "count, live vs stale lines, status breakdown) and exit"
        ),
    )
    source.add_argument(
        "--serve",
        action="store_true",
        help=(
            "run the campaign service: a long-lived JSON-lines server that "
            "evaluates campaign/explore requests from many clients over one "
            "shared scheduler and cache (see --host/--port/--cache-dir)"
        ),
    )
    parser.add_argument("--rows", type=int, help="memory array rows")
    parser.add_argument("--cols", type=int, help="memory array columns")
    parser.add_argument("--vhdl", help="write generated VHDL to this file")
    parser.add_argument("--verilog", help="write generated Verilog to this file")
    parser.add_argument(
        "--report",
        action="store_true",
        help="print mapping parameters and run the synthesis flow",
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="evaluate alternative architectures and print the design space",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip gate-level verification of the generated SRAG",
    )
    parser.add_argument(
        "--opt-level",
        type=_opt_level,
        default=None,
        metavar="N",
        help=(
            "logic-optimization effort for synthesis (0 = raw netlist, "
            "1 = constant folding, sharing, chain collapsing and dead-cell "
            "removal; default 0).  With --campaign, overrides every job's "
            "opt level."
        ),
    )
    parser.add_argument(
        "--max-fsm-states",
        type=_fsm_states,
        default=None,
        metavar="N",
        help=(
            "skip symbolic-FSM candidates for sequences longer than N "
            "states (default 512).  Applies to --explore and, with "
            "--campaign, overrides every job's bound."
        ),
    )
    parser.add_argument(
        "--lint",
        action="count",
        default=None,
        dest="lint",
        help=(
            "run the design-rule checker (repro.lint.design) on every "
            "synthesised netlist and exit 1 on error-severity findings.  "
            "Repeat (--lint --lint) to add the SAT-backed semantic rules.  "
            "With --campaign, applies to every job (cache keys are "
            "unaffected); with --input/--workload it implies --report."
        ),
    )
    parser.add_argument(
        "--verify",
        action="store_const",
        const=1,
        default=None,
        dest="verify",
        help=(
            "formally verify (SAT-based CEC, repro.verify) that every "
            "synthesised netlist is equivalent to its pre-flow netlist; "
            "exit 2 on proven inequivalence.  With --campaign, applies to "
            "every job (cache keys are unaffected); with --input/--workload "
            "it implies --report."
        ),
    )
    engine = parser.add_argument_group("campaign options")
    engine.add_argument(
        "--cache-dir",
        help="persistent result-cache directory (campaigns resume from it)",
    )
    engine.add_argument(
        "--cache-backend",
        choices=["jsonl", "sharded"],
        default=None,
        help=(
            "cache write layout: 'jsonl' appends to one results.jsonl "
            "(single writer; the default for CLI runs), 'sharded' gives "
            "every writer its own segment file so concurrent processes can "
            "share a cache dir (the default for --serve).  Reads always "
            "see both layouts."
        ),
    )
    engine.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help=(
            "run --campaign against a remote sradgen --serve instance "
            "instead of evaluating locally"
        ),
    )
    engine.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for campaign evaluation (default: min(cpus, 8))",
    )
    engine.add_argument(
        "--serial",
        action="store_true",
        help="evaluate campaign jobs serially in-process",
    )
    engine.add_argument(
        "--force",
        action="store_true",
        help="re-evaluate campaign jobs even when cached",
    )
    engine.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job campaign progress lines",
    )
    service = parser.add_argument_group("service options")
    service.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface for --serve to bind (default 127.0.0.1)",
    )
    service.add_argument(
        "--port",
        type=int,
        default=0,
        help="port for --serve to bind (default 0: pick a free port and print it)",
    )
    resilience = parser.add_argument_group("resilience options")
    resilience.add_argument(
        "--fault-plan",
        metavar="FILE",
        help=(
            "arm the deterministic fault-injection plan in FILE (JSON; see "
            "repro.resilience.faults) for this process and its pool workers "
            "(equivalent to SRADGEN_FAULTS=FILE)"
        ),
    )
    resilience.add_argument(
        "--retry-max",
        type=int,
        metavar="N",
        help=(
            "retry transient evaluation failures up to N times with "
            "deterministic exponential backoff (default: no retries)"
        ),
    )
    resilience.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base backoff before the first retry, doubling per attempt (default 0.05)",
    )
    resilience.add_argument(
        "--rebuild-budget",
        type=int,
        default=2,
        metavar="N",
        help=(
            "rebuild a broken worker pool up to N times before degrading to "
            "serial evaluation (default 2)"
        ),
    )
    obs = parser.add_argument_group("observability options")
    obs.add_argument(
        "--trace",
        action="store_true",
        help=(
            "enable hierarchical tracing and print the span tree to stderr "
            "when the command finishes (equivalent to SRADGEN_TRACE=1)"
        ),
    )
    obs.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the process metrics registry as JSON to FILE on exit",
    )
    return parser


def _read_address_file(path: str) -> List[int]:
    addresses: List[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.split("#", 1)[0].strip()
            if not stripped:
                continue
            try:
                addresses.append(int(stripped, 0))
            except ValueError:
                raise SystemExit(
                    f"{path}:{line_number}: not an address: {stripped!r}"
                ) from None
    if not addresses:
        raise SystemExit(f"{path}: no addresses found")
    return addresses


def _load_sequence(args: argparse.Namespace) -> AddressSequence:
    if args.workload:
        pattern: AffineAccessPattern = build_pattern(args.workload, args.rows, args.cols)
        return pattern.to_sequence()
    addresses = _read_address_file(args.input)
    return AddressSequence.from_linear(
        name=args.input, addresses=addresses, rows=args.rows, cols=args.cols
    )


def _format_progress(record: EvalRecord, done: int, total: int) -> str:
    """One campaign progress line; tolerates records with empty notes."""
    source = "cached" if record.cached else f"{record.duration_s * 1000:.0f} ms"
    if record.status == "ok":
        detail = (
            f"delay {record.delay_ns:7.3f} ns   area {record.area_cells:10.1f} cu"
        )
        if record.has_power:
            detail += f"   e/access {record.energy_per_access_fj:8.1f} fJ"
    else:
        note_lines = record.note.splitlines()
        first_line = note_lines[0] if note_lines else ""
        detail = f"{record.status}: {first_line[:60]}"
    return (
        f"  [{done:>{len(str(total))}}/{total}] "
        f"{record.label:<42} {detail}  ({source})"
    )


def _count_cache_lines(cache: ResultCache) -> int:
    """Non-empty lines across every data file (base + writer segments)."""
    total = 0
    for path in cache.data_paths():
        if not os.path.exists(path):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            total += sum(1 for line in handle if line.strip())
    return total


def _compact_cache(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Merge segments and drop superseded lines; report the shrink.

    Compaction takes the directory's lock file, so it is safe to run while
    a service (or another CLI run using the sharded backend) is appending.
    """
    if not args.cache_dir:
        parser.error("--compact-cache requires --cache-dir")
    cache = ResultCache(args.cache_dir)
    path = cache.path
    before = _count_cache_lines(cache)
    segments = sum(1 for p in cache.data_paths() if p != path)
    try:
        cache.compact()
    except CacheLockTimeout as error:
        print(f"cannot compact: {error}", file=sys.stderr)
        return 1
    after = _count_cache_lines(cache)
    merged = f", {segments} segment(s) merged" if segments else ""
    print(
        f"compacted {path}: {before} -> {after} lines "
        f"({len(cache)} live records, {before - after} superseded dropped{merged})"
    )
    return 0


def _cache_stats(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Print cache health figures: entries, stale lines, status mix."""
    if not args.cache_dir:
        parser.error("--cache-stats requires --cache-dir")
    cache = ResultCache(args.cache_dir)
    path = cache.path
    total_lines = _count_cache_lines(cache)
    live = len(cache)
    stale = total_lines - live
    segments = sum(1 for p in cache.data_paths() if p != path)
    print(f"cache {path}")
    print(f"  entries   {live} live record(s)")
    print(
        f"  lines     {total_lines} total ({live} live, {stale} superseded"
        f"{'' if stale == 0 else ' -- run --compact-cache'})"
    )
    if segments:
        print(f"  segments  {segments} writer segment file(s) -- run --compact-cache to merge")
    statuses: dict = {}
    for record in cache.records():
        status = record.get("status", "unknown")
        statuses[status] = statuses.get(status, 0) + 1
    for status in sorted(statuses):
        print(f"  status    {status}: {statuses[status]}")
    print(
        f"  counters  hits={metrics.counter('cache.hits')} "
        f"misses={metrics.counter('cache.misses')} "
        f"loads={metrics.counter('cache.loads')}"
    )
    return 0


def _parse_address(text: str) -> tuple:
    """Split a ``HOST:PORT`` --connect argument."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"--connect expects HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"--connect expects a numeric port, got {port!r}") from None


def _run_campaign(args: argparse.Namespace) -> int:
    campaign = build_campaign(args.campaign)
    overrides = cli_overrides(args)
    if overrides:
        # Explicit flow flags (--opt-level, --max-fsm-states, ...) re-configure
        # the whole grid (jobs are frozen dataclasses, so each override is a
        # fresh job with a fresh key).
        campaign = dataclasses.replace(
            campaign,
            jobs=[
                dataclasses.replace(job, spec=job.spec.with_overrides(**overrides))
                for job in campaign.jobs
            ],
        )
        settings = ", ".join(f"{k}={v}" for k, v in sorted(overrides.items()))
        print(f"overriding flow settings: every job runs with {settings}")

    def progress(record: EvalRecord, done: int, total: int) -> None:
        print(_format_progress(record, done, total))

    if args.connect:
        # Remote path: ship the (possibly overridden) grid to a running
        # sradgen --serve instance; the spec dictionaries on the wire
        # reproduce the exact job keys, so the server's cache behaves as if
        # the campaign ran locally.
        from repro.service.client import ServiceUnavailable, run_campaign_remote

        host, port = _parse_address(args.connect)
        print(f"campaign {args.campaign!r}: {len(campaign)} jobs, remote {host}:{port}")
        try:
            result = run_campaign_remote(
                host,
                port,
                campaign,
                force=args.force,
                progress=None if args.quiet else progress,
                retry_policy=_retry_policy(args),
            )
        except ServiceUnavailable as error:
            # Distinct exit code, one actionable line, no traceback: "the
            # server is down" is an operational condition, not a crash.
            print(
                f"sradgen: campaign service unavailable: {error} "
                f"(is `sradgen --serve` running on {host}:{port}?)",
                file=sys.stderr,
            )
            return 3
    else:
        cache = ResultCache(args.cache_dir, backend=args.cache_backend or "jsonl")
        workers = 0 if args.serial else args.workers
        print(
            f"campaign {args.campaign!r}: {len(campaign)} jobs, "
            f"cache {args.cache_dir or '(in-memory)'}"
        )
        with CampaignRunner(
            cache,
            workers=workers,
            progress=None if args.quiet else progress,
            retry_policy=_retry_policy(args),
            rebuild_budget=args.rebuild_budget,
        ) as runner:
            result = runner.run(campaign, force=args.force)
    print()
    print(result.describe())
    errors = sum(1 for record in result.records if record.status == "error")
    lint_errors = 0
    if args.lint:
        lint_errors = _report_campaign_lint(result.records)
    verify_failures = 0
    if args.verify:
        verify_failures = _report_campaign_verify(result.records)
    # Proven inequivalence outranks everything: exit 2 > 1 > 0.
    if verify_failures:
        return 2
    return 1 if errors or lint_errors else 0


def _report_campaign_lint(records: Sequence[EvalRecord]) -> int:
    """Print design-lint findings from a linted campaign; return error count.

    Cached (and remote) records carry no findings -- lint is volatile
    evaluation metadata, never serialised -- so only freshly evaluated
    records contribute.
    """
    lint_errors = 0
    for record in records:
        for finding in record.lint_findings:
            severity = finding.get("severity", "")
            if severity == "error":
                lint_errors += 1
            print(
                f"lint: {record.label}: {finding.get('location', '')}: "
                f"{severity} [{finding.get('rule', '')}] "
                f"{finding.get('message', '')}",
                file=sys.stderr,
            )
    fresh = sum(1 for record in records if not record.cached)
    print(
        f"lint: {lint_errors} error-severity finding(s) over "
        f"{fresh} freshly evaluated record(s)"
    )
    return lint_errors


def _report_campaign_verify(records: Sequence[EvalRecord]) -> int:
    """Print CEC verdicts from a verified campaign; return failure count.

    Same volatility contract as lint: cached (and remote) records carry no
    verdict, so only freshly evaluated records contribute.
    """
    failures = 0
    for record in records:
        verdict = record.verify_result
        if verdict is None:
            continue
        if not verdict.get("equivalent", True):
            failures += 1
            cex = verdict.get("counterexample") or {}
            print(
                f"verify: {record.label}: NOT equivalent "
                f"({verdict.get('method', '?')}): output "
                f"{cex.get('port', '?')} differs at cycle {cex.get('cycle', '?')}",
                file=sys.stderr,
            )
    fresh = sum(1 for record in records if not record.cached)
    print(
        f"verify: {failures} proven-inequivalent record(s) over "
        f"{fresh} freshly evaluated record(s)"
    )
    return failures


def _serve(args: argparse.Namespace) -> int:
    """Run the campaign service until SIGINT/SIGTERM (drains, then exits)."""
    import asyncio
    import signal

    from repro.service.server import CampaignService

    service = CampaignService(
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend or "sharded",
        workers=0 if args.serial else args.workers,
        retry_policy=_retry_policy(args),
        rebuild_budget=args.rebuild_budget,
    )

    async def _main() -> None:
        host, port = await service.start(args.host, args.port)
        print(f"sradgen service listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, service.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover  # sradlint: disable=ast.silent-except -- platform without signal handlers; service still serves
                pass
        await service.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover  # sradlint: disable=ast.silent-except -- Ctrl-C is the documented way to stop the service
        pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; die quietly like cat does.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


def _mode(args: argparse.Namespace) -> str:
    """Short label for the selected mode, used as the root span detail."""
    if args.list_campaigns:
        return "list-campaigns"
    if args.compact_cache:
        return "compact-cache"
    if args.cache_stats:
        return "cache-stats"
    if args.serve:
        return "serve"
    if args.campaign:
        return f"campaign {args.campaign}"
    if args.explore:
        return "explore"
    return "generate"


def _retry_policy(args: argparse.Namespace) -> Optional["RetryPolicy"]:
    """The RetryPolicy the --retry-* flags describe, or None (off)."""
    if args.retry_max is None:
        return None
    from repro.resilience.retry import RetryPolicy

    return RetryPolicy(
        max_retries=args.retry_max, base_backoff_s=args.retry_backoff
    )


def _dispatch(argv: Optional[Sequence[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace:
        enable_tracing()
    if args.fault_plan:
        from repro.resilience.faults import FAULTS_ENV_VAR, FaultPlan, install_plan

        install_plan(FaultPlan.load(args.fault_plan))
        # Pool workers arm the same plan through the inherited environment.
        os.environ[FAULTS_ENV_VAR] = args.fault_plan
    try:
        with span("sradgen", detail=_mode(args)):
            return _execute(args, parser)
    finally:
        # Observability output is emitted even when the action fails:
        # a partial trace of a crashed campaign is exactly when you want one.
        if args.trace:
            rendered = render_spans(get_tracer().roots)
            if rendered:
                print(rendered, file=sys.stderr)
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(metrics.to_json() + "\n")


def _execute(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.list_campaigns:
        # Descriptions come from the registry, so listing never expands a grid.
        for name in available_campaigns():
            print(f"{name:<18} {campaign_description(name)}")
        return 0

    if args.compact_cache:
        return _compact_cache(args, parser)

    if args.cache_stats:
        return _cache_stats(args, parser)

    if args.serve:
        return _serve(args)

    if args.campaign:
        return _run_campaign(args)

    if args.rows is None or args.cols is None:
        parser.error("--rows and --cols are required with --input/--workload")
    sequence = _load_sequence(args)
    # The CLI builds exactly one FlowSpec and hands it down; every flow flag
    # is one namespace attribute named after its spec field.
    spec = FlowSpec.from_cli_args(args)

    if args.explore:
        if not args.workload:
            parser.error("--explore requires --workload (it needs the loop nest)")
        pattern = build_pattern(args.workload, args.rows, args.cols)
        print(explore(pattern, spec=spec).describe())
        return 0

    try:
        result = generate(
            sequence,
            emit_vhdl_text=bool(args.vhdl) or not args.verilog,
            emit_verilog_text=bool(args.verilog),
            synthesize=args.report or bool(args.lint) or bool(args.verify),
            spec=spec,
            verify=not args.no_verify,
        )
    except MappingError as error:
        print(f"mapping failed: {error}", file=sys.stderr)
        print(
            "hint: the sequence violates an SRAG restriction; consider the "
            "relaxed multi-counter architecture (repro.core.multi_counter) or "
            "a CntAG/FSM generator.",
            file=sys.stderr,
        )
        return 1

    print(result.describe())
    lint_failed = False
    if args.lint and result.synthesis is not None:
        report = result.synthesis.lint_report
        if report is not None:
            for finding in report.findings:
                print(f"lint: {finding.render()}", file=sys.stderr)
            print(f"lint: {report.summary()}")
            lint_failed = report.has_errors
    verify_failed = False
    if args.verify and result.synthesis is not None:
        verdict = result.synthesis.verify_report
        if verdict is not None:
            print(f"verify: {verdict.summary()}")
            if not verdict.equivalent:
                assert verdict.counterexample is not None
                print(
                    f"verify: {verdict.counterexample.describe()}",
                    file=sys.stderr,
                )
                verify_failed = True
    if args.vhdl:
        with open(args.vhdl, "w", encoding="utf-8") as handle:
            handle.write(result.vhdl or "")
        print(f"wrote VHDL to {args.vhdl}")
    if args.verilog:
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(result.verilog or "")
        print(f"wrote Verilog to {args.verilog}")
    # Proven inequivalence outranks everything: exit 2 > 1 > 0.
    if verify_failed:
        return 2
    return 1 if lint_failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
