"""``sradgen`` command-line tool.

A thin front end over :mod:`repro.core.sradgen`, mirroring the paper's
SRAdGen utility: read an address sequence, run the mapping procedure, and
emit synthesisable HDL plus (optionally) area/delay figures.

Usage examples::

    # Map a sequence stored one address per line and write VHDL
    sradgen --input addresses.txt --rows 4 --cols 4 --vhdl srag.vhd

    # Use a built-in workload and print mapping parameters and synthesis data
    sradgen --workload motion_est_read --rows 16 --cols 16 --report

    # Explore the design space for a workload
    sradgen --workload dct --rows 8 --cols 8 --explore
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.explorer import explore
from repro.core.mapping_params import MappingError
from repro.core.sradgen import generate
from repro.workloads import dct, fifo, motion_estimation, zoom
from repro.workloads.loopnest import AffineAccessPattern
from repro.workloads.sequences import AddressSequence

__all__ = ["main", "build_parser"]

#: Built-in workload factories: name -> callable(rows, cols) -> AffineAccessPattern
WORKLOADS = {
    "motion_est_read": lambda rows, cols: motion_estimation.new_img_read_pattern(
        cols, rows, 2, 2
    ),
    "motion_est_write": lambda rows, cols: motion_estimation.new_img_write_pattern(
        cols, rows
    ),
    "dct": lambda rows, cols: dct.column_pass_pattern(cols, rows),
    "zoombytwo": lambda rows, cols: zoom.zoom_read_pattern(cols, rows, 2),
    "fifo": lambda rows, cols: fifo.fifo_pattern(cols, rows),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="sradgen",
        description=(
            "Map an address sequence onto the Shift Register based Address "
            "Generator (SRAG) and emit synthesisable HDL."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--input",
        help="file containing one linear address per line (comments start with '#')",
    )
    source.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        help="use a built-in workload instead of an input file",
    )
    parser.add_argument("--rows", type=int, required=True, help="memory array rows")
    parser.add_argument("--cols", type=int, required=True, help="memory array columns")
    parser.add_argument("--vhdl", help="write generated VHDL to this file")
    parser.add_argument("--verilog", help="write generated Verilog to this file")
    parser.add_argument(
        "--report",
        action="store_true",
        help="print mapping parameters and run the synthesis flow",
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="evaluate alternative architectures and print the design space",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip gate-level verification of the generated SRAG",
    )
    return parser


def _read_address_file(path: str) -> List[int]:
    addresses: List[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.split("#", 1)[0].strip()
            if not stripped:
                continue
            try:
                addresses.append(int(stripped, 0))
            except ValueError:
                raise SystemExit(
                    f"{path}:{line_number}: not an address: {stripped!r}"
                ) from None
    if not addresses:
        raise SystemExit(f"{path}: no addresses found")
    return addresses


def _load_sequence(args: argparse.Namespace) -> AddressSequence:
    if args.workload:
        pattern: AffineAccessPattern = WORKLOADS[args.workload](args.rows, args.cols)
        return pattern.to_sequence()
    addresses = _read_address_file(args.input)
    return AddressSequence.from_linear(
        name=args.input, addresses=addresses, rows=args.rows, cols=args.cols
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    sequence = _load_sequence(args)

    if args.explore:
        if not args.workload:
            parser.error("--explore requires --workload (it needs the loop nest)")
        pattern = WORKLOADS[args.workload](args.rows, args.cols)
        print(explore(pattern).describe())
        return 0

    try:
        result = generate(
            sequence,
            emit_vhdl_text=bool(args.vhdl) or not args.verilog,
            emit_verilog_text=bool(args.verilog),
            synthesize=args.report,
            verify=not args.no_verify,
        )
    except MappingError as error:
        print(f"mapping failed: {error}", file=sys.stderr)
        print(
            "hint: the sequence violates an SRAG restriction; consider the "
            "relaxed multi-counter architecture (repro.core.multi_counter) or "
            "a CntAG/FSM generator.",
            file=sys.stderr,
        )
        return 1

    print(result.describe())
    if args.vhdl:
        with open(args.vhdl, "w", encoding="utf-8") as handle:
            handle.write(result.vhdl or "")
        print(f"wrote VHDL to {args.vhdl}")
    if args.verilog:
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(result.verilog or "")
        print(f"wrote Verilog to {args.verilog}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
