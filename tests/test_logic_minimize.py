"""Tests for truth tables, two-level minimisation and SOP synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.synth.logic.minimize import Implicant, minimize
from repro.synth.logic.synthesize import sop_to_netlist
from repro.synth.logic.truth_table import TruthTable


# ---------------------------------------------------------------------------
# Truth tables
# ---------------------------------------------------------------------------

def test_truth_table_validation():
    with pytest.raises(ValueError):
        TruthTable(num_inputs=2, on_set=frozenset({4}))
    with pytest.raises(ValueError):
        TruthTable(num_inputs=2, on_set=frozenset({1}), dc_set=frozenset({1}))


def test_truth_table_from_function():
    table = TruthTable.from_function(3, lambda m: int(bin(m).count("1") == 2))
    assert table.on_set == frozenset({3, 5, 6})
    assert table.off_set == frozenset({0, 1, 2, 4, 7})


def test_truth_table_complement_and_constant():
    table = TruthTable.from_minterms(2, on_set=[0, 1, 2, 3])
    assert table.is_constant()
    comp = table.complement()
    assert comp.on_set == frozenset()


def test_truth_table_with_dont_cares():
    table = TruthTable.from_function(2, lambda m: None if m == 3 else int(m == 1))
    assert table.dc_set == frozenset({3})
    assert table.evaluate(1) == 1
    assert table.evaluate(3) == 0


# ---------------------------------------------------------------------------
# Implicants
# ---------------------------------------------------------------------------

def test_implicant_string_round_trip():
    cube = Implicant.from_string("1-0")
    assert cube.to_string() == "1-0"
    assert cube.covers(0b001)
    assert cube.covers(0b011)
    assert not cube.covers(0b101)
    assert cube.literal_count == 2
    assert cube.literals() == [(0, True), (2, False)]


def test_implicant_bad_string():
    with pytest.raises(ValueError):
        Implicant.from_string("10x")


# ---------------------------------------------------------------------------
# Minimisation
# ---------------------------------------------------------------------------

def _cover_evaluates(cover, minterm):
    return int(any(cube.covers(minterm) for cube in cover))


def test_minimize_classic_example():
    # f(a,b,c) = sum m(1,3,5,7) = c (variable 0).
    table = TruthTable.from_minterms(3, on_set=[1, 3, 5, 7])
    cover, stats = minimize(table)
    assert len(cover) == 1
    assert cover[0].to_string() == "1--"
    assert stats.exact


def test_minimize_xor_needs_two_terms():
    table = TruthTable.from_minterms(2, on_set=[1, 2])
    cover, _stats = minimize(table)
    assert len(cover) == 2


def test_minimize_uses_dont_cares():
    # With don't-cares on 2 and 3, f = {1} union dc{3} can merge into "1-".
    table = TruthTable.from_minterms(2, on_set=[1], dc_set=[3])
    cover, _stats = minimize(table)
    assert len(cover) == 1
    assert cover[0].literal_count == 1


def test_minimize_empty_and_constant():
    empty, stats = minimize(TruthTable.from_minterms(3, on_set=[]))
    assert empty == []
    assert stats.cover_size == 0
    full, _ = minimize(TruthTable.from_minterms(2, on_set=[0, 1, 2, 3]))
    assert len(full) == 1
    assert full[0].care_mask == 0


@given(
    num_inputs=st.integers(2, 5),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_minimize_cover_is_exact_property(num_inputs, data):
    """The cover must match the on-set exactly outside the don't-care set."""
    universe = list(range(1 << num_inputs))
    on_set = data.draw(st.sets(st.sampled_from(universe)))
    remaining = [m for m in universe if m not in on_set]
    dc_set = data.draw(st.sets(st.sampled_from(remaining))) if remaining else set()
    table = TruthTable.from_minterms(num_inputs, on_set, dc_set)
    cover, _stats = minimize(table)
    for minterm in universe:
        if minterm in dc_set:
            continue
        assert _cover_evaluates(cover, minterm) == int(minterm in on_set)


def test_heuristic_fallback_is_still_correct():
    table = TruthTable.from_minterms(6, on_set=list(range(0, 64, 2)))
    cover, stats = minimize(table, max_exact_inputs=4)
    assert not stats.exact
    for minterm in range(64):
        assert _cover_evaluates(cover, minterm) == int(minterm % 2 == 0)


def test_stats_addition():
    _, a = minimize(TruthTable.from_minterms(3, on_set=[1, 3]))
    _, b = minimize(TruthTable.from_minterms(3, on_set=[0]))
    combined = a + b
    assert combined.minterms == a.minterms + b.minterms
    assert combined.exact


# ---------------------------------------------------------------------------
# SOP synthesis
# ---------------------------------------------------------------------------

@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_sop_netlist_matches_truth_table(data):
    num_inputs = data.draw(st.integers(2, 4))
    on_set = data.draw(st.sets(st.sampled_from(list(range(1 << num_inputs)))))
    table = TruthTable.from_minterms(num_inputs, on_set)
    cover, _ = minimize(table)

    netlist = Netlist("sop")
    inputs = netlist.add_input_bus("x", num_inputs)
    out = sop_to_netlist(netlist, cover, list(inputs))
    netlist.add_output("f", out)
    sim = Simulator(netlist)
    for minterm in range(1 << num_inputs):
        sim.poke_bus(inputs, minterm)
        sim.settle()
        assert sim.peek("f") == int(minterm in on_set)


def test_sop_constant_outputs():
    netlist = Netlist("sop")
    inputs = netlist.add_input_bus("x", 2)
    zero = sop_to_netlist(netlist, [], list(inputs))
    one = sop_to_netlist(
        netlist, [Implicant(values=0, care_mask=0, num_inputs=2)], list(inputs)
    )
    netlist.add_output("zero", zero)
    netlist.add_output("one", one)
    sim = Simulator(netlist)
    sim.settle()
    assert sim.peek("zero") == 0
    assert sim.peek("one") == 1


def test_sop_inverter_cache_is_shared():
    table = TruthTable.from_minterms(3, on_set=[0])
    cover, _ = minimize(table)
    netlist = Netlist("sop")
    inputs = netlist.add_input_bus("x", 3)
    cache = {}
    sop_to_netlist(netlist, cover, list(inputs), inverter_cache=cache)
    first_inv_count = sum(1 for c in netlist.cells.values() if c.cell_type == "INV")
    sop_to_netlist(netlist, cover, list(inputs), prefix="g2", inverter_cache=cache)
    second_inv_count = sum(1 for c in netlist.cells.values() if c.cell_type == "INV")
    assert second_inv_count == first_inv_count
