"""Tests for truth tables, two-level minimisation and SOP synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.synth.fsm.fsm import FiniteStateMachine
from repro.synth.fsm.synthesis import next_state_tables
from repro.synth.logic.minimize import (
    Implicant,
    MinimizationStats,
    _cube_inside,
    _greedy_merge,
    _minimize_reference,
    _prime_implicants,
    _select_cover,
    _select_cover_reference,
    minimize,
)
from repro.synth.logic.synthesize import sop_to_netlist
from repro.synth.logic.truth_table import TruthTable


# ---------------------------------------------------------------------------
# Truth tables
# ---------------------------------------------------------------------------

def test_truth_table_validation():
    with pytest.raises(ValueError):
        TruthTable(num_inputs=2, on_set=frozenset({4}))
    with pytest.raises(ValueError):
        TruthTable(num_inputs=2, on_set=frozenset({1}), dc_set=frozenset({1}))


def test_truth_table_from_function():
    table = TruthTable.from_function(3, lambda m: int(bin(m).count("1") == 2))
    assert table.on_set == frozenset({3, 5, 6})
    assert table.off_set == frozenset({0, 1, 2, 4, 7})


def test_truth_table_complement_and_constant():
    table = TruthTable.from_minterms(2, on_set=[0, 1, 2, 3])
    assert table.is_constant()
    comp = table.complement()
    assert comp.on_set == frozenset()


def test_truth_table_with_dont_cares():
    table = TruthTable.from_function(2, lambda m: None if m == 3 else int(m == 1))
    assert table.dc_set == frozenset({3})
    assert table.evaluate(1) == 1
    assert table.evaluate(3) == 0


# ---------------------------------------------------------------------------
# Implicants
# ---------------------------------------------------------------------------

def test_implicant_string_round_trip():
    cube = Implicant.from_string("1-0")
    assert cube.to_string() == "1-0"
    assert cube.covers(0b001)
    assert cube.covers(0b011)
    assert not cube.covers(0b101)
    assert cube.literal_count == 2
    assert cube.literals() == [(0, True), (2, False)]


def test_implicant_bad_string():
    with pytest.raises(ValueError):
        Implicant.from_string("10x")


# ---------------------------------------------------------------------------
# Minimisation
# ---------------------------------------------------------------------------

def _cover_evaluates(cover, minterm):
    return int(any(cube.covers(minterm) for cube in cover))


def test_minimize_classic_example():
    # f(a,b,c) = sum m(1,3,5,7) = c (variable 0).
    table = TruthTable.from_minterms(3, on_set=[1, 3, 5, 7])
    cover, stats = minimize(table)
    assert len(cover) == 1
    assert cover[0].to_string() == "1--"
    assert stats.exact


def test_minimize_xor_needs_two_terms():
    table = TruthTable.from_minterms(2, on_set=[1, 2])
    cover, _stats = minimize(table)
    assert len(cover) == 2


def test_minimize_uses_dont_cares():
    # With don't-cares on 2 and 3, f = {1} union dc{3} can merge into "1-".
    table = TruthTable.from_minterms(2, on_set=[1], dc_set=[3])
    cover, _stats = minimize(table)
    assert len(cover) == 1
    assert cover[0].literal_count == 1


def test_minimize_empty_and_constant():
    empty, stats = minimize(TruthTable.from_minterms(3, on_set=[]))
    assert empty == []
    assert stats.cover_size == 0
    full, _ = minimize(TruthTable.from_minterms(2, on_set=[0, 1, 2, 3]))
    assert len(full) == 1
    assert full[0].care_mask == 0


@given(
    num_inputs=st.integers(2, 5),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_minimize_cover_is_exact_property(num_inputs, data):
    """The cover must match the on-set exactly outside the don't-care set."""
    universe = list(range(1 << num_inputs))
    on_set = data.draw(st.sets(st.sampled_from(universe)))
    remaining = [m for m in universe if m not in on_set]
    dc_set = data.draw(st.sets(st.sampled_from(remaining))) if remaining else set()
    table = TruthTable.from_minterms(num_inputs, on_set, dc_set)
    cover, _stats = minimize(table)
    for minterm in universe:
        if minterm in dc_set:
            continue
        assert _cover_evaluates(cover, minterm) == int(minterm in on_set)


def test_heuristic_fallback_is_still_correct():
    table = TruthTable.from_minterms(6, on_set=list(range(0, 64, 2)))
    cover, stats = minimize(table, max_exact_inputs=4)
    assert not stats.exact
    for minterm in range(64):
        assert _cover_evaluates(cover, minterm) == int(minterm % 2 == 0)


def test_minimize_returns_fresh_objects_despite_memoisation():
    table = TruthTable.from_minterms(3, on_set=[1, 3, 5, 7])
    cover_a, stats_a = minimize(table)
    cover_b, stats_b = minimize(table)
    assert cover_a == cover_b and stats_a == stats_b
    # Mutating one caller's results must not leak into the next caller's.
    cover_a.clear()
    stats_a.cover_size = 99
    cover_c, stats_c = minimize(table)
    assert cover_c == cover_b
    assert stats_c == stats_b


# ---------------------------------------------------------------------------
# Bitset engine vs the pre-bitset reference implementation
# ---------------------------------------------------------------------------

@given(num_inputs=st.integers(2, 6), data=st.data())
@settings(max_examples=80, deadline=None)
def test_bitset_cover_matches_reference_property(num_inputs, data):
    """Bitset covers are element-for-element the legacy covers."""
    universe = list(range(1 << num_inputs))
    on_set = data.draw(st.sets(st.sampled_from(universe)))
    rest = [m for m in universe if m not in on_set]
    dc_set = data.draw(st.sets(st.sampled_from(rest))) if rest else set()
    table = TruthTable.from_minterms(num_inputs, on_set, dc_set)
    cover, stats = minimize(table)
    ref_cover, ref_stats = _minimize_reference(table)
    assert cover == ref_cover
    assert stats == ref_stats


def _fsm_tables(length, encoding="binary"):
    """The next-state truth tables FSM synthesis hands to the minimiser."""
    fsm = FiniteStateMachine.from_select_sequence(list(range(length)))
    return next_state_tables(fsm, encoding)


def _essential_primes(primes, on_set):
    """Primes that are the sole cover of some on-set minterm."""
    essentials = set()
    for m in on_set:
        covering = [p for p in primes if p.covers(m)]
        if len(covering) == 1:
            essentials.add(covering[0])
    return essentials


@pytest.mark.parametrize("length", [48, 64, 100])
def test_fsm_workload_tables_essential_set_unchanged(length):
    """Regression for the bitset rewrite on the FSM synthesis workload.

    The cover must be element-for-element the reference cover, and its head
    must be exactly the essential-prime set (essentials are selected first,
    in minterm order, before greedy covering starts).
    """
    for table in _fsm_tables(length):
        if not table.on_set:
            continue
        stats = MinimizationStats()
        primes = _prime_implicants(table, stats)
        cover = _select_cover(primes, table.on_set, stats)
        reference = _select_cover_reference(primes, table.on_set, stats)
        assert cover == reference
        essentials = _essential_primes(primes, table.on_set)
        assert set(cover[:len(essentials)]) == essentials


# ---------------------------------------------------------------------------
# Heuristic fallback internals
# ---------------------------------------------------------------------------

class _CountingSet:
    """Set wrapper counting membership tests (detects bound rejection)."""

    def __init__(self, members):
        self.members = set(members)
        self.lookups = 0

    def __contains__(self, item):
        self.lookups += 1
        return item in self.members


def test_cube_inside_enumerates_small_cubes():
    # Cube "--00" (free bits 2 and 3 of a 4-input function).
    allowed = _CountingSet({0b0000, 0b0100, 0b1000, 0b1100})
    assert _cube_inside(0, 0b0011, 4, allowed)
    assert allowed.lookups == 4  # every cube minterm was checked
    # One missing corner breaks containment.
    assert not _cube_inside(0, 0b0011, 4, _CountingSet({0, 4, 8}))


def test_cube_inside_rejects_more_than_20_free_bits_without_enumerating():
    num_inputs = 22
    everything = _CountingSet(set())
    # 21 free bits: rejected outright -- not a single membership test.
    assert not _cube_inside(0, 1, num_inputs, everything)
    assert everything.lookups == 0
    # Exactly 20 free bits is inside the bound: enumeration starts (and
    # fails fast on the first missing minterm).
    two_care = (1 << 21) | 1
    probe = _CountingSet(set())
    assert not _cube_inside(0, two_care, num_inputs, probe)
    assert probe.lookups == 1


def test_greedy_merge_fallback_covers_exactly():
    # Wide function: f = 1 iff the low two bits are 01, on 24 inputs but
    # with a narrow on-set so the fallback stays cheap.
    n = 24
    on_set = frozenset((k << 2) | 1 for k in range(16))
    table = TruthTable.from_minterms(n, on_set)
    stats = MinimizationStats()
    cover = _greedy_merge(table, stats)
    assert stats.prime_implicants == len(cover)
    assert stats.merge_operations > 0
    for minterm in on_set:
        assert any(cube.covers(minterm) for cube in cover)
    # Spot-check off-set points near the cubes.
    for minterm in [0, 2, 3, (5 << 2), (7 << 2) | 3, 1 << 23]:
        assert minterm not in on_set
        assert not any(cube.covers(minterm) for cube in cover)


def test_minimize_wide_function_uses_fallback_and_marks_inexact():
    n = 24
    table = TruthTable.from_minterms(n, on_set=[(k << 2) | 1 for k in range(8)])
    cover, stats = minimize(table)
    assert not stats.exact
    assert stats.cover_size == len(cover)
    for k in range(8):
        assert any(cube.covers((k << 2) | 1) for cube in cover)


def test_stats_addition():
    _, a = minimize(TruthTable.from_minterms(3, on_set=[1, 3]))
    _, b = minimize(TruthTable.from_minterms(3, on_set=[0]))
    combined = a + b
    assert combined.minterms == a.minterms + b.minterms
    assert combined.exact


# ---------------------------------------------------------------------------
# SOP synthesis
# ---------------------------------------------------------------------------

@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_sop_netlist_matches_truth_table(data):
    num_inputs = data.draw(st.integers(2, 4))
    on_set = data.draw(st.sets(st.sampled_from(list(range(1 << num_inputs)))))
    table = TruthTable.from_minterms(num_inputs, on_set)
    cover, _ = minimize(table)

    netlist = Netlist("sop")
    inputs = netlist.add_input_bus("x", num_inputs)
    out = sop_to_netlist(netlist, cover, list(inputs))
    netlist.add_output("f", out)
    sim = Simulator(netlist)
    for minterm in range(1 << num_inputs):
        sim.poke_bus(inputs, minterm)
        sim.settle()
        assert sim.peek("f") == int(minterm in on_set)


def test_sop_constant_outputs():
    netlist = Netlist("sop")
    inputs = netlist.add_input_bus("x", 2)
    zero = sop_to_netlist(netlist, [], list(inputs))
    one = sop_to_netlist(
        netlist, [Implicant(values=0, care_mask=0, num_inputs=2)], list(inputs)
    )
    netlist.add_output("zero", zero)
    netlist.add_output("one", one)
    sim = Simulator(netlist)
    sim.settle()
    assert sim.peek("zero") == 0
    assert sim.peek("one") == 1


def test_sop_inverter_cache_is_shared():
    table = TruthTable.from_minterms(3, on_set=[0])
    cover, _ = minimize(table)
    netlist = Netlist("sop")
    inputs = netlist.add_input_bus("x", 3)
    cache = {}
    sop_to_netlist(netlist, cover, list(inputs), inverter_cache=cache)
    first_inv_count = sum(1 for c in netlist.cells.values() if c.cell_type == "INV")
    sop_to_netlist(netlist, cover, list(inputs), prefix="g2", inverter_cache=cache)
    second_inv_count = sum(1 for c in netlist.cells.values() if c.cell_type == "INV")
    assert second_inv_count == first_inv_count
