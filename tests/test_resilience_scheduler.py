"""Scheduler self-healing: transient retries, pool rebuild, serial degrade."""

import asyncio
import concurrent.futures
import os
import signal
import threading

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.engine import runner as runner_module
from repro.engine.cache import ResultCache
from repro.engine.jobs import EvalJob
from repro.engine.runner import EvalRecord
from repro.engine.scheduler import Scheduler
from repro.obs import metrics
from repro.resilience.faults import FaultPlan, FaultRule, clear_plan, install_plan
from repro.resilience.retry import RetryPolicy

JOBS = [
    EvalJob("fifo", 4, 4, "SRAG", "two-hot"),
    EvalJob("dct", 4, 4, "SRAG", "two-hot"),
    EvalJob("fifo", 8, 8, "SRAG", "two-hot"),
    EvalJob("dct", 8, 8, "CntAG", "decoders"),
]

FAST_RETRY = RetryPolicy(max_retries=2, base_backoff_s=0.005)


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    yield
    clear_plan()


def _record(job, status="ok", note=""):
    return EvalRecord(
        workload=job.workload,
        rows=job.rows,
        cols=job.cols,
        style=job.style,
        variant=job.variant,
        library=job.spec.library,
        key=job.key,
        status=status,
        note=note,
        delay_ns=1.0,
        area_cells=2.0,
    )


@pytest.fixture
def flaky_eval(monkeypatch):
    """evaluate_job stand-in whose first N calls per key fail transiently."""
    state = {"calls": [], "fail_first": 0, "lock": threading.Lock()}

    def fake(job):
        with state["lock"]:
            state["calls"].append(job.key)
            failures = state["calls"].count(job.key) - 1
        if failures < state["fail_first"]:
            return _record(job, status="error", note="transient chaos")
        return _record(job)

    monkeypatch.setattr(runner_module, "evaluate_job", fake)
    return state


# ------------------------------------------------------------- job retries
def test_transient_error_is_retried_to_success(flaky_eval):
    flaky_eval["fail_first"] = 2
    before = metrics.counter("scheduler.retries")
    scheduler = Scheduler(ResultCache(None), workers=0, retry_policy=FAST_RETRY)
    records = list(scheduler.submit([JOBS[0]]).results(timeout=10.0))
    assert [r.status for r in records] == ["ok"]
    assert flaky_eval["calls"].count(JOBS[0].key) == 3  # 1 try + 2 retries
    assert metrics.counter("scheduler.retries") == before + 2
    assert scheduler.cache.get(JOBS[0].key) is not None  # final record cached


def test_retry_budget_exhaustion_surfaces_the_error(flaky_eval):
    flaky_eval["fail_first"] = 99
    scheduler = Scheduler(ResultCache(None), workers=0, retry_policy=FAST_RETRY)
    records = list(scheduler.submit([JOBS[0]]).results(timeout=10.0))
    assert [r.status for r in records] == ["error"]
    assert flaky_eval["calls"].count(JOBS[0].key) == 3  # budget, then give up
    assert scheduler.cache.get(JOBS[0].key) is None  # errors stay uncached
    # The attempt ledger is clean: a fresh submission starts from scratch.
    assert scheduler._attempts == {}


def test_no_policy_means_the_historical_single_attempt(flaky_eval):
    flaky_eval["fail_first"] = 1
    scheduler = Scheduler(ResultCache(None), workers=0)
    records = list(scheduler.submit([JOBS[0]]).results(timeout=10.0))
    assert [r.status for r in records] == ["error"]
    assert flaky_eval["calls"] == [JOBS[0].key]


def test_deterministic_failures_are_never_retried(monkeypatch):
    calls = []

    def fake(job):
        calls.append(job.key)
        return _record(job, status="skipped", note="no mapping for geometry")

    monkeypatch.setattr(runner_module, "evaluate_job", fake)
    scheduler = Scheduler(ResultCache(None), workers=0, retry_policy=FAST_RETRY)
    records = list(scheduler.submit([JOBS[0]]).results(timeout=10.0))
    assert [r.status for r in records] == ["skipped"]
    assert len(calls) == 1


def test_joined_submission_receives_the_retried_record(flaky_eval):
    flaky_eval["fail_first"] = 1
    scheduler = Scheduler(ResultCache(None), workers=0, retry_policy=FAST_RETRY)
    owner = scheduler.submit([JOBS[0]])
    joined = scheduler.submit([JOBS[0]])
    joined_records = []
    consumer = threading.Thread(
        target=lambda: joined_records.extend(joined.results(timeout=10.0))
    )
    consumer.start()
    owner_records = list(owner.results(timeout=10.0))
    consumer.join(10.0)
    assert not consumer.is_alive()
    assert [r.status for r in owner_records] == ["ok"]
    assert [r.status for r in joined_records] == ["ok"]
    assert flaky_eval["calls"].count(JOBS[0].key) == 2  # shared retry, not two


def test_cancelled_submissions_synthetic_records_bypass_retry(flaky_eval):
    scheduler = Scheduler(ResultCache(None), workers=0, retry_policy=FAST_RETRY)
    owner = scheduler.submit([JOBS[0]])
    joined = scheduler.submit([JOBS[0]])
    owner.cancel()
    records = list(joined.results(timeout=5.0))
    assert [r.status for r in records] == ["error"]
    assert "cancelled" in records[0].note
    assert flaky_eval["calls"] == []  # never evaluated, never retried


def test_cancel_wakes_a_blocked_consumer(flaky_eval):
    """The _WAKE sentinel: cancel() must unblock results() immediately."""
    scheduler = Scheduler(ResultCache(None), workers=0, retry_policy=FAST_RETRY)
    owner = scheduler.submit([JOBS[0]])  # never driven
    joined = scheduler.submit([JOBS[0]])
    drained = threading.Event()
    consumer = threading.Thread(
        target=lambda: (list(joined.results()), drained.set())
    )
    consumer.start()
    joined.cancel()
    assert drained.wait(5.0), "cancel() left the consumer wedged in get()"
    consumer.join(5.0)


# ------------------------------------------------------------- pool rebuild
class _InlinePool:
    """Pool stand-in: fails the first ``fail`` futures, then runs inline."""

    def __init__(self, fail=0):
        self.fail = fail
        self.shutdowns = 0

    def submit(self, fn, *args):
        future = concurrent.futures.Future()
        if self.fail > 0:
            self.fail -= 1
            future.set_exception(BrokenProcessPool("simulated worker crash"))
        else:
            future.set_result(fn(*args))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


def _install_pools(scheduler, pools):
    """Serve scheduler._get_pool from a scripted list of _InlinePools."""
    handed = []

    def fake_get_pool():
        if scheduler._pool is None:
            scheduler._pool = pools[min(len(handed), len(pools) - 1)]
            handed.append(scheduler._pool)
        return scheduler._pool

    scheduler._get_pool = fake_get_pool
    return handed


def test_broken_pool_is_rebuilt_and_jobs_requeued(flaky_eval):
    rebuilds = metrics.counter("scheduler.pool_rebuilds")
    requeued = metrics.counter("scheduler.jobs_requeued")
    scheduler = Scheduler(
        ResultCache(None), workers=2, chunk_size=1, rebuild_budget=2
    )
    handed = _install_pools(scheduler, [_InlinePool(fail=1), _InlinePool()])
    records = list(scheduler.submit(JOBS[:2]).results(timeout=10.0))
    assert sorted(r.key for r in records) == sorted(j.key for j in JOBS[:2])
    assert all(r.status == "ok" for r in records)
    # The doomed batch never ran: each job was evaluated exactly once.
    assert sorted(flaky_eval["calls"]) == sorted(j.key for j in JOBS[:2])
    assert metrics.counter("scheduler.pool_rebuilds") == rebuilds + 1
    assert metrics.counter("scheduler.jobs_requeued") == requeued + 1
    assert len(handed) == 2 and handed[0].shutdowns >= 1
    assert not scheduler._serial_only  # healed, not degraded


def test_rebuild_budget_exhaustion_degrades_to_serial(flaky_eval):
    scheduler = Scheduler(
        ResultCache(None), workers=2, chunk_size=1, rebuild_budget=0
    )
    _install_pools(scheduler, [_InlinePool(fail=99)])
    records = list(scheduler.submit(JOBS[:2]).results(timeout=10.0))
    assert all(r.status == "ok" for r in records)
    assert sorted(flaky_eval["calls"]) == sorted(j.key for j in JOBS[:2])
    assert scheduler._serial_only
    # Later submissions skip the pool entirely and still complete.
    more = list(scheduler.submit(JOBS[2:]).results(timeout=10.0))
    assert all(r.status == "ok" for r in more)
    assert sorted(flaky_eval["calls"]) == sorted(j.key for j in JOBS)


def test_requeue_skips_jobs_whose_records_already_landed(flaky_eval):
    """A batch whose records all landed is not re-enqueued on rebuild."""
    scheduler = Scheduler(
        ResultCache(None), workers=2, chunk_size=1, rebuild_budget=2
    )
    _install_pools(scheduler, [_InlinePool(), _InlinePool()])
    records = list(scheduler.submit(JOBS[:2]).results(timeout=10.0))
    assert all(r.status == "ok" for r in records)
    calls_before = list(flaky_eval["calls"])
    # Simulate a straggler future from the old generation failing after
    # every record landed: nothing is in-flight, so nothing is requeued.
    assert scheduler._handle_broken_pool(
        JOBS[:2], scheduler._pool_generation, BrokenProcessPool("late")
    )
    assert flaky_eval["calls"] == calls_before


# ----------------------------------------------------- real worker crashes
def test_worker_crash_chaos_completes_without_duplicates():
    """End-to-end kill -9 chaos: every forked worker dies on its first
    batch (the plan is inherited across fork), so every pool generation
    breaks; the scheduler burns its rebuild budget, degrades to serial, and
    still delivers exactly one record per key."""
    try:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=1)
        pool.submit(abs, 1).result(timeout=30)
        pool.shutdown()
    except Exception:  # pragma: no cover - platform dependent
        pytest.skip("process pools unavailable in this environment")

    install_plan(FaultPlan([FaultRule(site="scheduler.worker", action="exit")]))
    rebuilds = metrics.counter("scheduler.pool_rebuilds")
    cache = ResultCache(None)
    with Scheduler(cache, workers=2, chunk_size=1, rebuild_budget=1) as scheduler:
        records = list(scheduler.submit(JOBS).results(timeout=120.0))
    clear_plan()
    assert sorted(r.key for r in records) == sorted(j.key for j in JOBS)
    statuses = {r.status for r in records}
    assert statuses <= {"ok", "skipped"}, statuses  # real records, no errors
    assert metrics.counter("scheduler.pool_rebuilds") == rebuilds + 1
    assert scheduler._serial_only
    for record in records:
        if record.status == "ok":
            assert cache.get(record.key) is not None


def test_worker_directed_signals_stay_in_the_worker():
    """Fork-started workers inherit the asyncio parent's signal wakeup pipe,
    so the SIGTERM a breaking pool sends its surviving workers used to be
    replayed as the *parent's* own signal -- gracefully shutting the
    campaign service down mid-rebuild.  _warm_worker must detach the
    inherited plumbing: a signal delivered to a worker pid stays there."""
    try:
        probe = concurrent.futures.ProcessPoolExecutor(max_workers=1)
        probe.submit(abs, 1).result(timeout=30)
        probe.shutdown()
    except Exception:  # pragma: no cover - platform dependent
        pytest.skip("process pools unavailable in this environment")

    from repro.engine.runner import _warm_worker

    async def scenario():
        loop = asyncio.get_running_loop()
        seen = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, seen.set)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=1, initializer=_warm_worker
        )
        try:
            await loop.run_in_executor(pool, abs, 1)  # initializer has run
            worker_pid = next(iter(pool._processes))
            os.kill(worker_pid, signal.SIGTERM)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(seen.wait(), timeout=1.0)
        finally:
            loop.remove_signal_handler(signal.SIGTERM)
            pool.shutdown(wait=False, cancel_futures=True)

    asyncio.run(scenario())
