"""Scheduler core: cross-request dedup, streaming, lifecycle, sharing."""

import threading

import pytest

from repro.engine import runner as runner_module
from repro.engine.cache import ResultCache
from repro.engine.jobs import Campaign, EvalJob
from repro.engine.runner import CampaignRunner, EvalRecord
from repro.engine.scheduler import Scheduler, SchedulerTimeout
from repro.obs import metrics

JOB_A = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
JOB_B = EvalJob("dct", 4, 4, "SRAG", "two-hot")


def _record(job, status="ok"):
    return EvalRecord(
        workload=job.workload,
        rows=job.rows,
        cols=job.cols,
        style=job.style,
        variant=job.variant,
        library=job.spec.library,
        key=job.key,
        status=status,
        delay_ns=1.0,
        area_cells=2.0,
    )


@pytest.fixture
def counted_eval(monkeypatch):
    """Replace real evaluation with an instant fake; returns the call log."""
    calls = []

    def fake(job):
        calls.append(job.key)
        return _record(job)

    monkeypatch.setattr(runner_module, "evaluate_job", fake)
    return calls


# ------------------------------------------------------------------- dedup
def test_two_identical_submissions_share_one_evaluation(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    first = scheduler.submit([JOB_A])
    dedup_before = metrics.counter("scheduler.dedup_hits")
    second = scheduler.submit([JOB_A])

    assert first.pending == 1 and first.deduped == 0
    assert second.pending == 0 and second.deduped == 1
    assert metrics.counter("scheduler.dedup_hits") == dedup_before + 1

    # The joined submission blocks until the owner drives the evaluation.
    joined_records = []
    joined = threading.Thread(
        target=lambda: joined_records.extend(second.results(timeout=10.0))
    )
    joined.start()
    owner_records = list(first.results(timeout=10.0))
    joined.join(10.0)
    assert not joined.is_alive()

    assert counted_eval == [JOB_A.key]  # exactly one evaluation...
    assert [r.key for r in owner_records] == [JOB_A.key]  # ...two results
    assert [r.key for r in joined_records] == [JOB_A.key]
    assert scheduler.cache.get(JOB_A.key) is not None


def test_duplicate_keys_within_one_submission_collapse(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    submission = scheduler.submit([JOB_A, JOB_A, JOB_B])
    assert submission.expected == 2
    assert submission.pending == 2
    records = list(submission.results(timeout=10.0))
    assert sorted(r.key for r in records) == sorted([JOB_A.key, JOB_B.key])
    assert len(counted_eval) == 2


def test_cached_records_stream_first_in_submission_order(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    list(scheduler.submit([JOB_A]).results(timeout=10.0))
    assert len(counted_eval) == 1

    submission = scheduler.submit([JOB_B, JOB_A])
    assert submission.cached_keys == [JOB_A.key]
    records = list(submission.results(timeout=10.0))
    assert [r.key for r in records] == [JOB_A.key, JOB_B.key]
    assert records[0].cached and not records[1].cached
    assert len(counted_eval) == 2  # JOB_A was not re-evaluated


def test_force_re_evaluates_cached_keys(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    list(scheduler.submit([JOB_A]).results(timeout=10.0))
    forced = scheduler.submit([JOB_A], force=True)
    assert forced.pending == 1 and forced.cached_keys == []
    list(forced.results(timeout=10.0))
    assert counted_eval == [JOB_A.key, JOB_A.key]


def test_evaluations_counter_tracks_fresh_work_only(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    before = metrics.counter("scheduler.evaluations")
    list(scheduler.submit([JOB_A, JOB_B]).results(timeout=10.0))
    list(scheduler.submit([JOB_A, JOB_B]).results(timeout=10.0))  # all cached
    assert metrics.counter("scheduler.evaluations") == before + 2


# --------------------------------------------------------------- streaming
def test_results_timeout_raises_scheduler_timeout(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    owner = scheduler.submit([JOB_A])  # owns the flight, never drives it
    joined = scheduler.submit([JOB_A])
    with pytest.raises(SchedulerTimeout, match="1 record\\(s\\) outstanding"):
        list(joined.results(timeout=0.05))
    assert owner.pending == 1  # the owner is untouched


def test_cancel_resolves_joined_submissions_with_error_records(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    owner = scheduler.submit([JOB_A])
    joined = scheduler.submit([JOB_A])
    owner.cancel()
    records = list(joined.results(timeout=5.0))
    assert [r.status for r in records] == ["error"]
    assert "cancelled" in records[0].note
    assert counted_eval == []  # never evaluated...
    assert scheduler.cache.get(JOB_A.key) is None  # ...and never cached
    # The key is free again: a new submission owns and evaluates it.
    retry = scheduler.submit([JOB_A])
    assert retry.pending == 1
    assert [r.status for r in retry.results(timeout=10.0)] == ["ok"]


def test_chunk_size_validation():
    with pytest.raises(ValueError, match="chunk_size"):
        Scheduler(ResultCache(None), chunk_size=0)


# ----------------------------------------------------------------- sharing
def test_runners_share_scheduler_cache_and_dedup(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)
    campaign = Campaign("shared", [JOB_A, JOB_B])
    first = CampaignRunner(scheduler=scheduler).run(campaign)
    second = CampaignRunner(scheduler=scheduler).run(campaign)
    assert first.evaluated == 2 and first.hits == 0
    assert second.evaluated == 0 and second.hits == 2
    assert len(counted_eval) == 2


def test_runner_close_leaves_shared_scheduler_running(counted_eval):
    scheduler = Scheduler(ResultCache(None), workers=0)

    class _Pool:
        def shutdown(self, wait=True, cancel_futures=False):
            raise AssertionError("shared scheduler pool must not be shut down")

    scheduler._pool = _Pool()
    runner = CampaignRunner(scheduler=scheduler)
    runner.close()  # no-op on the shared scheduler
    runner.__del__()  # and no ResourceWarning path either
    scheduler._pool = None


def test_scheduler_kwarg_is_exclusive_with_private_config():
    scheduler = Scheduler(ResultCache(None), workers=0)
    with pytest.raises(ValueError, match="mutually exclusive"):
        CampaignRunner(ResultCache(None), scheduler=scheduler)
    with pytest.raises(ValueError, match="mutually exclusive"):
        CampaignRunner(workers=2, scheduler=scheduler)


# --------------------------------------------------------------- lifecycle
class _FakePool:
    def __init__(self):
        self.shutdowns = []

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns.append((wait, cancel_futures))


def test_del_without_close_emits_resource_warning():
    runner = CampaignRunner(ResultCache(None), workers=4)
    pool = _FakePool()
    runner._pool = pool
    with pytest.warns(ResourceWarning, match="unclosed CampaignRunner"):
        runner.__del__()
    assert pool.shutdowns  # the pool was still released


def test_del_after_close_is_quiet(recwarn):
    runner = CampaignRunner(ResultCache(None), workers=4)
    runner._pool = _FakePool()
    runner.close()
    runner.close()  # idempotent
    runner.__del__()
    assert not any(
        isinstance(warning.message, ResourceWarning) for warning in recwarn.list
    )


def test_context_exit_is_quiet(recwarn):
    with CampaignRunner(ResultCache(None), workers=4) as runner:
        runner._pool = _FakePool()
    runner.__del__()
    assert not any(
        isinstance(warning.message, ResourceWarning) for warning in recwarn.list
    )


def test_scheduler_del_without_close_emits_resource_warning():
    scheduler = Scheduler(ResultCache(None), workers=4)
    scheduler._pool = _FakePool()
    with pytest.warns(ResourceWarning, match="unclosed Scheduler"):
        scheduler.__del__()
