"""Unit tests for the netlist representation."""

import pytest

from repro.hdl.netlist import Bus, Netlist, NetlistError


def test_net_creation_and_lookup():
    netlist = Netlist("t")
    a = netlist.net("a")
    assert netlist.net("a") is a
    assert a.name == "a"
    assert not a.has_driver


def test_new_net_names_are_unique():
    netlist = Netlist("t")
    names = {netlist.new_net("n").name for _ in range(100)}
    assert len(names) == 100


def test_invalid_names_rejected():
    with pytest.raises(NetlistError):
        Netlist("1bad")
    netlist = Netlist("t")
    with pytest.raises(NetlistError):
        netlist.net("bad name")


def test_bus_indexing_and_width():
    netlist = Netlist("t")
    bus = netlist.bus(8, "data")
    assert bus.width == 8
    assert len(bus) == 8
    assert bus[0] is bus.bits()[0]
    assert isinstance(bus[2:5], Bus)
    assert bus[2:5].width == 3


def test_add_input_and_output():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    assert a.is_input
    y = netlist.new_net("y")
    netlist.add_cell("INV", A=a, Y=y)
    netlist.add_output("out", y)
    assert netlist.inputs == {"a": a}
    assert netlist.outputs["out"] is y


def test_duplicate_output_rejected():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    netlist.add_output("o", a)
    with pytest.raises(NetlistError):
        netlist.add_output("o", a)


def test_add_cell_checks_pins():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    y = netlist.new_net("y")
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", A=a)  # missing Y
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", A=a, Y=y, Z=a)  # unknown pin
    with pytest.raises(NetlistError):
        netlist.add_cell("NOSUCHCELL", A=a, Y=y)


def test_double_driver_rejected():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    y = netlist.new_net("y")
    netlist.add_cell("INV", A=a, Y=y)
    with pytest.raises(NetlistError):
        netlist.add_cell("BUF", A=a, Y=y)


def test_driving_an_input_rejected():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", A=a, Y=a)


def test_const_and_const_bus():
    netlist = Netlist("t")
    one = netlist.const(1)
    zero = netlist.const(0)
    assert one.driver[0].cell_type == "TIE1"
    assert zero.driver[0].cell_type == "TIE0"
    bus = netlist.const_bus(5, 4)
    types = [bit.driver[0].cell_type for bit in bus]
    assert types == ["TIE1", "TIE0", "TIE1", "TIE0"]
    with pytest.raises(NetlistError):
        netlist.const_bus(16, 4)
    with pytest.raises(NetlistError):
        netlist.const(2)


def test_validate_detects_undriven_nets():
    netlist = Netlist("t")
    floating = netlist.new_net("floating")
    y = netlist.new_net("y")
    netlist.add_cell("INV", A=floating, Y=y)
    with pytest.raises(NetlistError):
        netlist.validate()


def test_stats_and_cell_queries():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    clk = netlist.add_input("clk")
    y = netlist.new_net("y")
    q = netlist.new_net("q")
    netlist.add_cell("INV", A=a, Y=y)
    netlist.add_cell("DFF", D=y, CLK=clk, Q=q)
    stats = netlist.stats()
    assert stats["INV"] == 1
    assert stats["DFF"] == 1
    assert stats["_flip_flops"] == 1
    assert len(netlist.sequential_cells()) == 1
    assert len(netlist.combinational_cells()) == 1


def test_topological_order_respects_dependencies():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    n1 = netlist.new_net("n1")
    n2 = netlist.new_net("n2")
    c1 = netlist.add_cell("INV", A=a, Y=n1)
    c2 = netlist.add_cell("INV", A=n1, Y=n2)
    order = netlist.topological_combinational_order()
    assert order.index(c1) < order.index(c2)


def test_combinational_loop_detected():
    netlist = Netlist("t")
    n1 = netlist.new_net("n1")
    n2 = netlist.new_net("n2")
    netlist.add_cell("INV", A=n1, Y=n2)
    netlist.add_cell("INV", A=n2, Y=n1)
    with pytest.raises(NetlistError):
        netlist.topological_combinational_order()


def test_output_bus_names():
    netlist = Netlist("t")
    bus = Bus([netlist.const(1), netlist.const(0)])
    netlist.add_output_bus("sel", bus)
    assert set(netlist.outputs) == {"sel_0", "sel_1"}
