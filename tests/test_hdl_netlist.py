"""Unit tests for the netlist representation."""

import pytest

from repro.hdl.netlist import Bus, Netlist, NetlistError


def test_net_creation_and_lookup():
    netlist = Netlist("t")
    a = netlist.net("a")
    assert netlist.net("a") is a
    assert a.name == "a"
    assert not a.has_driver


def test_new_net_names_are_unique():
    netlist = Netlist("t")
    names = {netlist.new_net("n").name for _ in range(100)}
    assert len(names) == 100


def test_invalid_names_rejected():
    with pytest.raises(NetlistError):
        Netlist("1bad")
    netlist = Netlist("t")
    with pytest.raises(NetlistError):
        netlist.net("bad name")


def test_bus_indexing_and_width():
    netlist = Netlist("t")
    bus = netlist.bus(8, "data")
    assert bus.width == 8
    assert len(bus) == 8
    assert bus[0] is bus.bits()[0]
    assert isinstance(bus[2:5], Bus)
    assert bus[2:5].width == 3


def test_add_input_and_output():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    assert a.is_input
    y = netlist.new_net("y")
    netlist.add_cell("INV", A=a, Y=y)
    netlist.add_output("out", y)
    assert netlist.inputs == {"a": a}
    assert netlist.outputs["out"] is y


def test_duplicate_output_rejected():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    netlist.add_output("o", a)
    with pytest.raises(NetlistError):
        netlist.add_output("o", a)


def test_add_cell_checks_pins():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    y = netlist.new_net("y")
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", A=a)  # missing Y
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", A=a, Y=y, Z=a)  # unknown pin
    with pytest.raises(NetlistError):
        netlist.add_cell("NOSUCHCELL", A=a, Y=y)


def test_double_driver_rejected():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    y = netlist.new_net("y")
    netlist.add_cell("INV", A=a, Y=y)
    with pytest.raises(NetlistError):
        netlist.add_cell("BUF", A=a, Y=y)


def test_driving_an_input_rejected():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    with pytest.raises(NetlistError):
        netlist.add_cell("INV", A=a, Y=a)


def test_const_and_const_bus():
    netlist = Netlist("t")
    one = netlist.const(1)
    zero = netlist.const(0)
    assert one.driver[0].cell_type == "TIE1"
    assert zero.driver[0].cell_type == "TIE0"
    bus = netlist.const_bus(5, 4)
    types = [bit.driver[0].cell_type for bit in bus]
    assert types == ["TIE1", "TIE0", "TIE1", "TIE0"]
    with pytest.raises(NetlistError):
        netlist.const_bus(16, 4)
    with pytest.raises(NetlistError):
        netlist.const(2)


def test_validate_detects_undriven_nets():
    netlist = Netlist("t")
    floating = netlist.new_net("floating")
    y = netlist.new_net("y")
    netlist.add_cell("INV", A=floating, Y=y)
    with pytest.raises(NetlistError):
        netlist.validate()


def test_stats_and_cell_queries():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    clk = netlist.add_input("clk")
    y = netlist.new_net("y")
    q = netlist.new_net("q")
    netlist.add_cell("INV", A=a, Y=y)
    netlist.add_cell("DFF", D=y, CLK=clk, Q=q)
    stats = netlist.stats()
    assert stats["INV"] == 1
    assert stats["DFF"] == 1
    assert stats["_flip_flops"] == 1
    assert len(netlist.sequential_cells()) == 1
    assert len(netlist.combinational_cells()) == 1


def test_topological_order_respects_dependencies():
    netlist = Netlist("t")
    a = netlist.add_input("a")
    n1 = netlist.new_net("n1")
    n2 = netlist.new_net("n2")
    c1 = netlist.add_cell("INV", A=a, Y=n1)
    c2 = netlist.add_cell("INV", A=n1, Y=n2)
    order = netlist.topological_combinational_order()
    assert order.index(c1) < order.index(c2)


def test_combinational_loop_detected():
    netlist = Netlist("t")
    n1 = netlist.new_net("n1")
    n2 = netlist.new_net("n2")
    netlist.add_cell("INV", A=n1, Y=n2)
    netlist.add_cell("INV", A=n2, Y=n1)
    with pytest.raises(NetlistError):
        netlist.topological_combinational_order()


def test_output_bus_names():
    netlist = Netlist("t")
    bus = Bus([netlist.const(1), netlist.const(0)])
    netlist.add_output_bus("sel", bus)
    assert set(netlist.outputs) == {"sel_0", "sel_1"}


# ---------------------------------------------------------------------------
# Rewriting primitives (used by the logic-optimization passes)
# ---------------------------------------------------------------------------

def _and_pair():
    netlist = Netlist("rw")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    y1 = netlist.net("y1")
    y2 = netlist.net("y2")
    netlist.add_cell("AND2", name="g1", A=a, B=b, Y=y1)
    netlist.add_cell("AND2", name="g2", A=a, B=b, Y=y2)
    inv_y = netlist.net("inv_y")
    netlist.add_cell("INV", name="g3", A=y2, Y=inv_y)
    netlist.add_output("o1", y2)
    netlist.add_output("o2", inv_y)
    return netlist


def test_replace_net_moves_loads_and_output_aliases():
    netlist = _and_pair()
    y1, y2 = netlist.net("y1"), netlist.net("y2")
    moved = netlist.replace_net(y2, y1)
    # One cell load (the INV) and one output-port alias moved.
    assert moved == 2
    assert netlist.outputs["o1"] is y1
    assert netlist.cells["g3"].pins["A"] is y1
    assert y2.loads == [] and y2.driver is not None
    assert netlist.replace_net(y1, y1) == 0
    netlist.validate()


def test_replace_net_rejects_foreign_nets():
    netlist = _and_pair()
    other = Netlist("other")
    with pytest.raises(NetlistError):
        netlist.replace_net(netlist.net("y1"), other.net("x"))


def test_remove_cell_detaches_driver_and_loads():
    netlist = _and_pair()
    y2 = netlist.net("y2")
    a = netlist.inputs["a"]
    before = len([1 for cell, _pin in a.loads if cell.name == "g2"])
    assert before == 1
    removed = netlist.remove_cell("g2")
    assert removed.name == "g2" and "g2" not in netlist.cells
    assert y2.driver is None
    assert all(cell.name != "g2" for cell, _pin in a.loads)
    with pytest.raises(NetlistError):
        netlist.remove_cell("g2")


def test_prune_dangling_nets_spares_ports_and_connected_nets():
    netlist = _and_pair()
    dangling = netlist.net("floating")
    unused_input = netlist.add_input("spare")
    netlist.replace_net(netlist.net("y2"), netlist.net("y1"))
    netlist.remove_cell("g2")  # leaves y2 driverless and loadless
    pruned = netlist.prune_dangling_nets()
    assert pruned == 2
    assert "floating" not in netlist.nets and "y2" not in netlist.nets
    # Ports are never pruned, even when disconnected.
    assert unused_input.name in netlist.nets
    assert dangling is not netlist.net("floating")  # recreated fresh is fine
    netlist.validate()


# ---------------------------------------------------------------------------
# Topological-order caching and rewrite listeners
# ---------------------------------------------------------------------------

def test_topological_order_is_cached_and_invalidated():
    netlist = _and_pair()
    first = netlist.topological_combinational_order()
    second = netlist.topological_combinational_order()
    assert [c.name for c in first] == [c.name for c in second]
    # The cached list is defensively copied: callers may keep or mutate it.
    first.clear()
    assert [c.name for c in netlist.topological_combinational_order()] == [
        c.name for c in second
    ]
    # Every structural mutation drops the cache and the order stays correct.
    netlist.remove_cell("g3")
    after_remove = netlist.topological_combinational_order()
    assert "g3" not in [c.name for c in after_remove]
    y1, y2 = netlist.net("y1"), netlist.net("y2")
    netlist.replace_net(y2, y1)
    new_net = netlist.new_net("tail")
    netlist.add_cell("INV", name="g4", A=y1, Y=new_net)
    names = [c.name for c in netlist.topological_combinational_order()]
    assert "g4" in names
    assert names.index("g1") < names.index("g4")


def test_rewrite_listeners_fire_and_unsubscribe():
    netlist = _and_pair()
    events = []
    unsubscribe = netlist.add_rewrite_listener(
        lambda event, *payload: events.append((event, payload))
    )

    y1, y2 = netlist.net("y1"), netlist.net("y2")
    netlist.replace_net(y2, y1)
    event, payload = events[-1]
    assert event == "replace_net"
    old, new, moved = payload
    assert old is y2 and new is y1
    assert {(cell.name, pin) for cell, pin in moved} == {("g3", "A")}

    removed = netlist.remove_cell("g2")
    assert events[-1] == ("remove_cell", (removed,))

    added = netlist.add_cell("INV", name="g5", A=y1, Y=netlist.new_net("q"))
    assert events[-1] == ("add_cell", (added,))

    unsubscribe()
    unsubscribe()  # idempotent
    count = len(events)
    netlist.add_cell("INV", name="g6", A=y1, Y=netlist.new_net("r"))
    assert len(events) == count


def test_replace_net_noop_does_not_notify():
    netlist = _and_pair()
    events = []
    netlist.add_rewrite_listener(lambda event, *payload: events.append(event))
    net = netlist.net("y1")
    assert netlist.replace_net(net, net) == 0
    assert events == []


# ---------------------------------------------------------------------------
# DFF_EN_SET pin-rename compatibility shim (RST -> SET, one release)
# ---------------------------------------------------------------------------

def test_dff_en_set_legacy_rst_pin_is_remapped_with_warning():
    nl = Netlist("shim")
    clk = nl.add_input("clk")
    d = nl.add_input("d")
    en = nl.add_input("en")
    rst = nl.add_input("rst")
    q = nl.new_net("q")
    with pytest.warns(DeprecationWarning, match="renamed to 'SET'"):
        cell = nl.add_cell(
            "DFF_EN_SET", name="u1", D=d, CLK=clk, EN=en, RST=rst, Q=q
        )
    assert "SET" in cell.pins and "RST" not in cell.pins
    assert cell.pins["SET"].name == rst.name
    nl.add_output("q", q)
    nl.validate()


def test_dff_en_set_modern_set_pin_does_not_warn(recwarn):
    import warnings

    nl = Netlist("modern")
    clk = nl.add_input("clk")
    d = nl.add_input("d")
    en = nl.add_input("en")
    s = nl.add_input("s")
    q = nl.new_net("q")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        nl.add_cell("DFF_EN_SET", name="u1", D=d, CLK=clk, EN=en, SET=s, Q=q)
