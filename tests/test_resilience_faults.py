"""Fault-injection harness: triggers, actions, determinism, overhead floor."""

import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import metrics
from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    fault_data,
    fault_point,
    install_plan,
)
from repro.resilience.retry import (
    DETERMINISTIC,
    TRANSIENT,
    RetryPolicy,
    call_with_retry,
    classify_exception,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with no plan armed."""
    clear_plan()
    yield
    clear_plan()


# ------------------------------------------------------------------ FaultRule
def test_rule_validation_rejects_bad_configs():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultRule(site="x", action="explode")
    with pytest.raises(ValueError, match="unknown fault exception"):
        FaultRule(site="x", exception="SystemExit")
    with pytest.raises(ValueError, match="needs a site"):
        FaultRule(site="")
    with pytest.raises(ValueError, match="bad trigger"):
        FaultRule(site="x", probability=1.5)
    with pytest.raises(ValueError, match="bad trigger"):
        FaultRule(site="x", every=-1)


def test_on_hits_schedule_fires_exactly_those_hits():
    rule = FaultRule(site="x", on_hits=(2, 4), max_fires=None)
    rng = random.Random(0)
    fired = [rule.should_fire(hit, 0, rng) for hit in range(1, 6)]
    assert fired == [False, True, False, True, False]


def test_every_nth_hit_fires_periodically():
    rule = FaultRule(site="x", every=3, max_fires=None)
    rng = random.Random(0)
    fired = [hit for hit in range(1, 10) if rule.should_fire(hit, 0, rng)]
    assert fired == [3, 6, 9]


def test_max_fires_bounds_total_fires():
    rule = FaultRule(site="x")  # always-fire, max_fires=1 (the default)
    rng = random.Random(0)
    assert rule.should_fire(1, 0, rng)
    assert not rule.should_fire(2, 1, rng)  # budget spent


def test_probability_trigger_is_deterministic_per_seed():
    def fires(seed):
        plan = FaultPlan(
            [FaultRule(site="x", probability=0.5, max_fires=None)], seed=seed
        )
        out = []
        for hit in range(40):
            try:
                plan.trigger("x")
                out.append(False)
            except FaultInjected:
                out.append(True)
        return out

    a, b = fires(7), fires(7)
    assert a == b  # same seed, same schedule -- replayable chaos
    assert True in a and False in a
    assert fires(8) != a  # and the seed actually matters


# ------------------------------------------------------------------- actions
def test_raise_action_uses_the_named_exception():
    install_plan(FaultPlan([FaultRule(site="x", exception="ConnectionResetError")]))
    with pytest.raises(ConnectionResetError, match="fault injected at x"):
        fault_point("x")
    fault_point("x")  # max_fires=1: the second hit is clean


def test_delay_action_sleeps_then_continues():
    install_plan(FaultPlan([FaultRule(site="x", action="delay", delay_s=0.05)]))
    start = time.perf_counter()
    fault_point("x")
    assert time.perf_counter() - start >= 0.04


def test_torn_action_returns_a_prefix_and_fails_identity():
    install_plan(FaultPlan([FaultRule(site="w", action="torn", keep_chars=4)]))
    line = "0123456789\n"
    torn = fault_data("w", line)
    assert torn == "0123" and torn is not line
    clean = fault_data("w", line)  # fire budget spent
    assert clean is line  # identity, not just equality: the no-op contract


def test_torn_default_keeps_half_the_payload():
    install_plan(FaultPlan([FaultRule(site="w", action="torn")]))
    assert fault_data("w", "abcdefgh") == "abcd"


def test_exit_action_kills_the_process(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text(
        json.dumps({"rules": [{"site": "x", "action": "exit", "exit_code": 77}]})
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.resilience.faults import fault_point; fault_point('x')",
        ],
        env={
            **os.environ,
            FAULTS_ENV_VAR: str(plan),
            "PYTHONPATH": str(REPO_ROOT / "src"),
        },
        capture_output=True,
    )
    assert proc.returncode == 77


# ----------------------------------------------------------- plan bookkeeping
def test_plan_counts_hits_and_fires_per_site():
    plan = FaultPlan([FaultRule(site="x", on_hits=(2,))])
    install_plan(plan)
    fault_point("x")
    with pytest.raises(FaultInjected):
        fault_point("x")
    fault_point("x")
    fault_point("unlisted")  # not a rule site: not even counted
    assert plan.hits("x") == 3 and plan.fires("x") == 1
    assert plan.hits("unlisted") == 0


def test_injection_increments_metrics_counters():
    before = metrics.counter("faults.injected")
    install_plan(FaultPlan([FaultRule(site="seam")]))
    with pytest.raises(FaultInjected):
        fault_point("seam")
    assert metrics.counter("faults.injected") == before + 1
    assert metrics.counter("faults.seam") >= 1


def test_install_plan_returns_previous_and_clear_disarms():
    first = FaultPlan([FaultRule(site="x")])
    assert install_plan(first) is None
    second = FaultPlan([])
    assert install_plan(second) is first
    assert active_plan() is second
    clear_plan()
    assert active_plan() is None


# --------------------------------------------------------------- persistence
def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        [
            FaultRule(site="a", on_hits=(1, 3), max_fires=None),
            FaultRule(site="b", action="torn", keep_chars=7),
            FaultRule(site="c", action="delay", delay_s=0.2, every=5),
            FaultRule(site="d", action="exit", exit_code=9),
            FaultRule(site="e", exception="OSError", probability=0.25),
        ],
        seed=99,
    )
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    loaded = FaultPlan.load(str(path))
    assert loaded.to_dict() == plan.to_dict()
    assert loaded.rules == plan.rules and loaded.seed == 99


def test_plan_load_rejects_unknown_fields_and_garbage(tmp_path):
    with pytest.raises(ValueError, match="unknown fault rule field"):
        FaultRule.from_dict({"site": "x", "color": "red"})
    with pytest.raises(ValueError, match="unknown fault plan field"):
        FaultPlan.from_dict({"rules": [], "bogus": 1})
    with pytest.raises(ValueError, match="must be a list"):
        FaultPlan.from_dict({"rules": {}})
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ValueError, match="not a JSON fault plan"):
        FaultPlan.load(str(bad))


def test_env_var_arms_a_fresh_process(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({"rules": [{"site": "x"}], "seed": 5}))
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.resilience import faults\n"
            "plan = faults.active_plan()\n"
            "assert plan is not None and plan.seed == 5\n"
            "try:\n"
            "    faults.fault_point('x')\n"
            "except faults.FaultInjected:\n"
            "    print('FIRED')\n",
        ],
        env={
            **os.environ,
            FAULTS_ENV_VAR: str(plan),
            "PYTHONPATH": str(REPO_ROOT / "src"),
        },
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "FIRED" in proc.stdout


# ------------------------------------------------------------ overhead floor
def test_disabled_fault_point_overhead_floor():
    """Disarmed sites must stay free: one global load and a None compare.

    Same floor discipline (and bound) as the NULL_SPAN test in test_obs.py;
    the resilience_overhead bench scenario pins the same number.
    """
    clear_plan()
    n = 200_000
    payload = "x" * 64
    start = time.perf_counter()
    for _ in range(n):
        fault_point("cache.append")
    elapsed = time.perf_counter() - start
    assert elapsed < n * 2.5e-6, f"disabled fault_point too slow: {elapsed:.3f}s"
    start = time.perf_counter()
    for _ in range(n):
        assert fault_data("cache.append.write", payload) is payload
    elapsed = time.perf_counter() - start
    assert elapsed < n * 2.5e-6, f"disabled fault_data too slow: {elapsed:.3f}s"


# ------------------------------------------------------------- retry policy
def test_backoff_schedule_is_deterministic_and_capped():
    policy = RetryPolicy(max_retries=5, base_backoff_s=0.01, max_backoff_s=0.05)
    assert [policy.backoff_s(n) for n in range(1, 6)] == [
        0.01,
        0.02,
        0.04,
        0.05,
        0.05,
    ]
    assert policy.backoff_s(0) == 0.0


def test_policy_validation():
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="multiplier"):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError, match="backoff"):
        RetryPolicy(base_backoff_s=-0.1)


def test_classification_mirrors_the_evaluate_job_contract():
    from repro.core.mapping_params import MappingError

    assert classify_exception(MappingError("no mapping")) == DETERMINISTIC
    assert classify_exception(ValueError("bad spec")) == DETERMINISTIC
    assert classify_exception(OSError("pool broke")) == TRANSIENT
    assert classify_exception(FaultInjected("chaos")) == TRANSIENT


def test_call_with_retry_heals_transient_failures():
    attempts = []
    waits = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError("transient")
        return "ok"

    before = metrics.counter("retries.total")
    result = call_with_retry(
        flaky,
        RetryPolicy(max_retries=3, base_backoff_s=0.5),
        metric="test.retries",
        sleep=waits.append,
    )
    assert result == "ok" and len(attempts) == 3
    assert waits == [0.5, 1.0]  # the deterministic schedule, no jitter
    assert metrics.counter("retries.total") == before + 2


def test_call_with_retry_gives_up_after_the_budget():
    attempts = []

    def hopeless():
        attempts.append(1)
        raise OSError("still down")

    with pytest.raises(OSError, match="still down"):
        call_with_retry(
            hopeless, RetryPolicy(max_retries=2, base_backoff_s=0), sleep=lambda s: None
        )
    assert len(attempts) == 3  # 1 try + 2 retries


def test_call_with_retry_never_retries_deterministic_errors():
    attempts = []

    def broken():
        attempts.append(1)
        raise ValueError("always wrong")

    with pytest.raises(ValueError):
        call_with_retry(broken, RetryPolicy(max_retries=5), sleep=lambda s: None)
    assert len(attempts) == 1


def test_call_with_retry_respects_retry_on_filter():
    attempts = []

    def flaky():
        attempts.append(1)
        raise OSError("transient but unlisted")

    with pytest.raises(OSError):
        call_with_retry(
            flaky,
            RetryPolicy(max_retries=5),
            retry_on=(TimeoutError,),
            sleep=lambda s: None,
        )
    assert len(attempts) == 1
