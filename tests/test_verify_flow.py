"""Verify/flow integration: the verify-off path is byte-identical, the
verify-on path surfaces CEC verdicts through SynthesisResult, EvalRecord and
the CLI without perturbing cache keys or serialised records -- the same
diagnostic-knob contract as lint (tests/test_lint_flow.py)."""

import json

import pytest

from repro.cli import main
from repro.engine.jobs import EvalJob
from repro.engine.runner import EvalRecord, evaluate_job
from repro.flow import FlowSpec
from repro.workloads.registry import build_pattern


@pytest.fixture(scope="module")
def pattern():
    return build_pattern("fifo", 4, 4)


# ---------------------------------------------------------------------------
# Spec plumbing: default-off, default-omitted, never in job keys
# ---------------------------------------------------------------------------

def test_verify_field_defaults_off_and_is_omitted():
    spec = FlowSpec()
    assert spec.verify == 0
    assert "verify" not in spec.to_spec()
    assert "verify" not in spec.to_spec(job_key=True)


def test_verify_field_serialises_when_set_but_never_in_job_keys():
    spec = FlowSpec(verify=1)
    assert spec.to_spec()["verify"] == 1
    assert "verify" not in spec.to_spec(job_key=True)
    assert FlowSpec.from_spec(spec.to_spec()) == spec


def test_verify_field_is_validated():
    with pytest.raises(ValueError):
        FlowSpec(verify=-1)
    with pytest.raises(TypeError):
        FlowSpec(verify=True)


def test_job_keys_identical_with_and_without_verify():
    plain = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec())
    verified = EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(verify=1))
    assert plain.key == verified.key
    assert plain.to_spec() == verified.to_spec()


# ---------------------------------------------------------------------------
# Flow stage + SynthesisResult surface
# ---------------------------------------------------------------------------

def test_flow_attaches_verify_report_only_when_enabled(pattern):
    from repro.engine.jobs import build_design

    design = build_design(pattern, "SRAG", "two-hot")
    off = design.synthesize(spec=FlowSpec(opt_level=1))
    assert off.verify_report is None
    on = design.synthesize(spec=FlowSpec(opt_level=1, verify=1))
    assert on.verify_report is not None
    assert on.verify_report.equivalent and on.verify_report.proven
    # Verification must not perturb the measured result.
    assert on.delay_ns == off.delay_ns
    assert on.area_cells == off.area_cells


def test_flow_verifies_working_copy_against_callers_netlist(pattern):
    from repro.engine.jobs import build_design
    from repro.synth.flow import run_synthesis_flow

    netlist = build_design(pattern, "CntAG", "decoders").netlist
    before = (sorted(netlist.nets), sorted(netlist.cells))
    result = run_synthesis_flow(netlist, spec=FlowSpec(opt_level=1, verify=1))
    assert result.verify_report is not None
    assert result.verify_report.equivalent
    # The caller's netlist is untouched (the flow clones before rewriting).
    assert (sorted(netlist.nets), sorted(netlist.cells)) == before


# ---------------------------------------------------------------------------
# EvalRecord: volatile verdicts, byte-identical serialisation
# ---------------------------------------------------------------------------

def test_evaluate_job_collects_verdict_but_never_serialises_it():
    record = evaluate_job(
        EvalJob("fifo", 4, 4, "SRAG", "two-hot", FlowSpec(verify=1))
    )
    assert record.status == "ok"
    assert record.verify_result is not None
    assert record.verify_result["equivalent"] is True
    assert "verify_result" not in record.to_dict()


def test_record_jsonl_byte_identical_with_verify_on_and_off():
    record_off = evaluate_job(
        EvalJob("dct", 4, 4, "CntAG", "decoders", FlowSpec())
    )
    record_on = evaluate_job(
        EvalJob("dct", 4, 4, "CntAG", "decoders", FlowSpec(verify=1))
    )
    record_off.duration_s = record_on.duration_s = 0.0
    assert json.dumps(record_off.to_dict(), sort_keys=True) == json.dumps(
        record_on.to_dict(), sort_keys=True
    )


def test_record_with_verdict_round_trips_without_it():
    record = EvalRecord(
        workload="w", rows=4, cols=4, style="SRAG", variant="two-hot",
        library="std018", key="k", status="ok",
        verify_result={"equivalent": True, "method": "induction"},
    )
    data = record.to_dict()
    assert "verify_result" not in data
    rebuilt = EvalRecord.from_dict(data, cached=True)
    assert rebuilt.verify_result is None
    assert rebuilt.cached


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_verify_flag_on_generate_path(capsys):
    code = main(
        ["--workload", "fifo", "--rows", "4", "--cols", "4", "--verify"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "verify: equivalent" in captured.out


def test_cli_verify_flag_on_campaign_path(capsys):
    code = main(["--campaign", "smoke", "--verify", "--serial", "--quiet"])
    captured = capsys.readouterr()
    assert code == 0
    assert "verify: 0 proven-inequivalent record(s)" in captured.out


# ---------------------------------------------------------------------------
# Guard: --verify and --lint compose in one flow (satellite 6)
# ---------------------------------------------------------------------------

def test_verify_and_lint_compose_in_one_flow(pattern):
    from repro.engine.jobs import build_design

    design = build_design(pattern, "SRAG", "two-hot")
    result = design.synthesize(spec=FlowSpec(opt_level=1, lint=1, verify=1))
    assert result.lint_report is not None
    assert result.verify_report is not None
    assert result.lint_report.findings == []
    assert result.verify_report.equivalent


def test_cli_verify_and_lint_combined_generate(capsys):
    code = main(
        ["--workload", "fifo", "--rows", "4", "--cols", "4",
         "--verify", "--lint"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "lint: 0 finding(s)" in captured.out
    assert "verify: equivalent" in captured.out


def test_cli_verify_and_lint_combined_campaign(capsys):
    code = main(
        ["--campaign", "smoke", "--verify", "--lint", "--serial", "--quiet"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "lint: 0 error-severity finding(s)" in captured.out
    assert "verify: 0 proven-inequivalent record(s)" in captured.out
