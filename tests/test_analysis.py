"""Tests for the trade-off analysis, design-space explorer and reporting."""


import pytest

from repro.analysis.explorer import DesignPoint, explore, pareto_front
from repro.analysis.reporting import format_figure, format_series, format_table
from repro.flow import FlowSpec
from repro.analysis.tradeoff import (
    GeneratorMetrics,
    TradeoffRecord,
    average_factors,
    compare_generators,
    evaluate_cntag,
    evaluate_srag,
)
from repro.workloads import fifo, motion_estimation


# ---------------------------------------------------------------------------
# Trade-off records
# ---------------------------------------------------------------------------

def _record(workload, srag_delay, srag_area, cnt_delay, cnt_area):
    return TradeoffRecord(
        workload=workload,
        rows=16,
        cols=16,
        srag=GeneratorMetrics("SRAG", srag_delay, srag_area, 32),
        cntag=GeneratorMetrics("CntAG", cnt_delay, cnt_area, 10),
    )


def test_factors_computation():
    record = _record("w", 1.0, 3000.0, 2.0, 1000.0)
    assert record.delay_reduction_factor == pytest.approx(2.0)
    assert record.area_increase_factor == pytest.approx(3.0)
    assert "w" in record.describe()


def test_average_factors():
    records = [_record("w", 1.0, 2000.0, 1.5, 1000.0), _record("w", 1.0, 4000.0, 2.5, 1000.0)]
    delay, area = average_factors(records)
    assert delay == pytest.approx(2.0)
    assert area == pytest.approx(3.0)
    with pytest.raises(ValueError):
        average_factors([])


def test_evaluate_and_compare_real_generators():
    pattern = motion_estimation.new_img_read_pattern(16, 16, 2, 2)
    srag = evaluate_srag(pattern)
    cntag = evaluate_cntag(pattern)
    assert srag.style == "SRAG"
    assert cntag.style == "CntAG"
    assert set(cntag.detail) == {"counter", "row_decoder", "column_decoder", "full"}

    record = compare_generators("motion_est_read", pattern)
    # The paper's qualitative claims: SRAG is faster but larger.
    assert record.delay_reduction_factor > 1.0
    assert record.area_increase_factor > 1.0


# ---------------------------------------------------------------------------
# Pareto front and exploration
# ---------------------------------------------------------------------------

def _point(style, delay, area):
    return DesignPoint(style=style, variant="", delay_ns=delay, area_cells=area, flip_flops=0)


def test_pareto_front_filters_dominated_points():
    a = _point("A", 1.0, 100.0)
    b = _point("B", 2.0, 50.0)
    c = _point("C", 2.5, 200.0)  # dominated by both A (delay) and... kept? no: dominated by B
    front = pareto_front([a, b, c])
    assert a in front and b in front and c not in front


def test_pareto_front_keeps_unique_point():
    a = _point("A", 1.0, 1.0)
    assert pareto_front([a]) == [a]


def test_explore_covers_multiple_architectures():
    result = explore(fifo.fifo_pattern(4, 4))
    styles = {point.style for point in result.points}
    assert {"SRAG", "CntAG"}.issubset(styles)
    assert result.best_delay() is not None
    assert result.best_area() is not None
    assert result.pareto()
    text = result.describe()
    assert "Pareto" in text


def test_explore_records_inapplicable_architectures():
    result = explore(motion_estimation.new_img_read_pattern(4, 4, 2, 2))
    skipped_styles = {point.style for point in result.skipped}
    # The SFM cannot implement block access.
    assert "SFM" in skipped_styles
    for point in result.skipped:
        assert not point.applicable
        assert point.note


def test_explore_skips_fsm_for_long_sequences():
    result = explore(
        motion_estimation.new_img_read_pattern(8, 8, 2, 2),
        spec=FlowSpec(max_fsm_states=16),
    )
    assert all(point.style != "FSM" for point in result.points)


def test_explore_records_failures_raised_during_evaluation(monkeypatch):
    """Regression: a failure inside synthesize() must be skipped, not raised.

    Candidate construction can succeed while elaboration/synthesis later
    raises (the netlist is built lazily); the docstring promises those land
    in ``skipped`` like construction failures do.
    """
    import repro.analysis.explorer as explorer_module
    from repro.hdl.netlist import NetlistError

    class ExplodingDesign:
        style = "BOOM"

        def synthesize(self, **kwargs):
            raise NetlistError("elaboration exploded late")

    pattern = fifo.fifo_pattern(4, 4)
    real_factories = explorer_module.candidate_factories

    def with_exploder(*args, **kwargs):
        return real_factories(*args, **kwargs) + [
            ("BOOM", "late", lambda: ExplodingDesign())
        ]

    monkeypatch.setattr(explorer_module, "candidate_factories", with_exploder)
    result = explore(pattern)
    assert any(p.style == "BOOM" for p in result.skipped)
    boom = next(p for p in result.skipped if p.style == "BOOM")
    assert not boom.applicable and "exploded late" in boom.note
    # The survivors are unaffected.
    assert {p.style for p in result.points} >= {"SRAG", "CntAG"}


def test_explore_passes_opt_level_through_to_synthesis():
    raw = explore(fifo.fifo_pattern(8, 8))
    opt = explore(fifo.fifo_pattern(8, 8), spec=FlowSpec(opt_level=1))
    area = {(p.style, p.variant): p.area_cells for p in raw.points}
    area_opt = {(p.style, p.variant): p.area_cells for p in opt.points}
    assert area_opt[("CntAG", "decoders")] < area[("CntAG", "decoders")]


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def test_format_table_alignment_and_floats():
    text = format_table(
        ["name", "value"],
        [["a", 1.234], ["bbbb", 10.0]],
        title="demo",
        float_format="{:.1f}",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "1.2" in text and "10.0" in text
    # Header separator row present.
    assert set(lines[2].replace(" ", "")) == {"-"}


def test_format_series_and_figure():
    series = {"SRAG": [1.0, 1.1], "CntAG": [2.0, 2.2]}
    text = format_series("size", ["16x16", "32x32"], series)
    assert "SRAG" in text and "32x32" in text
    figure = format_figure(
        "Figure 8", "size", ["16x16"], {"SRAG": [1.0]},
        y_label="delay/ns", expectation="SRAG roughly 2x faster",
    )
    assert figure.startswith("=== Figure 8 ===")
    assert "delay/ns" in figure
    assert "2x faster" in figure
