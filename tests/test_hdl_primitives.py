"""Unit tests for the primitive cell vocabulary."""

import itertools

import pytest

from repro.hdl.primitives import (
    PRIMITIVES,
    combinational_eval,
    flop_next_state,
    is_sequential,
)


def test_registry_contains_expected_families():
    for name in ("INV", "BUF", "NAND2", "NOR3", "AND4", "XOR2", "MUX2", "DFF",
                 "DFF_EN_RST", "DFF_EN_SET", "TIE0", "TIE1", "AOI21", "OAI21"):
        assert name in PRIMITIVES


def test_is_sequential_classification():
    assert is_sequential("DFF")
    assert is_sequential("DFF_EN_RST")
    assert not is_sequential("NAND2")


@pytest.mark.parametrize("a", [0, 1])
def test_inverter_and_buffer(a):
    assert combinational_eval("INV", {"A": a})["Y"] == (1 - a)
    assert combinational_eval("BUF", {"A": a})["Y"] == a


@pytest.mark.parametrize("n", [2, 3, 4])
def test_and_or_nand_nor_truthfulness(n):
    pins = ["A", "B", "C", "D"][:n]
    for values in itertools.product([0, 1], repeat=n):
        assignment = dict(zip(pins, values))
        assert combinational_eval(f"AND{n}", assignment)["Y"] == int(all(values))
        assert combinational_eval(f"NAND{n}", assignment)["Y"] == int(not all(values))
        assert combinational_eval(f"OR{n}", assignment)["Y"] == int(any(values))
        assert combinational_eval(f"NOR{n}", assignment)["Y"] == int(not any(values))


def test_xor_xnor_mux():
    for a, b in itertools.product([0, 1], repeat=2):
        assert combinational_eval("XOR2", {"A": a, "B": b})["Y"] == (a ^ b)
        assert combinational_eval("XNOR2", {"A": a, "B": b})["Y"] == (1 - (a ^ b))
    for a, b, s in itertools.product([0, 1], repeat=3):
        expected = b if s else a
        assert combinational_eval("MUX2", {"A": a, "B": b, "S": s})["Y"] == expected


def test_aoi_oai():
    for a, b, c in itertools.product([0, 1], repeat=3):
        assert combinational_eval("AOI21", {"A": a, "B": b, "C": c})["Y"] == int(
            not ((a and b) or c)
        )
        assert combinational_eval("OAI21", {"A": a, "B": b, "C": c})["Y"] == int(
            not ((a or b) and c)
        )


def test_ties():
    assert combinational_eval("TIE0", {})["Y"] == 0
    assert combinational_eval("TIE1", {})["Y"] == 1


def test_plain_dff_follows_data():
    assert flop_next_state("DFF", {"D": 1, "Q": 0}) == 1
    assert flop_next_state("DFF", {"D": 0, "Q": 1}) == 0


def test_dff_reset_and_set_dominate():
    assert flop_next_state("DFF_RST", {"D": 1, "RST": 1, "Q": 1}) == 0
    assert flop_next_state("DFF_SET", {"D": 0, "SET": 1, "Q": 0}) == 1
    assert flop_next_state("DFF_EN_RST", {"D": 1, "EN": 1, "RST": 1, "Q": 1}) == 0
    assert flop_next_state("DFF_EN_SET", {"D": 0, "EN": 1, "SET": 1, "Q": 0}) == 1


def test_dff_enable_holds_state():
    assert flop_next_state("DFF_EN", {"D": 1, "EN": 0, "Q": 0}) == 0
    assert flop_next_state("DFF_EN", {"D": 1, "EN": 1, "Q": 0}) == 1
    assert flop_next_state("DFF_EN_RST", {"D": 1, "EN": 0, "RST": 0, "Q": 1}) == 1


def test_wrong_eval_function_raises():
    with pytest.raises(ValueError):
        combinational_eval("DFF", {"D": 1, "Q": 0})
    with pytest.raises(ValueError):
        flop_next_state("INV", {"A": 1})


def test_every_primitive_has_consistent_spec():
    for name, spec in PRIMITIVES.items():
        assert spec.name == name
        assert spec.outputs, f"{name} has no outputs"
        if not spec.sequential:
            # Evaluate with all-zero inputs; must produce every declared output.
            result = spec.eval_fn({pin: 0 for pin in spec.inputs})
            assert set(result) == set(spec.outputs)
