"""Tests for high-fanout buffer-tree insertion."""

import pytest

from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.synth.buffering import insert_buffer_trees
from repro.synth.timing import timing_report


def _wide_fanout_design(fanout):
    """One input inverter driving ``fanout`` AND gates."""
    netlist = Netlist("fanout")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    hub = netlist.new_net("hub")
    netlist.add_cell("INV", A=a, Y=hub)
    for i in range(fanout):
        out = netlist.new_net(f"o{i}")
        netlist.add_cell("AND2", A=hub, B=b, Y=out)
        netlist.add_output(f"y_{i}", out)
    return netlist


def test_no_buffers_below_limit():
    netlist = _wide_fanout_design(6)
    assert insert_buffer_trees(netlist, max_fanout=8) == 0


def test_buffers_inserted_and_fanout_bounded():
    netlist = _wide_fanout_design(100)
    inserted = insert_buffer_trees(netlist, max_fanout=8)
    assert inserted > 0
    for net in netlist.nets.values():
        data_loads = [
            (cell, pin)
            for cell, pin in net.loads
            if not (cell.spec.sequential and pin == "CLK")
        ]
        assert len(data_loads) <= 8, f"net {net.name} still drives {len(data_loads)} pins"


def test_buffering_preserves_function():
    netlist = _wide_fanout_design(40)
    insert_buffer_trees(netlist, max_fanout=4)
    sim = Simulator(netlist)
    sim.poke("a", 0)
    sim.poke("b", 1)
    sim.settle()
    # INV(0) = 1, AND(1, 1) = 1 on every output.
    assert all(sim.peek(f"y_{i}") == 1 for i in range(40))
    sim.poke("a", 1)
    sim.settle()
    assert all(sim.peek(f"y_{i}") == 0 for i in range(40))


def test_buffering_reduces_delay_for_huge_fanout():
    unbuffered = _wide_fanout_design(400)
    buffered = _wide_fanout_design(400)
    before = timing_report(unbuffered).critical_path_delay
    insert_buffer_trees(buffered, max_fanout=8)
    after = timing_report(buffered).critical_path_delay
    assert after < before


def test_clock_pins_are_not_buffered():
    netlist = Netlist("clk")
    clk = netlist.add_input("clk")
    for i in range(50):
        q = netlist.new_net(f"q{i}")
        netlist.add_cell("DFF", D=netlist.const(0), CLK=clk, Q=q)
        netlist.add_output(f"o_{i}", q)
    assert insert_buffer_trees(netlist, max_fanout=8) == 0


def test_invalid_max_fanout_rejected():
    netlist = _wide_fanout_design(4)
    with pytest.raises(ValueError):
        insert_buffer_trees(netlist, max_fanout=1)
