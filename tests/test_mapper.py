"""Tests for the SRAdGen mapping procedure (the paper's Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapper import map_address_sequence, map_row_and_column, map_sequence
from repro.core.mapping_params import MappingError
from repro.core.srag import SragFunctionalModel
from repro.workloads import motion_estimation


def test_table2_row_mapping_matches_paper():
    """The Table 2 parameters for the row address sequence of Table 1."""
    row_sequence = [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]
    mapping = map_sequence(row_sequence, num_lines=4)
    table = mapping.as_table()
    assert table["I"] == row_sequence
    assert table["D"] == [2] * 8
    assert table["R"] == [0, 1, 0, 1, 2, 3, 2, 3]
    assert table["U"] == [0, 1, 2, 3]
    assert table["O"] == [2, 2, 2, 2]
    assert table["Z"] == [0, 1, 4, 5]
    assert table["S"] == [(0, 1), (2, 3)]
    assert table["P"] == [4, 4]
    assert table["dC"] == 2
    assert table["pC"] == 4


def test_table2_column_mapping():
    col_sequence = [0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3]
    mapping = map_sequence(col_sequence, num_lines=4)
    assert mapping.div_count == 1
    assert mapping.registers == [(0, 1), (2, 3)]
    assert mapping.pass_count == 4


def test_paper_divcnt_example():
    """dC = 2 with pass always asserted: 5,5,1,1,4,4,0,0,3,3,7,7,6,6,2,2."""
    sequence = [5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]
    mapping = map_sequence(sequence, num_lines=8)
    assert mapping.div_count == 2
    produced = SragFunctionalModel.from_mapping(mapping).run(len(sequence))
    assert produced == sequence


def test_paper_divcnt_violation_example():
    """5,5,5,1,1,... has a dC of 3 for address 5 and 2 elsewhere -> rejected."""
    sequence = [5, 5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]
    with pytest.raises(MappingError, match="DivCnt"):
        map_sequence(sequence, num_lines=8)


def test_paper_passcnt_example():
    """pC = 8 and dC = 1: 5,1,4,0,5,1,4,0,3,7,6,2,3,7,6,2."""
    sequence = [5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2]
    mapping = map_sequence(sequence, num_lines=8)
    assert mapping.div_count == 1
    assert mapping.pass_count == 8
    assert mapping.registers == [(5, 1, 4, 0), (3, 7, 6, 2)]


def test_paper_passcnt_violation_example():
    """5,1,4,0 x3 then 3,7,6,2 x2 has pC 12 vs 8 -> rejected."""
    sequence = [5, 1, 4, 0] * 3 + [3, 7, 6, 2] * 2
    with pytest.raises(MappingError, match="PassCnt"):
        map_sequence(sequence, num_lines=8)


def test_paper_grouping_verification_failure_example():
    """The paper's 1,2,3,4,3,2,1,4 example fails the verification step."""
    with pytest.raises(MappingError):
        map_sequence([1, 2, 3, 4, 3, 2, 1, 4], num_lines=5)


def test_incremental_sequence_maps_to_single_register():
    mapping = map_sequence(list(range(16)))
    assert mapping.num_registers == 1
    assert mapping.register_lengths == [16]
    assert mapping.div_count == 1
    assert mapping.total_flip_flops == 16


def test_mapping_rejects_empty_and_negative():
    with pytest.raises(MappingError):
        map_sequence([])
    with pytest.raises(MappingError):
        map_sequence([0, -1])
    with pytest.raises(MappingError):
        map_sequence([4], num_lines=4)


def test_mapping_of_full_2d_sequence():
    sequence = motion_estimation.read_sequence(8, 8, 2, 2)
    row_mapping, col_mapping = map_address_sequence(sequence)
    assert row_mapping.num_lines == 8
    assert col_mapping.num_lines == 8
    assert row_mapping.div_count == 2
    assert col_mapping.div_count == 1
    # Each dimension uses one flip-flop per distinct address.
    assert row_mapping.total_flip_flops == 8
    assert col_mapping.total_flip_flops == 8


def test_map_row_and_column_wrapper():
    rows = [0, 0, 1, 1]
    cols = [0, 1, 0, 1]
    row_mapping, col_mapping = map_row_and_column(rows, cols, 2, 2)
    assert row_mapping.div_count == 2
    assert col_mapping.div_count == 1


def test_iterations_per_register():
    mapping = map_sequence([0, 1, 0, 1, 2, 3, 2, 3], num_lines=4)
    assert mapping.iterations_per_register() == [2, 2]


def test_describe_contains_all_parameters():
    mapping = map_sequence([0, 0, 1, 1], num_lines=2)
    text = mapping.describe()
    for key in ("I =", "D =", "R =", "U =", "O =", "Z =", "S =", "P =", "dC =", "pC ="):
        assert key in text


# ---------------------------------------------------------------------------
# Property-based: any mapping the mapper accepts regenerates its input.
# ---------------------------------------------------------------------------

@st.composite
def mappable_sequences(draw):
    """Generate sequences by construction from SRAG parameters.

    Register lengths are at least 2 so that a recirculating register never
    emits the same address on consecutive cycles -- single-flip-flop
    registers make repetitions ambiguous between the DivCnt and the PassCnt,
    and such sequences are represented with a different (equally valid)
    parameter set by the mapper.  All registers share one length because the
    paper's greedy initial grouping can merge registers of unequal length
    that each circulate exactly once, and (as the paper itself notes) the
    procedure then rejects the sequence rather than re-grouping.
    """
    num_registers = draw(st.integers(1, 3))
    common_length = draw(st.integers(2, 4))
    lengths = [common_length for _ in range(num_registers)]
    # Assign distinct addresses to every flip-flop.
    addresses = list(range(sum(lengths)))
    registers = []
    offset = 0
    for length in lengths:
        registers.append(addresses[offset:offset + length])
        offset += length
    div_count = draw(st.integers(1, 3))
    # The pass count must be a common multiple of every register length for
    # the generated sequence to satisfy the restrictions.
    base = 1
    for length in lengths:
        base = base * length // _gcd(base, length)
    pass_count = base * draw(st.integers(1, 2))
    model = SragFunctionalModel(registers, div_count, pass_count)
    cycles = div_count * pass_count * num_registers
    return model.run(cycles), registers, div_count, pass_count


def _gcd(a, b):
    while b:
        a, b = b, a % b
    return a


@given(mappable_sequences())
@settings(max_examples=40, deadline=None)
def test_mapper_round_trip_property(case):
    """Any sequence produced by an SRAG is accepted by the mapper, and the
    mapped parameters regenerate it exactly (the parameters themselves may
    legitimately differ from the generating ones)."""
    sequence, _registers, _div_count, _pass_count = case
    mapping = map_sequence(sequence)
    model = SragFunctionalModel.from_mapping(mapping)
    assert model.run(len(sequence)) == sequence
