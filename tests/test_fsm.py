"""Tests for the symbolic FSM model, encodings and synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.netlist import Bus
from repro.hdl.simulator import Simulator
from repro.synth.fsm import (
    ENCODINGS,
    FiniteStateMachine,
    encoding_by_name,
    synthesize_fsm,
)


# ---------------------------------------------------------------------------
# FSM model
# ---------------------------------------------------------------------------

def test_fsm_from_select_sequence_cycles():
    fsm = FiniteStateMachine.from_select_sequence([2, 0, 1])
    assert fsm.num_states == 3
    assert fsm.output_sequence_as_indices(7) == [2, 0, 1, 2, 0, 1, 2]


def test_fsm_from_binary_sequence():
    fsm = FiniteStateMachine.from_binary_sequence([0, 3, 1], address_width=2)
    observed = fsm.simulate(3)
    decoded = [vec[0] + 2 * vec[1] for vec in observed]
    assert decoded == [0, 3, 1]


def test_fsm_from_two_hot_sequence():
    fsm = FiniteStateMachine.from_two_hot_sequence([0, 1], [1, 0], 2, 2)
    assert fsm.output_width == 4
    first = fsm.outputs[0]
    assert first == (1, 0, 0, 1)


def test_fsm_validation_errors():
    with pytest.raises(ValueError):
        FiniteStateMachine(name="bad", num_states=2, next_state=[0], outputs=[(0,), (1,)])
    with pytest.raises(ValueError):
        FiniteStateMachine(
            name="bad", num_states=2, next_state=[0, 5], outputs=[(0,), (1,)]
        )
    with pytest.raises(ValueError):
        FiniteStateMachine(
            name="bad", num_states=2, next_state=[1, 0], outputs=[(0,), (1, 1)]
        )
    with pytest.raises(ValueError):
        FiniteStateMachine.from_select_sequence([])


def test_fsm_hold_when_not_advancing():
    fsm = FiniteStateMachine.from_select_sequence([0, 1, 2])
    held = fsm.simulate(3, advance=False)
    assert held == [fsm.outputs[0]] * 3


# ---------------------------------------------------------------------------
# Encodings
# ---------------------------------------------------------------------------

def test_binary_and_gray_widths():
    binary = encoding_by_name("binary")
    gray = encoding_by_name("gray")
    assert binary.width(8) == 3
    assert binary.width(9) == 4
    assert gray.width(8) == 3


def test_onehot_and_johnson_codes_are_distinct():
    for name in ("binary", "gray", "onehot", "johnson"):
        encoding = ENCODINGS[name]
        for num_states in (1, 2, 5, 8, 13):
            codes = encoding.codes(num_states)
            assert len(set(codes)) == num_states, f"{name} collides for {num_states}"


def test_gray_adjacent_codes_differ_by_one_bit():
    gray = encoding_by_name("gray")
    codes = gray.codes(16)
    for a, b in zip(codes, codes[1:]):
        assert bin(a ^ b).count("1") == 1


def test_onehot_codes():
    onehot = encoding_by_name("onehot")
    assert onehot.codes(4) == [1, 2, 4, 8]
    assert onehot.width(4) == 4


def test_code_bits_and_errors():
    binary = encoding_by_name("binary")
    assert binary.code_bits(5, 8) == (1, 0, 1)
    with pytest.raises(ValueError):
        binary.encode(8, 8)
    with pytest.raises(KeyError):
        encoding_by_name("magic")


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

def _simulate_select_outputs(result, num_lines, cycles):
    sim = Simulator(result.netlist)
    sim.reset()
    sim.poke("next", 1)
    lines = Bus([result.netlist.outputs[f"sel_{k}"] for k in range(num_lines)])
    observed = []
    for _ in range(cycles):
        sim.settle()
        observed.append(sim.peek_onehot(lines))
        sim.step()
    return observed


@pytest.mark.parametrize("encoding", ["binary", "gray", "onehot", "johnson"])
def test_synthesized_fsm_reproduces_sequence(encoding):
    sequence = [0, 3, 1, 2, 6, 5]
    fsm = FiniteStateMachine.from_select_sequence(sequence, num_lines=8)
    result = synthesize_fsm(fsm, encoding=encoding)
    assert result.state_width >= 1
    observed = _simulate_select_outputs(result, 8, 2 * len(sequence))
    assert observed == sequence + sequence


def test_synthesized_fsm_holds_without_next():
    fsm = FiniteStateMachine.from_select_sequence([0, 1, 2, 3])
    result = synthesize_fsm(fsm, encoding="binary")
    sim = Simulator(result.netlist)
    sim.reset()
    sim.poke("next", 0)
    sim.step(3)
    lines = Bus([result.netlist.outputs[f"sel_{k}"] for k in range(4)])
    sim.settle()
    assert sim.peek_onehot(lines) == 0


def test_fsm_synthesis_records_effort():
    fsm = FiniteStateMachine.from_select_sequence(list(range(16)))
    result = synthesize_fsm(fsm, encoding="binary")
    assert not result.structural
    assert result.stats.minterms > 0
    assert result.synthesis_seconds >= 0


def test_onehot_synthesis_uses_structural_path():
    fsm = FiniteStateMachine.from_select_sequence(list(range(8)))
    result = synthesize_fsm(fsm, encoding="onehot")
    assert result.structural
    assert result.state_width == 8


@given(length=st.integers(2, 10), seed=st.integers(0, 2 ** 16))
@settings(max_examples=12, deadline=None)
def test_fsm_synthesis_matches_model_property(length, seed):
    """Structural synthesis agrees with the behavioural model for random sequences."""
    values = [(seed * (i + 3) + 7 * i * i) % length for i in range(length)]
    fsm = FiniteStateMachine.from_select_sequence(values, num_lines=length)
    result = synthesize_fsm(fsm, encoding="binary")
    observed = _simulate_select_outputs(result, length, length)
    assert observed == values
