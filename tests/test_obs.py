"""Tests for the observability stack: tracing, metrics, logging, profiling.

The CI matrix runs the whole suite twice -- once plain and once with
``SRADGEN_TRACE=1`` -- so every test here manages the global tracer state
explicitly (install a private tracer, restore the previous one) instead of
assuming it starts disabled.
"""

import dataclasses
import json
import time

import pytest

from repro.engine.cache import ResultCache
from repro.engine.jobs import EvalJob
from repro.engine.runner import _evaluate_batch, evaluate_job
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    collect_phase_totals,
    enable_tracing,
    get_tracer,
    log,
    metrics,
    phase,
    render_spans,
    set_tracer,
    span,
    tracing_enabled,
)


@pytest.fixture
def private_tracer():
    """Install a fresh enabled tracer for one test; restore afterwards."""
    previous = get_tracer()
    tracer = set_tracer(Tracer(enabled=True))
    yield tracer
    set_tracer(previous)


@pytest.fixture
def disabled_tracer():
    """Install a fresh disabled tracer for one test; restore afterwards."""
    previous = get_tracer()
    tracer = set_tracer(Tracer(enabled=False))
    yield tracer
    set_tracer(previous)


# ---------------------------------------------------------------------------
# Tracing core
# ---------------------------------------------------------------------------

def test_disabled_span_is_the_shared_noop_singleton(disabled_tracer):
    assert not tracing_enabled()
    assert span("anything") is NULL_SPAN
    assert span("else", detail="ignored") is NULL_SPAN
    # The no-op is a working context manager with a no-op counter API.
    with span("qm.minimize") as s:
        s.add("merge_operations", 1000)
    assert disabled_tracer.roots == []


def test_disabled_tracer_overhead_floor(disabled_tracer):
    """Best-of-3: a million disabled spans must stay in noise territory.

    The bound is deliberately loose (CI machines vary wildly); the point is
    catching a regression that starts allocating or reading the clock on
    the disabled path, which shows up as an order of magnitude, not 20%.
    """
    n = 200_000

    def traced_loop():
        for _ in range(n):
            with span("hot"):
                pass

    elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        traced_loop()
        elapsed = min(elapsed, time.perf_counter() - start)
    # ~2.5 us per disabled span is an order of magnitude above observed cost.
    assert elapsed < n * 2.5e-6, f"disabled span overhead too high: {elapsed:.3f}s"


def test_spans_nest_into_a_tree(private_tracer):
    with span("outer", detail="top") as outer:
        outer.add("items", 2)
        with span("inner.a"):
            pass
        with span("inner.a"):
            pass
        with span("inner.b"):
            pass
    assert [root.name for root in private_tracer.roots] == ["outer"]
    root = private_tracer.roots[0]
    assert [child.name for child in root.children] == ["inner.a", "inner.a", "inner.b"]
    assert root.counters == {"items": 2}
    assert root.wall_s >= 0.0
    assert all(child.children == [] for child in root.children)


def test_span_round_trips_through_dicts(private_tracer):
    with span("parent", detail="d") as parent:
        parent.add("hits", 3)
        with span("child"):
            pass
    data = private_tracer.roots[0].to_dict()
    rebuilt = type(private_tracer.roots[0]).from_dict(data)
    assert rebuilt.name == "parent"
    assert rebuilt.detail == "d"
    assert rebuilt.counters == {"hits": 3}
    assert [c.name for c in rebuilt.children] == ["child"]
    assert rebuilt.to_dict() == data


def test_adopt_reparents_serialised_spans(private_tracer):
    worker = Tracer(enabled=True)
    with worker.span("evaluate_job"):
        with worker.span("job.synthesize"):
            pass
    shipped = [root.to_dict() for root in worker.roots]

    with span("campaign.dispatch"):
        adopted = get_tracer().adopt(shipped)
    root = private_tracer.roots[0]
    assert root.name == "campaign.dispatch"
    assert [child.name for child in root.children] == ["evaluate_job"]
    assert [g.name for g in root.children[0].children] == ["job.synthesize"]
    assert adopted == root.children


def test_adopt_without_open_span_lands_in_roots(private_tracer):
    get_tracer().adopt([{"name": "orphan", "wall_s": 0.1}])
    assert [root.name for root in private_tracer.roots] == ["orphan"]


def test_enable_tracing_toggles_in_place(disabled_tracer):
    assert not tracing_enabled()
    enable_tracing()
    assert tracing_enabled()
    with span("now.recorded"):
        pass
    enable_tracing(False)
    assert not tracing_enabled()
    assert [root.name for root in disabled_tracer.roots] == ["now.recorded"]


def test_phase_collects_wall_time_only_when_asked(private_tracer):
    timings = {}
    with phase("flow.timing", timings):
        pass
    with phase("flow.timing", timings):
        pass
    with phase("flow.area"):  # span-only form
        pass
    assert set(timings) == {"flow.timing"}
    assert timings["flow.timing"] >= 0.0
    names = [root.name for root in private_tracer.roots]
    assert names == ["flow.timing", "flow.timing", "flow.area"]


def test_collect_phase_totals_filters_by_prefix(private_tracer):
    with span("campaign.run"):
        with span("flow.opt"):
            pass
        with span("flow.opt"):
            pass
        with span("job.mapping"):
            pass
    totals = collect_phase_totals(private_tracer.roots, prefixes=("flow.",))
    assert set(totals) == {"flow.opt"}
    everything = collect_phase_totals(private_tracer.roots)
    assert set(everything) == {"campaign.run", "flow.opt", "job.mapping"}


def test_render_spans_merges_same_name_siblings(private_tracer):
    with span("campaign.dispatch"):
        for _ in range(3):
            with span("evaluate_job") as s:
                s.add("jobs", 1)
    rendered = render_spans(private_tracer.roots)
    assert "evaluate_job x3" in rendered
    assert "jobs=3" in rendered
    plain = render_spans(private_tracer.roots, merge=False)
    assert plain.count("evaluate_job") == 3


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

def test_metrics_registry_counters_and_gauges():
    reg = MetricsRegistry()
    reg.incr("cache.hits")
    reg.incr("cache.hits", 4)
    reg.gauge("cache.entries", 17)
    assert reg.counter("cache.hits") == 5
    assert reg.as_dict() == {
        "counters": {"cache.hits": 5},
        "gauges": {"cache.entries": 17},
    }
    parsed = json.loads(reg.to_json())
    assert parsed == reg.as_dict()
    reg.reset()
    assert reg.as_dict() == {"counters": {}, "gauges": {}}


def test_metrics_snapshot_delta_merge_round_trip():
    """The pool path: worker-side deltas fold into the parent registry."""
    reg = MetricsRegistry()
    reg.incr("qm.calls", 3)
    before = reg.snapshot()
    reg.incr("qm.calls", 2)
    reg.incr("cache.misses")
    delta = reg.counters_since(before)
    assert delta == {"qm.calls": 2, "cache.misses": 1}

    parent = MetricsRegistry()
    parent.incr("qm.calls", 10)
    parent.merge_counters(delta)
    assert parent.counter("qm.calls") == 12
    assert parent.counter("cache.misses") == 1


def test_cache_feeds_the_metrics_registry(tmp_path):
    cache = ResultCache(str(tmp_path))
    before = metrics.snapshot()
    cache.put("k1", {"status": "ok"})
    assert cache.get("k1") == {"status": "ok"}
    assert cache.get("missing") is None
    delta = metrics.counters_since(before)
    assert delta["cache.appends"] == 1
    assert delta["cache.hits"] == 1
    assert delta["cache.misses"] == 1


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------

def test_log_writes_structured_lines_to_stderr(capsys):
    log.warning("process pool unavailable", component="runner", error="boom")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "[sradgen] WARNING process pool unavailable" in captured.err
    assert "component=runner" in captured.err
    assert "error=boom" in captured.err


# ---------------------------------------------------------------------------
# Flow profiling and the cross-process collector
# ---------------------------------------------------------------------------

JOB = EvalJob("fifo", 4, 4, "SRAG", "two-hot")
# FSM synthesis exercises the QM minimiser, so this job always produces
# qm.* counter increments -- the probe for cross-process metric deltas.
FSM_JOB = EvalJob("fifo", 4, 4, "FSM", "binary")


def test_phase_timings_populated_only_while_tracing(private_tracer):
    record = evaluate_job(JOB)
    assert record.status == "ok"
    assert "flow.timing" in record.phase_timings
    assert "job.synthesize" in record.phase_timings
    assert all(v >= 0.0 for v in record.phase_timings.values())

    set_tracer(Tracer(enabled=False))
    cold = evaluate_job(JOB)
    assert cold.phase_timings == {}


def test_eval_record_dict_is_byte_identical_with_tracing_on_and_off(
    disabled_tracer,
):
    """The invariant every cache key and JSONL record rests on."""
    plain = evaluate_job(JOB)
    enable_tracing()
    traced = evaluate_job(JOB)
    enable_tracing(False)
    assert traced.phase_timings and not plain.phase_timings
    # duration_s is wall clock and legitimately differs; normalise it.
    plain = dataclasses.replace(plain, duration_s=0.0)
    traced = dataclasses.replace(traced, duration_s=0.0)
    assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
        traced.to_dict(), sort_keys=True
    )
    assert "phase_timings" not in plain.to_dict()


def test_worker_batch_ships_spans_and_counter_deltas_back(private_tracer):
    records, span_dicts, counter_delta = _evaluate_batch([FSM_JOB], True)
    assert [r.status for r in records] == ["ok"]
    # The worker traced under its own tracer; the parent's is untouched...
    assert get_tracer() is private_tracer
    assert private_tracer.roots == []
    # ...and the spans come back as plain data, ready for adoption.
    assert [s["name"] for s in span_dicts] == ["evaluate_job"]
    child_names = {c["name"] for c in span_dicts[0].get("children", ())}
    assert "job.synthesize" in child_names
    assert counter_delta.get("qm.calls", 0) > 0

    with span("campaign.dispatch"):
        get_tracer().adopt(span_dicts)
    root = private_tracer.roots[0]
    assert [c.name for c in root.children] == ["evaluate_job"]


def test_worker_batch_skips_span_collection_when_not_asked(disabled_tracer):
    records, span_dicts, counter_delta = _evaluate_batch([FSM_JOB], False)
    assert [r.status for r in records] == ["ok"]
    assert span_dicts == []
    assert counter_delta.get("qm.calls", 0) > 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_trace_renders_span_tree_on_stderr(capsys, disabled_tracer):
    from repro.cli import main

    assert main(
        ["--workload", "fifo", "--rows", "4", "--cols", "4", "--trace"]
    ) == 0
    captured = capsys.readouterr()
    assert "sradgen" in captured.err
    assert "(generate)" in captured.err


def test_cli_metrics_out_writes_registry_json(tmp_path, capsys, disabled_tracer):
    from repro.cli import main

    out = tmp_path / "metrics.json"
    assert main(
        [
            "--workload", "fifo", "--rows", "4", "--cols", "4",
            "--metrics-out", str(out),
        ]
    ) == 0
    payload = json.loads(out.read_text())
    assert set(payload) == {"counters", "gauges"}


def test_cli_cache_stats(tmp_path, capsys, disabled_tracer):
    from repro.cli import main

    cache_dir = str(tmp_path / "cache")
    cache = ResultCache(cache_dir)
    cache.put("k1", {"status": "ok"})
    cache.put("k2", {"status": "skipped"})
    cache.put("k1", {"status": "ok"})  # supersedes: one stale line

    assert main(["--cache-stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "2 live record(s)" in out
    assert "3 total (2 live, 1 superseded" in out
    assert "ok: 1" in out
    assert "skipped: 1" in out


def test_cli_cache_stats_requires_cache_dir(capsys, disabled_tracer):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["--cache-stats"])
