"""Rule-engine core: findings, reports, severities, suppression."""

from repro.lint.core import (
    ERROR,
    INFO,
    WARNING,
    Finding,
    LintReport,
    Rule,
    filter_suppressed,
    severity_rank,
)


def _finding(rule="x.rule", severity=ERROR, message="boom", location="a:1", line=1):
    return Finding(
        rule=rule, severity=severity, message=message, location=location, line=line
    )


def test_severity_rank_orders_most_severe_first():
    assert severity_rank(ERROR) < severity_rank(WARNING) < severity_rank(INFO)
    assert severity_rank("mystery") > severity_rank(INFO)


def test_finding_to_dict_and_render():
    finding = _finding(rule="design.comb-loop", location="top.u1", line=0)
    assert finding.to_dict() == {
        "rule": "design.comb-loop",
        "severity": "error",
        "message": "boom",
        "location": "top.u1",
        "line": 0,
    }
    assert finding.render() == "top.u1: error [design.comb-loop] boom"
    # Without a location the line leads with the severity.
    assert Finding(rule="r", severity=WARNING, message="m").render() == "warning [r] m"


def test_rule_finding_constructor_uses_rule_identity():
    class Demo(Rule):
        id = "demo.rule"
        severity = WARNING
        description = "demo"

    rule = Demo()
    finding = rule.finding("msg", location="loc", line=3)
    assert finding.rule == "demo.rule"
    assert finding.severity == WARNING
    assert finding.line == 3
    # Per-finding severity override (a rule may escalate some instances).
    assert rule.finding("msg", severity=ERROR).severity == ERROR


def test_report_counts_and_has_errors():
    report = LintReport(target="top")
    assert not report.has_errors
    assert len(report) == 0
    report.extend([_finding(severity=WARNING), _finding(), _finding(severity=INFO)])
    assert report.error_count == 1
    assert report.warning_count == 1
    assert report.has_errors
    assert len(report) == 3


def test_report_sort_is_severity_then_location():
    report = LintReport(target="top")
    report.extend(
        [
            _finding(rule="b", severity=WARNING, location="z:9", line=9),
            _finding(rule="a", severity=ERROR, location="m:5", line=5),
            _finding(rule="c", severity=ERROR, location="a:2", line=2),
        ]
    )
    report.sort()
    assert [f.rule for f in report.findings] == ["c", "a", "b"]


def test_report_by_rule_groups():
    report = LintReport(
        findings=[_finding(rule="r1"), _finding(rule="r2"), _finding(rule="r1")]
    )
    grouped = report.by_rule()
    assert sorted(grouped) == ["r1", "r2"]
    assert len(grouped["r1"]) == 2


def test_report_summary_render_and_to_dict():
    report = LintReport(
        target="netlist_x",
        findings=[_finding(severity=WARNING, message="w1")],
        suppressed=2,
        checked=10,
    )
    assert "1 finding(s)" in report.summary()
    assert "0 error(s), 1 warning(s)" in report.summary()
    assert "2 suppressed" in report.summary()
    assert "netlist_x" in report.summary()
    rendered = report.render()
    assert rendered.splitlines()[0] == "a:1: warning [x.rule] w1"
    data = report.to_dict()
    assert data["target"] == "netlist_x"
    assert data["errors"] == 0
    assert data["warnings"] == 1
    assert data["suppressed"] == 2
    assert data["checked"] == 10
    assert data["findings"][0]["message"] == "w1"


def test_filter_suppressed_by_rule_and_all():
    findings = [_finding(rule="r1"), _finding(rule="r2")]
    kept, dropped = filter_suppressed(findings, ())
    assert len(kept) == 2 and dropped == 0
    kept, dropped = filter_suppressed(findings, ("r1",))
    assert [f.rule for f in kept] == ["r2"] and dropped == 1
    kept, dropped = filter_suppressed(findings, ("all",))
    assert kept == [] and dropped == 2
