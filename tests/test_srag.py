"""Tests for the SRAG functional model and structural elaboration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapper import map_sequence
from repro.core.srag import SragFunctionalModel, build_srag
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.workloads import dct, motion_estimation, zoom
from repro.workloads.fifo import incremental_sequence


# ---------------------------------------------------------------------------
# Functional model
# ---------------------------------------------------------------------------

def test_functional_model_paper_divcnt_example():
    model = SragFunctionalModel(
        registers=[(5, 1, 4, 0), (3, 7, 6, 2)], div_count=2, pass_count=4
    )
    expected = [5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2]
    assert model.run(16) == expected


def test_functional_model_paper_passcnt_example():
    model = SragFunctionalModel(
        registers=[(5, 1, 4, 0), (3, 7, 6, 2)], div_count=1, pass_count=8
    )
    expected = [5, 1, 4, 0, 5, 1, 4, 0, 3, 7, 6, 2, 3, 7, 6, 2]
    assert model.run(16) == expected


def test_functional_model_repeats_cyclically():
    model = SragFunctionalModel(registers=[(0, 1), (2, 3)], div_count=1, pass_count=2)
    one_period = model.run(4)
    two_periods = model.run(8)
    assert two_periods == one_period * 2


def test_functional_model_holds_without_next():
    model = SragFunctionalModel(registers=[(0, 1, 2)], div_count=1, pass_count=3)
    model.reset()
    assert model.current_address == 0
    model.step(next_asserted=False)
    assert model.current_address == 0
    model.step(next_asserted=True)
    assert model.current_address == 1


def test_functional_model_select_vector_is_one_hot():
    model = SragFunctionalModel(registers=[(2, 0, 1)], div_count=1, pass_count=3)
    for _ in range(6):
        vector = model.select_vector
        assert sum(vector) == 1
        assert vector.index(1) == model.current_address
        model.step()


def test_functional_model_validation():
    with pytest.raises(ValueError):
        SragFunctionalModel(registers=[], div_count=1, pass_count=1)
    with pytest.raises(ValueError):
        SragFunctionalModel(registers=[(0, 0)], div_count=1, pass_count=1)
    with pytest.raises(ValueError):
        SragFunctionalModel(registers=[(0, 1)], div_count=0, pass_count=1)
    with pytest.raises(ValueError):
        SragFunctionalModel(registers=[(0, 3)], div_count=1, pass_count=1, num_lines=2)


# ---------------------------------------------------------------------------
# Structural elaboration
# ---------------------------------------------------------------------------

def _structural_run(mapping, cycles):
    netlist = Netlist("srag_test")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    ports = build_srag(netlist, mapping, clk, nxt, rst)
    netlist.add_output_bus("sel", ports.select_lines)
    sim = Simulator(netlist)
    sim.reset()
    sim.poke("next", 1)
    produced = []
    for _ in range(cycles):
        sim.settle()
        produced.append(sim.peek_onehot(ports.select_lines))
        sim.step()
    return produced


@pytest.mark.parametrize(
    "sequence",
    [
        [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3],  # Table 2 row sequence
        [0, 1, 0, 1, 2, 3, 2, 3],                           # column-style sequence
        [5, 5, 1, 1, 4, 4, 0, 0, 3, 3, 7, 7, 6, 6, 2, 2],   # Figure 5 example
        list(range(12)),                                     # incremental
        [3, 3, 3, 2, 2, 2, 1, 1, 1, 0, 0, 0],                # descending with repeats
    ],
)
def test_structural_srag_matches_sequence(sequence):
    mapping = map_sequence(sequence)
    assert _structural_run(mapping, len(sequence)) == sequence


def test_structural_srag_matches_functional_model_over_two_periods():
    sequence = motion_estimation.read_sequence(4, 4, 2, 2).row_sequence
    mapping = map_sequence(sequence, num_lines=4)
    functional = SragFunctionalModel.from_mapping(mapping).run(2 * len(sequence))
    assert _structural_run(mapping, 2 * len(sequence)) == functional


def test_structural_srag_select_lines_stay_one_hot():
    mapping = map_sequence([0, 0, 1, 1, 2, 2, 3, 3], num_lines=6)
    netlist = Netlist("srag_onehot")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    ports = build_srag(netlist, mapping, clk, nxt, rst)
    netlist.add_output_bus("sel", ports.select_lines)
    sim = Simulator(netlist)
    sim.reset()
    sim.poke("next", 1)
    for _ in range(20):
        sim.settle()
        asserted = [i for i, net in enumerate(ports.select_lines) if sim.peek(net)]
        assert len(asserted) == 1
        sim.step()


def test_structural_srag_holds_when_next_low():
    mapping = map_sequence([0, 1, 2, 3])
    netlist = Netlist("srag_hold")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    ports = build_srag(netlist, mapping, clk, nxt, rst)
    sim = Simulator(netlist)
    sim.reset()
    sim.poke("next", 0)
    sim.step(5)
    sim.settle()
    assert sim.peek_onehot(ports.select_lines) == 0


def test_srag_flip_flop_count_equals_distinct_addresses():
    for sequence in (incremental_sequence(10).linear,
                     dct.column_pass_sequence(4, 4).col_sequence,
                     zoom.zoom_read_sequence(4, 4, 2).row_sequence):
        mapping = map_sequence(sequence)
        assert mapping.total_flip_flops == len(set(sequence))


def test_single_register_srag_has_no_multiplexors():
    mapping = map_sequence(list(range(8)))
    netlist = Netlist("srag_nomux")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    build_srag(netlist, mapping, clk, nxt, rst)
    assert all(cell.cell_type != "MUX2" for cell in netlist.cells.values())


def test_multi_register_srag_has_one_mux_per_register():
    mapping = map_sequence([0, 1, 0, 1, 2, 3, 2, 3])
    netlist = Netlist("srag_mux")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    rst = netlist.add_input("reset")
    build_srag(netlist, mapping, clk, nxt, rst)
    muxes = [cell for cell in netlist.cells.values() if cell.cell_type == "MUX2"]
    assert len(muxes) == mapping.num_registers


@given(st.integers(2, 24))
@settings(max_examples=15, deadline=None)
def test_incremental_srag_property(length):
    """For any length, the incremental sequence maps to a pure token ring."""
    sequence = list(range(length))
    mapping = map_sequence(sequence)
    assert mapping.num_registers == 1
    assert _structural_run(mapping, length) == sequence
