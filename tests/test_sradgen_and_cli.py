"""Tests for the SRAdGen flow facade and the sradgen command-line tool."""

import pytest

from repro.cli import build_parser, main
from repro.core.mapping_params import MappingError
from repro.core.sradgen import generate
from repro.workloads import motion_estimation, patterns


# ---------------------------------------------------------------------------
# generate() facade
# ---------------------------------------------------------------------------

def test_generate_produces_vhdl_and_mappings():
    result = generate(motion_estimation.read_sequence(4, 4, 2, 2))
    assert result.vhdl is not None
    assert "entity" in result.vhdl
    assert result.verilog is None
    assert result.synthesis is None
    assert result.row_mapping.div_count == 2
    assert result.col_mapping.div_count == 1
    text = result.describe()
    assert "row address sequence mapping" in text
    assert "dC" in text


def test_generate_with_verilog_and_synthesis():
    result = generate(
        motion_estimation.read_sequence(4, 4, 2, 2),
        emit_vhdl_text=False,
        emit_verilog_text=True,
        synthesize=True,
    )
    assert result.vhdl is None
    assert result.verilog is not None and "module" in result.verilog
    assert result.synthesis is not None
    assert result.synthesis.delay_ns > 0
    assert result.synthesis.metadata["rows"] == 4
    assert result.synthesis.summary() in result.describe()


def test_generate_rejects_unmappable_sequence():
    with pytest.raises(MappingError):
        generate(patterns.serpentine_sequence(4, 4))


def test_generate_custom_name_used_in_hdl():
    result = generate(motion_estimation.read_sequence(4, 4, 2, 2), name="my_srag")
    assert "entity my_srag is" in result.vhdl


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_parser_requires_source_and_dimensions():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--rows", "4", "--cols", "4"])
    args = parser.parse_args(["--workload", "fifo", "--rows", "4", "--cols", "4"])
    assert args.workload == "fifo"


def test_cli_builtin_workload_report(capsys):
    exit_code = main(["--workload", "motion_est_read", "--rows", "4", "--cols", "4", "--report"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "dC = 2" in captured.out
    assert "delay" in captured.out


def test_cli_reads_address_file_and_writes_hdl(tmp_path, capsys):
    address_file = tmp_path / "addresses.txt"
    address_file.write_text("# incremental\n" + "\n".join(str(i) for i in range(16)) + "\n")
    vhdl_file = tmp_path / "out.vhd"
    verilog_file = tmp_path / "out.v"
    exit_code = main([
        "--input", str(address_file),
        "--rows", "4", "--cols", "4",
        "--vhdl", str(vhdl_file),
        "--verilog", str(verilog_file),
    ])
    assert exit_code == 0
    assert "entity" in vhdl_file.read_text()
    assert "module" in verilog_file.read_text()
    assert "wrote VHDL" in capsys.readouterr().out


def test_cli_unmappable_sequence_reports_error(tmp_path, capsys):
    address_file = tmp_path / "bad.txt"
    address_file.write_text("1\n2\n3\n4\n3\n2\n1\n4\n")
    exit_code = main(["--input", str(address_file), "--rows", "1", "--cols", "5"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "mapping failed" in captured.err
    assert "multi_counter" in captured.err


def test_cli_rejects_malformed_address_file(tmp_path):
    address_file = tmp_path / "bad.txt"
    address_file.write_text("zero\n")
    with pytest.raises(SystemExit):
        main(["--input", str(address_file), "--rows", "2", "--cols", "2"])


def test_cli_explore(capsys):
    exit_code = main(["--workload", "fifo", "--rows", "4", "--cols", "4", "--explore"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "design space" in captured.out
    assert "SRAG" in captured.out


def test_cli_report_opt_level_shrinks_area(capsys):
    base_args = ["--workload", "dct", "--rows", "8", "--cols", "8", "--report"]

    def area_of(args):
        assert main(args) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if "area =" in line:
                return float(line.split("area =")[1].split("cell units")[0])
        raise AssertionError(f"no area line in output:\n{out}")

    raw = area_of(base_args)
    optimized = area_of(base_args + ["--opt-level", "1"])
    assert optimized < raw


# ---------------------------------------------------------------------------
# Campaign progress formatting
# ---------------------------------------------------------------------------

def _record(status, note="", **extra):
    from repro.engine.runner import EvalRecord

    return EvalRecord(
        workload="fifo", rows=4, cols=4, style="SRAG", variant="two-hot",
        library="std018", key="k", status=status, note=note, **extra,
    )


def test_format_progress_ok_record():
    from repro.cli import _format_progress

    line = _format_progress(
        _record("ok", delay_ns=1.25, area_cells=420.0, duration_s=0.01), 3, 16
    )
    assert "[ 3/16]" in line
    assert "delay" in line and "area" in line
    assert "10 ms" in line


def test_format_progress_ok_record_with_power():
    from repro.cli import _format_progress

    line = _format_progress(
        _record(
            "ok", delay_ns=1.0, area_cells=1.0,
            energy_per_access_fj=123.4, avg_power_uw=12.3,
        ),
        1, 2,
    )
    assert "e/access" in line and "123.4 fJ" in line


def test_format_progress_skipped_record():
    from repro.cli import _format_progress

    line = _format_progress(_record("skipped", note="not applicable\nmore"), 1, 2)
    assert "skipped: not applicable" in line
    assert "more" not in line


def test_format_progress_error_record_with_empty_note():
    """Regression: an error record with an empty note must not crash."""
    from repro.cli import _format_progress

    line = _format_progress(_record("error", note=""), 2, 2)
    assert "error:" in line
    cached = _format_progress(_record("error", note="", cached=True), 2, 2)
    assert "(cached)" in cached


def test_cli_campaign_opt_level_override(capsys):
    """--opt-level re-levels every job of a campaign instead of being ignored."""
    assert main(["--campaign", "smoke", "--serial", "--opt-level", "1"]) == 0
    out = capsys.readouterr().out
    assert "overriding flow settings: every job runs with opt_level=1" in out
    # Every per-job progress line for this campaign carries the O1 marker.
    job_lines = [line for line in out.splitlines() if line.startswith("  [")]
    assert job_lines and all(" O1 " in line for line in job_lines)


def test_cli_compact_cache_drops_superseded_lines(tmp_path, capsys):
    """--compact-cache rewrites the JSONL file to one line per live key."""
    cache_dir = str(tmp_path / "cache")
    results = tmp_path / "cache" / "results.jsonl"
    base = ["--campaign", "smoke", "--cache-dir", cache_dir, "--serial", "--quiet"]
    assert main(base) == 0
    lines_after_first = len(results.read_text().splitlines())
    # --force appends a superseding line for every key.
    assert main(base + ["--force"]) == 0
    capsys.readouterr()
    lines_before = len(results.read_text().splitlines())
    assert lines_before == 2 * lines_after_first

    assert main(["--compact-cache", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert f"{lines_before} -> {lines_after_first} lines" in out
    assert len(results.read_text().splitlines()) == lines_after_first
    # The compacted cache still serves every record.
    assert main(base) == 0
    assert "cache hits 16/16" in capsys.readouterr().out


def test_cli_compact_cache_requires_cache_dir(capsys):
    with pytest.raises(SystemExit):
        main(["--compact-cache"])
    assert "--cache-dir" in capsys.readouterr().err


def test_cli_power_campaign_end_to_end(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--campaign", "power", "--cache-dir", cache_dir, "--serial"]) == 0
    out = capsys.readouterr().out
    assert "campaign 'power'" in out
    assert "e/access" in out and "fJ" in out
    # Re-running resumes entirely from the persisted cache.
    assert main(["--campaign", "power", "--cache-dir", cache_dir, "--serial"]) == 0
    warm = capsys.readouterr().out
    assert "cache hits 36/36" in warm
