"""Service resilience: heartbeats, reconnect-resume, orphan cleanup, exit 3."""

import asyncio
import contextlib
import math
import socket
import threading
import time

import pytest

from repro.engine import runner as runner_module
from repro.engine.cache import ResultCache
from repro.engine.jobs import Campaign, EvalJob
from repro.engine.runner import CampaignRunner, EvalRecord
from repro.obs import metrics
from repro.resilience.faults import FaultPlan, FaultRule, clear_plan, install_plan
from repro.resilience.retry import RetryPolicy
from repro.service.client import (
    ServiceClient,
    ServiceUnavailable,
    run_campaign_remote,
)
from repro.service.protocol import job_to_wire
from repro.service.server import CampaignService

JOBS = [
    EvalJob("fifo", 4, 4, "SRAG", "two-hot"),
    EvalJob("dct", 4, 4, "SRAG", "two-hot"),
    EvalJob("fifo", 8, 8, "SRAG", "two-hot"),
    EvalJob("dct", 8, 8, "CntAG", "decoders"),
]
CAMPAIGN = Campaign("chaos", JOBS)
RESUME_POLICY = RetryPolicy(max_retries=3, base_backoff_s=0.01)


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    yield
    clear_plan()


@contextlib.contextmanager
def service_running(**kwargs):
    """Run a CampaignService on its own loop thread; yield (host, port)."""
    box = {}
    ready = threading.Event()

    def serve():
        async def main():
            service = CampaignService(**kwargs)
            box["addr"] = await service.start("127.0.0.1", 0)
            box["service"] = service
            box["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=serve, name="chaos-service", daemon=True)
    thread.start()
    assert ready.wait(10.0), "service failed to start"
    try:
        yield box["addr"]
    finally:
        box["loop"].call_soon_threadsafe(box["service"].request_shutdown)
        thread.join(10.0)
        assert not thread.is_alive(), "service failed to drain"


def _normalized(record):
    data = record.to_dict()
    data["duration_s"] = 0.0
    return {
        key: (None if isinstance(value, float) and math.isnan(value) else value)
        for key, value in data.items()
    }


@pytest.fixture
def counted_eval(monkeypatch):
    calls = []
    lock = threading.Lock()

    def fake(job):
        with lock:
            calls.append(job.key)
        time.sleep(0.02)
        return EvalRecord(
            workload=job.workload,
            rows=job.rows,
            cols=job.cols,
            style=job.style,
            variant=job.variant,
            library=job.spec.library,
            key=job.key,
            status="ok",
            delay_ns=1.0,
            area_cells=2.0,
        )

    monkeypatch.setattr(runner_module, "evaluate_job", fake)
    return calls


def _await_counter(name, target, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if metrics.counter(name) >= target:
            return True
        time.sleep(0.02)
    return False


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------- heartbeats
def test_heartbeats_flow_during_quiet_evaluations(counted_eval):
    beats = metrics.counter("service.heartbeats")
    with service_running(
        cache=ResultCache(None), workers=0, heartbeat_interval=0.005
    ) as addr:

        async def run():
            async with ServiceClient(*addr) as client:
                await client._send({"op": "jobs", "jobs": [job_to_wire(JOBS[0])]})
                events = []
                while True:
                    event = await client._recv()
                    events.append(event)
                    if event.get("event") in ("end", "error"):
                        return events

        events = asyncio.run(run())
    kinds = [event["event"] for event in events]
    assert "heartbeat" in kinds  # the 20ms evaluation outlasted the interval
    beat = next(e for e in events if e["event"] == "heartbeat")
    assert beat["done"] == 0  # beats carry progress, not records
    assert kinds[-1] == "end"
    assert metrics.counter("service.heartbeats") > beats


def test_client_api_consumes_heartbeats_silently(counted_eval):
    with service_running(
        cache=ResultCache(None), workers=0, heartbeat_interval=0.005
    ) as addr:
        result = run_campaign_remote(*addr, Campaign("one", [JOBS[0]]))
    assert [r.status for r in result.records] == ["ok"]


# ---------------------------------------------------------- reconnect/resume
def test_connect_to_dead_server_raises_service_unavailable():
    port = _free_port()
    with pytest.raises(ServiceUnavailable, match="cannot connect"):
        run_campaign_remote("127.0.0.1", port, CAMPAIGN)


def test_connect_retries_under_a_policy_then_gives_up():
    port = _free_port()
    retries = metrics.counter("client.connect_retries")
    with pytest.raises(ServiceUnavailable, match="cannot connect"):
        run_campaign_remote(
            "127.0.0.1",
            port,
            CAMPAIGN,
            retry_policy=RetryPolicy(max_retries=2, base_backoff_s=0.01),
        )
    assert metrics.counter("client.connect_retries") == retries + 2


def test_mid_stream_disconnect_resumes_with_zero_duplicates(counted_eval):
    """The tentpole client invariant: a dropped stream is healed by
    reconnect-and-resume, costs zero duplicate evaluations, and yields
    records identical to a fault-free serial run."""
    reference = CampaignRunner(ResultCache(None), workers=0).run(CAMPAIGN)
    assert counted_eval == [job.key for job in JOBS]
    del counted_eval[:]

    # The client's 2nd stream read dies exactly like a snapped connection.
    install_plan(
        FaultPlan(
            [
                FaultRule(
                    site="client.stream",
                    exception="ConnectionResetError",
                    on_hits=(2,),
                )
            ]
        )
    )
    reconnects = metrics.counter("client.reconnects")
    with service_running(cache=ResultCache(None), workers=0) as addr:
        result = run_campaign_remote(
            *addr, CAMPAIGN, retry_policy=RESUME_POLICY
        )
        assert metrics.counter("client.reconnects") == reconnects + 1
        # No lost records, no duplicate evaluations, identical results.
        assert len(set(counted_eval)) == len(counted_eval)
        assert sorted(counted_eval) == sorted(job.key for job in JOBS)
        assert [_normalized(r) for r in result.records] == [
            _normalized(r) for r in reference.records
        ]


def test_disconnect_without_policy_raises(counted_eval):
    install_plan(
        FaultPlan(
            [
                FaultRule(
                    site="client.stream",
                    exception="ConnectionResetError",
                    on_hits=(2,),
                )
            ]
        )
    )
    with service_running(cache=ResultCache(None), workers=0) as addr:
        with pytest.raises(ServiceUnavailable, match="connection lost"):
            run_campaign_remote(*addr, CAMPAIGN)


# ------------------------------------------------------------ orphan cleanup
def test_vanished_client_orphan_is_cancelled_and_work_survives(counted_eval):
    """A client that dies mid-stream must not wedge the server: its
    submission is cancelled, completed records stay cached, and a second
    client finishes the campaign with no key evaluated twice."""
    orphans = metrics.counter("service.orphaned_submissions")
    with service_running(cache=ResultCache(None), workers=0) as addr:

        async def vanish():
            client = ServiceClient(*addr)
            await client.connect()
            await client._send(
                {"op": "jobs", "jobs": [job_to_wire(job) for job in JOBS]}
            )
            accepted = await client._recv()
            assert accepted["event"] == "accepted"
            await client._recv()  # one record lands...
            # ...then the client dies without so much as a FIN handshake.
            client._writer.transport.abort()

        asyncio.run(vanish())
        assert _await_counter(
            "service.orphaned_submissions", orphans + 1
        ), "server never noticed the vanished client"

        # The service is healthy; the retry completes the campaign.
        result = run_campaign_remote(*addr, CAMPAIGN)
    assert [r.status for r in result.records] == ["ok"] * len(JOBS)
    # Across both requests every key was evaluated at most once -- records
    # the orphan completed came back as cache hits, not re-evaluations.
    assert len(set(counted_eval)) == len(counted_eval)
    assert sorted(set(counted_eval)) == sorted(job.key for job in JOBS)


def test_wedged_handler_write_is_treated_as_a_lost_client(counted_eval):
    """Server-side chaos: a write that blows up OSError-style mid-stream
    triggers the same orphan cleanup as a vanished client."""
    install_plan(
        FaultPlan(
            [FaultRule(site="service.write", exception="OSError", on_hits=(2,))]
        )
    )
    orphans = metrics.counter("service.orphaned_submissions")
    with service_running(cache=ResultCache(None), workers=0) as addr:

        async def run():
            async with ServiceClient(*addr) as client:
                await client._send(
                    {"op": "jobs", "jobs": [job_to_wire(job) for job in JOBS]}
                )
                accepted = await client._recv()
                assert accepted["event"] == "accepted"
                # The stream just stops (the server thinks we vanished);
                # prove the connection itself still answers pings.
                return await client.ping()

        pong = asyncio.run(run())
        assert _await_counter("service.orphaned_submissions", orphans + 1)
        assert pong["ok"]


# ------------------------------------------------------------------ CLI exit
def test_cli_connect_exits_3_with_one_actionable_line(capsys):
    from repro.cli import main

    port = _free_port()
    code = main(["--campaign", "smoke", "--connect", f"127.0.0.1:{port}", "--quiet"])
    assert code == 3
    err = capsys.readouterr().err
    lines = [line for line in err.splitlines() if "unavailable" in line]
    assert len(lines) == 1
    assert "sradgen: campaign service unavailable" in lines[0]
    assert f"is `sradgen --serve` running on 127.0.0.1:{port}?" in lines[0]
    assert "Traceback" not in err


def test_cli_connect_retry_flags_arm_the_client_policy(capsys):
    from repro.cli import main

    port = _free_port()
    retries = metrics.counter("client.connect_retries")
    code = main(
        [
            "--campaign",
            "smoke",
            "--connect",
            f"127.0.0.1:{port}",
            "--retry-max",
            "2",
            "--retry-backoff",
            "0.01",
            "--quiet",
        ]
    )
    assert code == 3
    assert metrics.counter("client.connect_retries") == retries + 2
