"""Unit tests for the two-phase netlist simulator."""

import pytest

from repro.hdl.netlist import Bus, Netlist
from repro.hdl.simulator import SimulationError, Simulator


def _toggle_flop():
    """A single flip-flop wired to toggle every cycle."""
    netlist = Netlist("toggle")
    clk = netlist.add_input("clk")
    q = netlist.new_net("q")
    d = netlist.new_net("d")
    netlist.add_cell("INV", A=q, Y=d)
    netlist.add_cell("DFF", D=d, CLK=clk, Q=q)
    netlist.add_output("q_out", q)
    return netlist


def test_toggle_flop_alternates():
    sim = Simulator(_toggle_flop())
    values = []
    for _ in range(6):
        values.append(sim.peek("q_out"))
        sim.step()
    assert values == [0, 1, 0, 1, 0, 1]


def test_combinational_logic_settles_without_clock():
    netlist = Netlist("comb")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    y = netlist.new_net("y")
    netlist.add_cell("AND2", A=a, B=b, Y=y)
    netlist.add_output("y", y)
    sim = Simulator(netlist)
    sim.poke("a", 1)
    sim.poke("b", 1)
    sim.settle()
    assert sim.peek("y") == 1
    sim.poke("b", 0)
    sim.settle()
    assert sim.peek("y") == 0


def test_poke_unknown_port_raises():
    sim = Simulator(_toggle_flop())
    with pytest.raises(SimulationError):
        sim.poke("nonexistent", 1)
    with pytest.raises(SimulationError):
        sim.peek("nonexistent")


def test_peek_bus_and_poke_bus():
    netlist = Netlist("bus")
    data = netlist.add_input_bus("d", 4)
    netlist.add_output_bus("o", data)
    sim = Simulator(netlist)
    sim.poke_bus(data, 11)
    sim.settle()
    assert sim.peek_bus(data) == 11


def test_peek_onehot_detects_violations():
    netlist = Netlist("onehot")
    bits = netlist.add_input_bus("b", 4)
    netlist.add_output_bus("o", bits)
    sim = Simulator(netlist)
    sim.poke_bus(bits, 0)
    assert sim.peek_onehot(bits) is None
    sim.poke_bus(bits, 4)
    assert sim.peek_onehot(bits) == 2
    sim.poke_bus(bits, 5)
    with pytest.raises(SimulationError):
        sim.peek_onehot(bits)


def test_step_with_keyword_ports():
    netlist = Netlist("en")
    clk = netlist.add_input("clk")
    en = netlist.add_input("en")
    q = netlist.new_net("q")
    one = netlist.const(1)
    netlist.add_cell("DFF_EN", D=one, CLK=clk, EN=en, Q=q)
    netlist.add_output("q", q)
    sim = Simulator(netlist)
    sim.step(en=0)
    assert sim.peek("q") == 0
    sim.step(en=1)
    assert sim.peek("q") == 1


def test_step_keyword_ports_do_not_persist():
    """Regression: step(**ports) drives ports only for the duration of the call."""
    netlist = Netlist("en2")
    clk = netlist.add_input("clk")
    en = netlist.add_input("en")
    q = netlist.new_net("q")
    one = netlist.const(1)
    netlist.add_cell("DFF_EN", D=one, CLK=clk, EN=en, Q=q)
    netlist.add_output("q", q)
    sim = Simulator(netlist)
    sim.poke("en", 0)
    sim.step(en=1)
    # The keyword drive took effect for the call...
    assert sim.peek("q") == 1
    # ...but the port reads back its pre-call value afterwards, and later
    # steps run with the restored (disabled) value.
    assert sim.peek("en") == 0
    sim.step(3)
    assert sim.peek("en") == 0
    assert sim.peek("q") == 1  # DFF_EN held its state with enable low


def test_poke_bus_and_peek_bus_reject_foreign_nets():
    netlist = Netlist("bus_err")
    data = netlist.add_input_bus("d", 2)
    netlist.add_output_bus("o", data)
    other = Netlist("other")
    foreign = other.add_input("foreign")
    sim = Simulator(netlist)
    with pytest.raises(SimulationError):
        sim.poke_bus(Bus([foreign]), 1)
    with pytest.raises(SimulationError):
        sim.peek_bus(Bus([foreign]))
    with pytest.raises(SimulationError):
        sim.peek(foreign)
    # Non-input nets in the same netlist still raise too.
    driven = netlist.nets[data[0].name]
    assert sim.peek_bus(Bus([driven])) in (0, 1)


def test_reset_pulse():
    netlist = Netlist("rst")
    clk = netlist.add_input("clk")
    reset = netlist.add_input("reset")
    q = netlist.new_net("q")
    one = netlist.const(1)
    netlist.add_cell("DFF_RST", D=one, CLK=clk, RST=reset, Q=q)
    netlist.add_output("q", q)
    sim = Simulator(netlist)
    sim.step()
    assert sim.peek("q") == 1
    sim.reset()
    assert sim.peek("q") == 0


def test_flop_state_query():
    netlist = _toggle_flop()
    sim = Simulator(netlist)
    flop_name = netlist.sequential_cells()[0].name
    assert sim.flop_state(flop_name) == 0
    sim.step()
    assert sim.flop_state(flop_name) == 1
    with pytest.raises(SimulationError):
        sim.flop_state("not_a_flop")


def test_run_sequence_samples_before_edge():
    netlist = Netlist("count1")
    clk = netlist.add_input("clk")
    nxt = netlist.add_input("next")
    q = netlist.new_net("q")
    d = netlist.new_net("d")
    netlist.add_cell("INV", A=q, Y=d)
    netlist.add_cell("DFF_EN", D=d, CLK=clk, EN=nxt, Q=q)
    netlist.add_output("q", q)
    sim = Simulator(netlist)
    samples = sim.run_sequence(Bus([q]), 4)
    assert samples == [0, 1, 0, 1]
