"""Crash-safe cache: torn-write healing, kill-anywhere compaction, locks."""

import multiprocessing
import os
import time

import pytest

from repro.engine.cache import CacheLock, CacheLockTimeout, ResultCache
from repro.obs import metrics
from repro.resilience.faults import FaultPlan, FaultRule, clear_plan, install_plan

KILL_CODE = 86  # the exit action's default


@pytest.fixture(autouse=True)
def disarmed():
    clear_plan()
    yield
    clear_plan()


def _fork_ctx():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform dependent
        pytest.skip("fork start method unavailable")


# ---------------------------------------------------------------- torn writes
def test_torn_append_self_heals_without_losing_the_record(tmp_path):
    """An injected mid-write kill is retried; the record still lands whole."""
    cache = ResultCache(str(tmp_path))
    cache.put("before", {"value": 0})
    install_plan(FaultPlan([FaultRule(site="cache.append.write", action="torn")]))
    retries = metrics.counter("cache.append_retries")
    sealed = metrics.counter("cache.sealed_tails")
    cache.put("healed", {"value": 1})
    # One retry repaired it: the fragment was sealed, the full line landed.
    assert metrics.counter("cache.append_retries") == retries + 1
    assert metrics.counter("cache.sealed_tails") == sealed + 1
    reloaded = ResultCache(str(tmp_path))
    assert reloaded.get("before") == {"value": 0}
    assert reloaded.get("healed") == {"value": 1}


def test_append_after_another_writers_torn_tail(tmp_path):
    """A fragment left by a killed foreign writer is sealed, not glued onto."""
    cache = ResultCache(str(tmp_path))
    cache.put("live", {"value": 1})
    with open(cache.path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn", "record": {"va')  # no trailing newline
    sealed = metrics.counter("cache.sealed_tails")
    fresh = ResultCache(str(tmp_path))
    fresh.put("after", {"value": 2})
    assert metrics.counter("cache.sealed_tails") == sealed + 1
    reloaded = ResultCache(str(tmp_path))
    assert reloaded.get("live") == {"value": 1}
    assert reloaded.get("after") == {"value": 2}
    assert "torn" not in reloaded


def test_put_is_not_acknowledged_until_durable(tmp_path):
    """A put whose append keeps failing must leave the key invisible."""
    cache = ResultCache(str(tmp_path))
    install_plan(
        FaultPlan(
            [FaultRule(site="cache.append", exception="OSError", max_fires=None)]
        )
    )
    with pytest.raises(OSError):
        cache.put("ghost", {"value": 1})
    clear_plan()
    assert "ghost" not in cache._records  # never indexed in memory...
    assert "ghost" not in ResultCache(str(tmp_path))  # ...and never on disk


def test_failure_after_durability_is_benign(tmp_path):
    """A crash between fsync and the index ack leaves the line on disk.

    That is the at-least-once side of the protocol and it is harmless by
    design: keys are content hashes, so a re-put writes the identical
    record and the reader's last-line-wins fold converges.
    """
    cache = ResultCache(str(tmp_path))
    install_plan(
        FaultPlan(
            [FaultRule(site="cache.append.flush", exception="OSError", max_fires=None)]
        )
    )
    with pytest.raises(OSError):
        cache.put("k", {"value": 1})
    clear_plan()
    assert "k" not in cache._records  # the put was never acknowledged
    cache.put("k", {"value": 1})  # the caller's retry converges
    reloaded = ResultCache(str(tmp_path))
    assert reloaded.get("k") == {"value": 1}


def test_transient_lock_contention_on_sharded_append_is_retried(tmp_path):
    install_plan(FaultPlan([FaultRule(site="cache.lock.acquire")]))
    retries = metrics.counter("cache.append_retries")
    cache = ResultCache(str(tmp_path), backend="sharded")
    cache.put("k", {"value": 1})
    assert metrics.counter("cache.append_retries") == retries + 1
    assert ResultCache(str(tmp_path)).get("k") == {"value": 1}


# --------------------------------------------------------- compaction kills
def _compact_with_kill(directory, site):
    """Child body: die (os._exit) exactly at ``site`` during compact()."""
    install_plan(FaultPlan([FaultRule(site=site, action="exit")]))
    ResultCache(directory, backend="sharded").compact()


def _seed_sharded(tmp_path):
    base = ResultCache(str(tmp_path))
    for i in range(3):
        base.put(f"base{i}", {"value": i})
    shard = ResultCache(str(tmp_path), backend="sharded")
    for i in range(3):
        shard.put(f"seg{i}", {"value": 10 + i})
    expected = {f"base{i}": {"value": i} for i in range(3)}
    expected.update({f"seg{i}": {"value": 10 + i} for i in range(3)})
    return expected


@pytest.mark.parametrize(
    "site", ["cache.compact.merge", "cache.compact.commit", "cache.compact.cleanup"]
)
def test_compaction_killed_at_any_point_loses_nothing(tmp_path, site):
    """kill -9 anywhere in compact(): the next load sees every record."""
    expected = _seed_sharded(tmp_path)
    ctx = _fork_ctx()
    child = ctx.Process(target=_compact_with_kill, args=(str(tmp_path), site))
    child.start()
    child.join(30)
    assert child.exitcode == KILL_CODE

    recovered = metrics.counter("cache.recovered_compactions")
    broken = metrics.counter("cache.locks_broken")
    reloaded = ResultCache(str(tmp_path))
    assert {key: reloaded.get(key) for key in expected} == expected
    if site == "cache.compact.commit":
        # Died after writing the temp file: the next load discards it
        # (breaking the dead child's lock to prove no compactor is live).
        assert metrics.counter("cache.recovered_compactions") == recovered + 1
        assert not os.path.exists(str(tmp_path / "results.jsonl.tmp"))

    # The cache is not wedged: the dead child's lock is broken (at load for
    # a commit kill, at re-acquire otherwise) and compaction converges.
    reloaded.compact()
    assert metrics.counter("cache.locks_broken") >= broken + 1
    assert os.listdir(tmp_path / "segments") == []
    final = ResultCache(str(tmp_path))
    assert {key: final.get(key) for key in expected} == expected


def test_live_compactions_temp_file_is_left_alone(tmp_path):
    """Recovery must not race a running compactor: lock held => hands off."""
    cache = ResultCache(str(tmp_path))
    cache.put("k", {"value": 1})
    tmp_file = tmp_path / "results.jsonl.tmp"
    tmp_file.write_text('{"key": "k", "record": {"value": 1}}\n')
    with CacheLock(str(tmp_path), stale_after_s=9999):  # a live compactor
        recovered = metrics.counter("cache.recovered_compactions")
        ResultCache(str(tmp_path)).get("k")
        assert metrics.counter("cache.recovered_compactions") == recovered
        assert tmp_file.exists()
    # Lock released (holder "died"): the next load reclaims the temp file.
    ResultCache(str(tmp_path)).get("k")
    assert not tmp_file.exists()


# ----------------------------------------------------------------- lock fixes
def test_stale_lock_break_logs_holder_pid_and_age(tmp_path, capsys):
    lock_path = tmp_path / "cache.lock"
    lock_path.write_text("999999999")
    os.utime(lock_path, (time.time() - 120, time.time() - 120))
    broken = metrics.counter("cache.locks_broken")
    with CacheLock(str(tmp_path), timeout=1.0):
        pass
    assert metrics.counter("cache.locks_broken") == broken + 1
    err = capsys.readouterr().err
    assert "breaking stale cache lock" in err
    assert "holder_pid=999999999" in err
    assert "holder_age_s=" in err


def test_vanishing_lock_respects_the_acquire_deadline(tmp_path):
    """The satellite bugfix: a repeatedly-vanishing lock file must not spin
    _break_if_stale past the acquire deadline -- it raises instead."""
    lock = CacheLock(str(tmp_path), timeout=0.05)
    # The lock file does not exist: stat() fails, the pre-fix code returned
    # silently forever.  With an expired deadline it must now raise.
    with pytest.raises(CacheLockTimeout, match="could not acquire"):
        lock._break_if_stale(deadline=time.monotonic() - 1.0)
    # No deadline (compaction-recovery probe): still a silent return.
    lock._break_if_stale()
    lock._break_if_stale(deadline=time.monotonic() + 60.0)
