"""Tests for the VHDL / Verilog / DOT emitters."""

import pytest

from repro.core.addm_generator import SragAddressGenerator
from repro.hdl.components import build_binary_counter
from repro.hdl.emit import emit_dot, emit_verilog, emit_vhdl
from repro.hdl.netlist import Netlist
from repro.workloads.motion_estimation import read_sequence


def _small_design():
    netlist = Netlist("small_counter")
    clk = netlist.add_input("clk")
    en = netlist.add_input("next")
    rst = netlist.add_input("reset")
    counter = build_binary_counter(netlist, 5, clk, enable=en, reset=rst)
    netlist.add_output_bus("count", counter.count)
    return netlist


def test_vhdl_contains_entity_and_ports():
    text = emit_vhdl(_small_design())
    assert "entity small_counter is" in text
    assert "architecture structural of small_counter" in text
    assert "clk : in std_logic" in text
    assert "count_0 : out std_logic" in text
    # Every used primitive gets a behavioural entity in the same file.
    assert "entity repro_dff_en_rst is" in text
    assert text.count("port map") == len(_small_design().cells)


def test_vhdl_without_primitives_is_shorter():
    netlist = _small_design()
    full = emit_vhdl(netlist, include_primitives=True)
    bare = emit_vhdl(netlist, include_primitives=False)
    assert len(bare) < len(full)
    assert "entity repro_inv" not in bare


def test_verilog_contains_module_and_instances():
    netlist = _small_design()
    text = emit_verilog(netlist)
    assert "module small_counter(" in text
    assert "input clk;" in text
    assert "output count_0;" in text
    assert "module repro_dff_en_rst(" in text
    assert "endmodule" in text


def test_verilog_balanced_modules():
    text = emit_verilog(_small_design())
    assert text.count("module ") - text.count("endmodule") == 0


def test_dot_output_mentions_cells_and_ports():
    netlist = _small_design()
    text = emit_dot(netlist)
    assert text.startswith('digraph "small_counter"')
    assert text.rstrip().endswith("}")
    for cell_name in list(netlist.cells)[:3]:
        assert cell_name in text


def test_emitters_on_generated_srag():
    generator = SragAddressGenerator.from_sequence(read_sequence())
    vhdl = emit_vhdl(generator.netlist)
    verilog = emit_verilog(generator.netlist)
    assert "rs_0" in vhdl and "cs_0" in vhdl
    assert "rs_0" in verilog and "cs_0" in verilog
    # The generated HDL should mention the multiplexors of the SRAG muxes.
    assert "repro_mux2" in vhdl.lower()


def test_emit_validates_netlist():
    netlist = Netlist("broken")
    floating = netlist.new_net("floating")
    y = netlist.new_net("y")
    netlist.add_cell("INV", A=floating, Y=y)
    with pytest.raises(Exception):
        emit_vhdl(netlist)
