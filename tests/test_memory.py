"""Tests for the memory models (RAM, ADDM, SFM, layouts, cell array)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.two_hot import encode_two_hot
from repro.memory import (
    AddressDecoderDecoupledMemory,
    BlockedLayout,
    COLUMN_MAJOR,
    ConventionalRAM,
    MemoryCellArray,
    MultipleSelectError,
    ROW_MAJOR,
    SequentialFifoMemory,
)


# ---------------------------------------------------------------------------
# Cell array
# ---------------------------------------------------------------------------

def test_cell_array_read_write():
    array = MemoryCellArray(2, 3)
    array.write_cell(1, 2, 42)
    assert array.read_cell(1, 2) == 42
    assert array.read_count == 1
    assert array.write_count == 1


def test_cell_array_bounds():
    array = MemoryCellArray(2, 2)
    with pytest.raises(IndexError):
        array.read_cell(2, 0)
    with pytest.raises(ValueError):
        MemoryCellArray(0, 4)


def test_cell_array_select_access_and_hazards():
    array = MemoryCellArray(4, 4)
    row, col = encode_two_hot(2, 1, 4, 4)
    array.write_selected(row, col, 7)
    assert array.read_selected(row, col) == 7
    with pytest.raises(MultipleSelectError):
        array.read_selected([1, 1, 0, 0], col)
    with pytest.raises(MultipleSelectError):
        array.read_selected([0, 0, 0, 0], col)
    with pytest.raises(ValueError):
        array.read_selected([1, 0, 0], col)


def test_cell_array_snapshot_and_load():
    array = MemoryCellArray(2, 2, fill=9)
    snap = array.snapshot()
    assert snap == [[9, 9], [9, 9]]
    array.load([[1, 2], [3, 4]])
    assert array.read_cell(1, 0) == 3
    with pytest.raises(ValueError):
        array.load([[1, 2, 3]])


# ---------------------------------------------------------------------------
# Layouts
# ---------------------------------------------------------------------------

def test_row_major_matches_paper_linear_address():
    # LA = I0 * img_width + I1 for a 4x4 array.
    assert ROW_MAJOR.linear(1, 2, 4, 4) == 6
    assert ROW_MAJOR.linear_to_rowcol(6, 4, 4) == (1, 2)


def test_column_major_layout():
    assert COLUMN_MAJOR.rowcol(1, 2, 4, 4) == (2, 1)


def test_blocked_layout_linearises_blocks():
    layout = BlockedLayout(2, 2)
    # The first 2x2 block occupies linear addresses 0..3.
    addresses = [layout.linear(i0, i1, 4, 4) for i0 in (0, 1) for i1 in (0, 1)]
    assert sorted(addresses) == [0, 1, 2, 3]
    with pytest.raises(ValueError):
        layout.linear(0, 0, 3, 4)


@given(rows=st.integers(2, 6), cols=st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_layouts_are_bijections(rows, cols):
    for layout in (ROW_MAJOR, COLUMN_MAJOR):
        seen = set()
        for i0 in range(rows):
            for i1 in range(cols):
                seen.add(layout.rowcol(i0, i1, rows, cols))
        assert len(seen) == rows * cols


def test_layout_bounds_checked():
    with pytest.raises(IndexError):
        ROW_MAJOR.rowcol(4, 0, 4, 4)
    with pytest.raises(IndexError):
        ROW_MAJOR.linear_to_rowcol(16, 4, 4)


# ---------------------------------------------------------------------------
# Conventional RAM
# ---------------------------------------------------------------------------

def test_ram_requires_power_of_two():
    with pytest.raises(ValueError):
        ConventionalRAM(3, 4)


def test_ram_address_split_and_access():
    ram = ConventionalRAM(4, 8)
    assert ram.address_width == 5
    assert ram.split_address(13) == (1, 5)
    ram.write(13, 99)
    assert ram.read(13) == 99
    assert ram.array.read_cell(1, 5) == 99
    with pytest.raises(IndexError):
        ram.read(32)


def test_ram_every_address_is_distinct_cell():
    ram = ConventionalRAM(4, 4)
    for address in range(16):
        ram.write(address, address + 100)
    assert [ram.read(a) for a in range(16)] == [a + 100 for a in range(16)]


# ---------------------------------------------------------------------------
# ADDM
# ---------------------------------------------------------------------------

def test_addm_select_line_access():
    addm = AddressDecoderDecoupledMemory(4, 4)
    row, col = encode_two_hot(3, 0, 4, 4)
    addm.write(row, col, 5)
    assert addm.read(row, col) == 5
    assert addm.read_rowcol(3, 0) == 5


def test_addm_rejects_multiple_asserted_lines():
    addm = AddressDecoderDecoupledMemory(4, 4)
    with pytest.raises(MultipleSelectError):
        addm.write([1, 0, 1, 0], [1, 0, 0, 0], 1)


def test_addm_size_properties():
    addm = AddressDecoderDecoupledMemory(8, 16)
    assert addm.rows == 8
    assert addm.cols == 16
    assert addm.size == 128


# ---------------------------------------------------------------------------
# Sequential FIFO Memory
# ---------------------------------------------------------------------------

def test_sfm_fifo_ordering():
    sfm = SequentialFifoMemory(4)
    for value in (10, 20, 30):
        sfm.push(value)
    assert sfm.occupancy == 3
    assert [sfm.pop(), sfm.pop(), sfm.pop()] == [10, 20, 30]
    assert sfm.is_empty


def test_sfm_wraps_around():
    sfm = SequentialFifoMemory(3)
    for value in (1, 2, 3):
        sfm.push(value)
    assert sfm.pop() == 1
    sfm.push(4)
    assert [sfm.pop(), sfm.pop(), sfm.pop()] == [2, 3, 4]


def test_sfm_full_and_empty_errors():
    sfm = SequentialFifoMemory(2)
    with pytest.raises(IndexError):
        sfm.pop()
    sfm.push(1)
    sfm.push(2)
    assert sfm.is_full
    with pytest.raises(OverflowError):
        sfm.push(3)


def test_sfm_pointer_vectors_are_one_hot():
    sfm = SequentialFifoMemory(4)
    sfm.push(1)
    assert sum(sfm.tail_pointer) == 1
    assert sfm.tail_pointer.index(1) == 1
    assert sfm.head_pointer.index(1) == 0


def test_sfm_reset():
    sfm = SequentialFifoMemory(4)
    sfm.push(1)
    sfm.reset()
    assert sfm.is_empty
    assert sfm.head_pointer.index(1) == 0


def test_sfm_access_pattern_limitation():
    sfm = SequentialFifoMemory(8)
    assert sfm.supports_access_pattern([0, 1, 2, 3])
    assert sfm.supports_access_pattern([5, 6, 7, 0, 1])
    # Block access (the motion-estimation order) is not FIFO.
    assert not sfm.supports_access_pattern([0, 1, 4, 5])
