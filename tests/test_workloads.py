"""Tests for address sequences, loop nests and the paper's workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.layout import BlockedLayout, COLUMN_MAJOR
from repro.workloads import (
    AddressSequence,
    AffineExpression,
    Loop,
    collapse_repetitions,
    consecutive_repetitions,
    dct,
    fifo,
    motion_estimation,
    patterns,
    zoom,
)
from repro.workloads.loopnest import AffineAccessPattern


# ---------------------------------------------------------------------------
# Sequence utilities
# ---------------------------------------------------------------------------

def test_consecutive_repetitions_and_collapse():
    sequence = [0, 0, 1, 1, 0, 0, 1, 1]
    assert consecutive_repetitions(sequence) == [2, 2, 2, 2]
    assert collapse_repetitions(sequence) == [0, 1, 0, 1]
    assert consecutive_repetitions([]) == []
    assert collapse_repetitions([]) == []


@given(st.lists(st.integers(0, 5), max_size=40))
@settings(max_examples=60, deadline=None)
def test_collapse_and_repetition_counts_are_consistent(values):
    runs = consecutive_repetitions(values)
    reduced = collapse_repetitions(values)
    assert len(runs) == len(reduced)
    assert sum(runs) == len(values)
    # Expanding the reduced sequence by the run lengths rebuilds the original.
    rebuilt = []
    for value, count in zip(reduced, runs):
        rebuilt.extend([value] * count)
    assert rebuilt == list(values)


def test_address_sequence_views_and_checks():
    seq = AddressSequence.from_linear("t", [0, 5, 10, 15], 4, 4)
    assert seq.row_sequence == [0, 1, 2, 3]
    assert seq.col_sequence == [0, 1, 2, 3]
    assert seq.length == 4
    assert seq.unique_addresses() == [0, 5, 10, 15]
    assert not seq.is_incremental()
    assert "4x4" in seq.describe()
    with pytest.raises(ValueError):
        AddressSequence.from_linear("bad", [16], 4, 4)


def test_address_sequence_from_rowcol_round_trip():
    rows = [0, 0, 1, 1]
    cols = [0, 1, 0, 1]
    seq = AddressSequence.from_rowcol("t", rows, cols, 2, 2)
    assert seq.linear == [0, 1, 2, 3]
    assert seq.row_sequence == rows
    assert seq.col_sequence == cols
    with pytest.raises(ValueError):
        AddressSequence.from_rowcol("t", [0], [0, 1], 2, 2)


def test_address_sequence_with_layout():
    seq = motion_estimation.read_sequence()
    blocked = seq.with_layout(BlockedLayout(2, 2))
    # Under a 2x2 blocked organisation the block read order becomes incremental.
    assert blocked.linear == list(range(16))
    column = seq.with_layout(COLUMN_MAJOR)
    assert sorted(column.linear) == sorted(seq.linear)


# ---------------------------------------------------------------------------
# Loop nests
# ---------------------------------------------------------------------------

def test_loop_validation_and_trip_count():
    assert Loop("i", 0, 4).trip_count == 4
    assert Loop("i", 1, 7, 2).values() == [1, 3, 5]
    with pytest.raises(ValueError):
        Loop("i", 0, 4, step=0)
    with pytest.raises(ValueError):
        Loop("i", 5, 2)


def test_affine_expression_evaluation():
    expr = AffineExpression.build({"g": 2, "k": 1}, constant=3)
    assert expr.evaluate({"g": 2, "k": 1}) == 8
    assert set(expr.variables()) == {"g", "k"}
    assert "2*g" in expr.describe()
    with pytest.raises(KeyError):
        expr.evaluate({"g": 1})


def test_access_pattern_iteration_order():
    pattern = AffineAccessPattern(
        name="t",
        loops=[Loop("a", 0, 2), Loop("b", 0, 3)],
        row_expr=AffineExpression.build({"a": 1}),
        col_expr=AffineExpression.build({"b": 1}),
        rows=2,
        cols=3,
    )
    assert pattern.trip_count == 6
    assert pattern.indices() == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
    assert pattern.to_sequence().linear == [0, 1, 2, 3, 4, 5]
    assert "a:0..1" in pattern.describe()


def test_access_pattern_rejects_duplicate_loop_vars():
    with pytest.raises(ValueError):
        AffineAccessPattern(
            name="t",
            loops=[Loop("a", 0, 2), Loop("a", 0, 2)],
            row_expr=AffineExpression.build({"a": 1}),
            col_expr=AffineExpression.build({"a": 1}),
            rows=2,
            cols=2,
        )


# ---------------------------------------------------------------------------
# Paper workloads
# ---------------------------------------------------------------------------

def test_table1_linear_row_and_column_sequences():
    seq = motion_estimation.read_sequence(4, 4, 2, 2)
    assert seq.linear == [0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15]
    assert seq.row_sequence == [0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3]
    assert seq.col_sequence == [0, 1, 0, 1, 2, 3, 2, 3, 0, 1, 0, 1, 2, 3, 2, 3]


def test_motion_estimation_write_sequence_is_incremental():
    seq = motion_estimation.write_sequence(8, 8)
    assert seq.is_incremental()
    assert seq.length == 64


def test_motion_estimation_search_range_repeats_blocks():
    seq = motion_estimation.read_sequence(4, 4, 2, 2, search_range=1)
    # Each macroblock is read (2m)^2 = 4 times.
    assert seq.length == 4 * 16
    assert seq.linear[:4] == [0, 1, 4, 5]


def test_motion_estimation_rejects_bad_tiling():
    with pytest.raises(ValueError):
        motion_estimation.new_img_read_pattern(5, 4, 2, 2)


def test_dct_column_pass_is_transposed_raster():
    seq = dct.column_pass_sequence(4, 4)
    assert seq.linear[:8] == [0, 4, 8, 12, 1, 5, 9, 13]
    assert seq.col_sequence[:4] == [0, 0, 0, 0]


def test_zoom_sequence_repeats_each_pixel():
    seq = zoom.zoom_read_sequence(2, 2, 2)
    assert seq.length == 16
    assert seq.linear[:6] == [0, 0, 1, 1, 0, 0]
    with pytest.raises(ValueError):
        zoom.zoom_read_pattern(2, 2, 0)


def test_fifo_and_incremental_sequences():
    assert fifo.fifo_sequence(4, 4).is_incremental()
    seq = fifo.incremental_sequence(10)
    assert seq.linear == list(range(10))
    with pytest.raises(ValueError):
        fifo.incremental_sequence(0)


def test_extra_patterns():
    strided = patterns.strided_pattern(4, 4, 2).to_sequence()
    assert strided.length == 16
    assert strided.row_sequence[:8] == [0, 0, 0, 0, 2, 2, 2, 2]

    block = patterns.block_raster_pattern(4, 4, 2, 2).to_sequence()
    assert block.linear == motion_estimation.read_sequence(4, 4, 2, 2).linear

    serp = patterns.serpentine_sequence(3, 3)
    assert serp.linear == [0, 1, 2, 5, 4, 3, 6, 7, 8]

    rep = patterns.repeated_sequence([0, 1], 3, 1, 2)
    assert rep.linear == [0, 0, 0, 1, 1, 1]

    lcg = patterns.lcg_sequence(20, 4, 4, seed=7)
    assert len(lcg) == 20
    assert all(0 <= a < 16 for a in lcg)
