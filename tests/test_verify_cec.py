"""Tests for SAT-based combinational/sequential equivalence checking."""

import pytest

from repro.engine.jobs import STYLE_VARIANTS, build_design
from repro.flow import FlowSpec
from repro.hdl.netlist import Netlist, NetlistError
from repro.core.mapping_params import MappingError
from repro.synth.flow import run_synthesis_flow
from repro.verify import check_equivalence
from repro.verify.cec import CecResult, Counterexample
from repro.workloads.registry import available_workloads, build_pattern


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

def _and2(name):
    nl = Netlist(name)
    a, b = nl.add_input("a"), nl.add_input("b")
    y = nl.new_net("y")
    nl.add_cell("AND2", name="u1", A=a, B=b, Y=y)
    nl.add_output("y", y)
    return nl


def _nand_inv(name):
    nl = Netlist(name)
    a, b = nl.add_input("a"), nl.add_input("b")
    n = nl.new_net("n")
    y = nl.new_net("y")
    nl.add_cell("NAND2", name="u1", A=a, B=b, Y=n)
    nl.add_cell("INV", name="u2", A=n, Y=y)
    nl.add_output("y", y)
    return nl


def _or2(name):
    nl = Netlist(name)
    a, b = nl.add_input("a"), nl.add_input("b")
    y = nl.new_net("y")
    nl.add_cell("OR2", name="u1", A=a, B=b, Y=y)
    nl.add_output("y", y)
    return nl


def _toggler(name, *, gate="XOR2"):
    """DFF whose D is gate(en, Q): toggles on en for XOR2, broken for XNOR2."""
    nl = Netlist(name)
    clk = nl.add_input("clk")
    en = nl.add_input("en")
    q = nl.new_net("q")
    d = nl.new_net("d")
    nl.add_cell(gate, name="u_gate", A=en, B=q, Y=d)
    nl.add_cell("DFF", name="u_ff", D=d, CLK=clk, Q=q)
    nl.add_output("q", q)
    return nl


def _toggler_restructured(name):
    """Same toggler, structurally different: XNOR then INV."""
    nl = Netlist(name)
    clk = nl.add_input("clk")
    en = nl.add_input("en")
    q = nl.new_net("q")
    n = nl.new_net("n")
    d = nl.new_net("d")
    nl.add_cell("XNOR2", name="u_gate", A=en, B=q, Y=n)
    nl.add_cell("INV", name="u_inv", A=n, Y=d)
    nl.add_cell("DFF", name="u_ff", D=d, CLK=clk, Q=q)
    nl.add_output("q", q)
    return nl


# ---------------------------------------------------------------------------
# Combinational CEC
# ---------------------------------------------------------------------------

def test_combinational_equivalence_is_proven():
    result = check_equivalence(_and2("g"), _nand_inv("r"))
    assert result.equivalent and result.proven
    assert result.method == "comb-miter"
    assert result.counterexample is None
    assert "equivalent" in result.summary()


def test_combinational_inequivalence_yields_replayed_counterexample():
    result = check_equivalence(_and2("g"), _or2("r"))
    assert not result.equivalent
    assert result.proven
    cex = result.counterexample
    assert isinstance(cex, Counterexample)
    assert cex.port == "y"
    # AND and OR differ exactly when a != b.
    stimulus = cex.inputs[0]
    assert stimulus["a"] != stimulus["b"]
    assert cex.golden_value != cex.revised_value
    assert "differs" in result.summary()


def test_port_mismatch_is_rejected():
    nl = Netlist("other")
    a = nl.add_input("different")
    nl.add_output("y", a)
    with pytest.raises(ValueError):
        check_equivalence(_and2("g"), nl)


def test_identical_netlist_clone_is_equivalent():
    golden = _and2("same")
    result = check_equivalence(golden, golden.clone())
    assert result.equivalent and result.proven


# ---------------------------------------------------------------------------
# Sequential CEC
# ---------------------------------------------------------------------------

def test_sequential_equivalence_proven_by_induction():
    result = check_equivalence(_toggler("g"), _toggler_restructured("r"))
    assert result.equivalent and result.proven
    assert result.method == "induction"


def test_planted_sequential_inequivalence_found_with_real_trace():
    result = check_equivalence(_toggler("g"), _toggler("r", gate="XNOR2"))
    assert not result.equivalent
    assert result.proven
    cex = result.counterexample
    assert cex is not None and cex.port == "q"
    # The trace was replayed on the reference simulator before being
    # reported, so these values are real simulator outputs, not SAT models.
    assert cex.golden_value != cex.revised_value
    assert len(cex.inputs) == cex.cycle + 1
    assert f"cycle {cex.cycle}" in result.summary()


def test_cec_result_serialises():
    result = check_equivalence(_and2("g"), _or2("r"))
    data = result.to_dict()
    assert data["equivalent"] is False
    assert data["counterexample"]["port"] == "y"
    assert isinstance(data["stats"], dict)
    assert isinstance(CecResult(**{
        k: v for k, v in data.items() if k in ("equivalent", "proven", "method")
    }), CecResult)


# ---------------------------------------------------------------------------
# The acceptance grid: O0 vs O1 formally equivalent everywhere
# ---------------------------------------------------------------------------

def _grid_points():
    points = []
    for workload in available_workloads():
        for style, variant in STYLE_VARIANTS:
            points.append((workload, style, variant))
    return points


@pytest.mark.parametrize("workload,style,variant", _grid_points())
def test_optimized_netlist_formally_equivalent_to_raw(workload, style, variant):
    """CEC proves optimization preserved every design in the 4x4 grid."""
    try:
        design = build_design(build_pattern(workload, 4, 4), style, variant)
    except (MappingError, NetlistError, ValueError):
        pytest.skip(f"{style}/{variant} inapplicable to {workload}")
    netlist = design.netlist
    result = run_synthesis_flow(netlist, spec=FlowSpec(opt_level=1))
    verdict = check_equivalence(netlist, result.netlist)
    assert verdict.equivalent and verdict.proven, verdict.summary()
