"""Tests for the complete two-hot SRAG generator and its use with an ADDM."""

import pytest

from repro.core.addm_generator import SragAddressGenerator
from repro.core.mapping_params import MappingError
from repro.core.two_hot import (
    decode_two_hot,
    encode_two_hot,
    is_valid_two_hot,
    one_hot_width,
    two_hot_width,
)
from repro.hdl.simulator import Simulator
from repro.memory import AddressDecoderDecoupledMemory
from repro.workloads import dct, fifo, motion_estimation, patterns, zoom


# ---------------------------------------------------------------------------
# Two-hot helpers
# ---------------------------------------------------------------------------

def test_two_hot_widths():
    assert two_hot_width(16, 16) == 32
    assert one_hot_width(16, 16) == 256
    with pytest.raises(ValueError):
        two_hot_width(0, 4)


def test_two_hot_encode_decode_round_trip():
    row, col = encode_two_hot(2, 3, 4, 8)
    assert is_valid_two_hot(row, col)
    assert decode_two_hot(row, col) == (2, 3)
    with pytest.raises(ValueError):
        encode_two_hot(4, 0, 4, 4)
    with pytest.raises(ValueError):
        decode_two_hot([1, 1, 0, 0], col)


# ---------------------------------------------------------------------------
# Generator construction and verification
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "sequence_factory",
    [
        lambda: motion_estimation.read_sequence(4, 4, 2, 2),
        lambda: motion_estimation.read_sequence(8, 8, 4, 4),
        lambda: motion_estimation.write_sequence(4, 4),
        lambda: dct.column_pass_sequence(4, 4),
        lambda: zoom.zoom_read_sequence(4, 4, 2),
        lambda: fifo.fifo_sequence(8, 4),
    ],
)
def test_generator_reproduces_sequence_functionally_and_structurally(sequence_factory):
    sequence = sequence_factory()
    generator = SragAddressGenerator.from_sequence(sequence)
    assert generator.verify()
    assert generator.verify(structural=True)


def test_generator_reports_dimensions():
    generator = SragAddressGenerator.from_sequence(
        motion_estimation.read_sequence(8, 4, 2, 2)
    )
    assert generator.rows == 4
    assert generator.cols == 8
    assert generator.select_line_count == 12
    assert set(generator.netlist.inputs) == {"clk", "next", "reset"}
    assert f"rs_{generator.rows - 1}" in generator.netlist.outputs
    assert f"cs_{generator.cols - 1}" in generator.netlist.outputs


def test_generator_rejects_unmappable_sequence():
    serpentine = patterns.serpentine_sequence(4, 4)
    with pytest.raises(MappingError):
        SragAddressGenerator.from_sequence(serpentine)


def test_generator_simulation_over_multiple_periods():
    sequence = dct.column_pass_sequence(4, 4)
    generator = SragAddressGenerator.from_sequence(sequence)
    produced = generator.simulate_functional(2 * sequence.length)
    assert produced == sequence.linear * 2


def test_generator_flip_flop_budget():
    """The SRAG uses one flip-flop per distinct row plus one per distinct column
    (plus the small control counters), not one per word."""
    sequence = motion_estimation.read_sequence(8, 8, 2, 2)
    generator = SragAddressGenerator.from_sequence(sequence)
    shift_register_flops = (
        generator.row_mapping.total_flip_flops + generator.col_mapping.total_flip_flops
    )
    assert shift_register_flops == 16
    total_flops = len(generator.netlist.sequential_cells())
    assert shift_register_flops <= total_flops <= shift_register_flops + 8


# ---------------------------------------------------------------------------
# End-to-end with the ADDM memory model
# ---------------------------------------------------------------------------

def test_generator_drives_addm_to_read_correct_data():
    """Gate-level SRAG select lines drive the ADDM and fetch the right words."""
    sequence = motion_estimation.read_sequence(4, 4, 2, 2)
    generator = SragAddressGenerator.from_sequence(sequence)
    memory = AddressDecoderDecoupledMemory(4, 4)
    for row in range(4):
        for col in range(4):
            memory.write_rowcol(row, col, 100 + row * 4 + col)

    sim = Simulator(generator.netlist)
    sim.reset()
    sim.poke("next", 1)
    fetched = []
    for _ in range(sequence.length):
        sim.settle()
        row_select = [sim.peek(net) for net in generator.row_ports.select_lines]
        col_select = [sim.peek(net) for net in generator.col_ports.select_lines]
        fetched.append(memory.read(row_select, col_select))
        sim.step()
    assert fetched == [100 + address for address in sequence.linear]


def test_write_then_read_through_two_generators():
    """Fill the ADDM through the write-order SRAG, read back via the read-order SRAG."""
    rows = cols = 4
    write_gen = SragAddressGenerator.from_sequence(
        motion_estimation.write_sequence(cols, rows)
    )
    read_gen = SragAddressGenerator.from_sequence(
        motion_estimation.read_sequence(cols, rows, 2, 2)
    )
    memory = AddressDecoderDecoupledMemory(rows, cols)

    writer = Simulator(write_gen.netlist)
    writer.reset()
    writer.poke("next", 1)
    for value in range(rows * cols):
        writer.settle()
        row_select = [writer.peek(net) for net in write_gen.row_ports.select_lines]
        col_select = [writer.peek(net) for net in write_gen.col_ports.select_lines]
        memory.write(row_select, col_select, 1000 + value)
        writer.step()

    reader = Simulator(read_gen.netlist)
    reader.reset()
    reader.poke("next", 1)
    observed = []
    for _ in range(rows * cols):
        reader.settle()
        row_select = [reader.peek(net) for net in read_gen.row_ports.select_lines]
        col_select = [reader.peek(net) for net in read_gen.col_ports.select_lines]
        observed.append(memory.read(row_select, col_select))
        reader.step()
    expected = [1000 + address for address in read_gen.sequence.linear]
    assert observed == expected
